"""Minimal HTTP/1.1 front end for the channel-lab service.

Pure-stdlib (``asyncio.start_server``): one short-lived connection per
request, ``Connection: close`` semantics, JSON bodies.  Endpoints:

===========================================  ===============================
``GET /health``                              liveness probe
``GET /tasks``                               registered task names
``POST /jobs``                               submit; body ``{"task": name,
                                             "kwargs_list": [...],
                                             "priority": 0}``
``GET /jobs``                                all jobs (status documents)
``GET /jobs/<id>``                           one job's status document
``GET /jobs/<id>/results``                   input-order values
                                             (``?wait=1`` blocks)
``GET /jobs/<id>/stream``                    NDJSON: one line per task
                                             completion (completion
                                             order), then the job's
                                             final status document
``POST /jobs/<id>/cancel``                   cancel a queued/running job
``GET /metrics``                             utilization + store summary
===========================================  ===============================

The server exists for the lab-bench use case — submitting sweeps from
scripts and CI smoke jobs on localhost.  It is deliberately not a
hardened public server: no TLS, no auth, no request pipelining.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigError
from repro.service.scheduler import ChannelLabService
from repro.service.tasks import task_names

#: Request bodies larger than this are rejected (a submit of tens of
#: thousands of kwargs dicts fits comfortably).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Reason phrases for the status codes the server emits.
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}


class HTTPError(Exception):
    """A routed request that must answer with an HTTP error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _response_bytes(status: int, payload: Any) -> bytes:
    """Serialise one complete JSON response."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode()
    return head + body


class ServiceHTTP:
    """HTTP front end bound to one :class:`ChannelLabService`.

    Usage::

        service = await ChannelLabService(config).start()
        front = ServiceHTTP(service)
        await front.start(host="127.0.0.1", port=8123)
        ...
        await front.stop()
    """

    def __init__(self, service: ChannelLabService) -> None:
        self.service = service
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (0 before :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return 0
        return self._server.sockets[0].getsockname()[1]

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> "ServiceHTTP":
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        return self

    async def stop(self) -> None:
        """Stop accepting connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Serve one request on one connection, then close it."""
        try:
            method, target, body = await self._read_request(reader)
            await self._route(method, target, body, writer)
        except HTTPError as exc:
            writer.write(_response_bytes(exc.status, {"error": exc.message}))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:
            writer.write(_response_bytes(
                500, {"error": f"{type(exc).__name__}: {exc}"}))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, bytes]:
        """Parse request line, headers and (length-delimited) body."""
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise HTTPError(400, f"malformed request line {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise HTTPError(400, f"bad Content-Length {value!r}")
        if length > MAX_BODY_BYTES:
            raise HTTPError(400, f"body of {length} bytes exceeds limit")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    # -- routing --------------------------------------------------------------

    async def _route(self, method: str, target: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        """Dispatch one parsed request to its endpoint."""
        split = urlsplit(target)
        path = [part for part in split.path.split("/") if part]
        query = parse_qs(split.query)
        if path == ["health"] and method == "GET":
            writer.write(_response_bytes(200, {"ok": True}))
        elif path == ["tasks"] and method == "GET":
            writer.write(_response_bytes(200, {"tasks": task_names()}))
        elif path == ["metrics"] and method == "GET":
            writer.write(_response_bytes(200, self._metrics_doc()))
        elif path == ["jobs"] and method == "POST":
            writer.write(_response_bytes(200, await self._submit(body)))
        elif path == ["jobs"] and method == "GET":
            writer.write(_response_bytes(
                200, {"jobs": [job.describe()
                               for job in self.service.jobs()]}))
        elif len(path) == 2 and path[0] == "jobs" and method == "GET":
            writer.write(_response_bytes(200, self._job(path[1]).describe()))
        elif (len(path) == 3 and path[0] == "jobs"
                and path[2] == "results" and method == "GET"):
            writer.write(_response_bytes(
                200, await self._results(path[1], query)))
        elif (len(path) == 3 and path[0] == "jobs"
                and path[2] == "stream" and method == "GET"):
            await self._stream(path[1], writer)
        elif (len(path) == 3 and path[0] == "jobs"
                and path[2] == "cancel" and method == "POST"):
            cancelled = await self.service.cancel(self._job(path[1]).id)
            writer.write(_response_bytes(200, {"cancelled": cancelled}))
        elif path and path[0] in ("health", "tasks", "metrics", "jobs"):
            raise HTTPError(405, f"{method} not allowed on {split.path}")
        else:
            raise HTTPError(404, f"no such endpoint {split.path}")

    def _job(self, job_id: str):
        """Resolve a job id or answer 404."""
        try:
            return self.service.job(job_id)
        except ConfigError as exc:
            raise HTTPError(404, str(exc))

    def _metrics_doc(self) -> Dict[str, Any]:
        """Utilization plus (when available) the store's summary."""
        document = {"utilization": self.service.utilization()}
        store = self.service.config.store
        if store is not None and hasattr(store, "describe"):
            document["store"] = store.describe()
        return document

    async def _submit(self, body: bytes) -> Dict[str, Any]:
        """``POST /jobs``: validate the body and queue the job."""
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise HTTPError(400, "body must be a JSON object")
        task = payload.get("task")
        kwargs_list = payload.get("kwargs_list")
        priority = payload.get("priority", 0)
        if not isinstance(task, str):
            raise HTTPError(400, "'task' must be a registered task name")
        if (not isinstance(kwargs_list, list) or not kwargs_list
                or not all(isinstance(k, dict) for k in kwargs_list)):
            raise HTTPError(
                400, "'kwargs_list' must be a non-empty list of objects")
        if not isinstance(priority, int):
            raise HTTPError(400, "'priority' must be an integer")
        try:
            job = await self.service.submit(task, kwargs_list,
                                            priority=priority)
        except ConfigError as exc:
            raise HTTPError(400, str(exc))
        return job.describe()

    async def _results(self, job_id: str,
                       query: Dict[str, Any]) -> Dict[str, Any]:
        """``GET /jobs/<id>/results``: values (with ``?wait=1`` blocks)."""
        job = self._job(job_id)
        if query.get("wait", ["0"])[0] not in ("0", ""):
            await job.wait()
        document = job.describe()
        if job.finished:
            document["results"] = [record.describe() if record is not None
                                   else None for record in job.results]
        return document

    async def _stream(self, job_id: str,
                      writer: asyncio.StreamWriter) -> None:
        """``GET /jobs/<id>/stream``: NDJSON partial results, live."""
        job = self._job(job_id)
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n").encode()
        writer.write(head)
        await writer.drain()
        async for record in job.stream():
            writer.write((json.dumps(record.describe(), sort_keys=True)
                          + "\n").encode())
            await writer.drain()
        await job.wait()
        writer.write((json.dumps(job.describe(), sort_keys=True)
                      + "\n").encode())
