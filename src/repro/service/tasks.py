"""Named task registry for the channel-lab service.

Python callers submit module-level functions directly
(:meth:`~repro.service.scheduler.ChannelLabService.submit` takes the
callable), but the HTTP and CLI front ends cannot ship code — they name
a *registered task* and pass JSON kwargs.  This module is that
registry, plus the built-in tasks every deployment serves:

``noop``
    Echoes its kwargs; the throughput smoke-test workload (the CI gate
    drains >= 10k of these through the queue).
``square``
    ``x * x``; the minimal real computation, used by the HTTP
    bit-identity smoke to compare the service path against an inline
    :class:`~repro.runner.SweepRunner`.
``demo_ber``
    One covert transfer of a hex payload over a named channel on a
    fresh simulated Cannon Lake part; returns JSON-ready BER /
    throughput / received-payload fields.
``fig13_digest``
    The full golden-gated Figure 13 scenario reduced to its content
    digest — submitting this over HTTP and comparing against the
    committed golden proves the service path end to end.
``scenario_run``
    One named scenario from the declarative library
    (:mod:`repro.scenarios`) run end to end; returns the scenario
    name, per-tenant BERs, aggregate goodput, and the content digest
    of the full run document.

Task functions must be module-level and their kwargs picklable, exactly
the :class:`~repro.runner.SweepRunner` contract, because workers may
fan them out over process pools.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.errors import ConfigError

#: The registry: task name -> module-level callable.
_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_task(name: str,
                  fn: Callable[..., Any]) -> Callable[..., Any]:
    """Register ``fn`` under ``name``; returns ``fn``.

    Re-registering a name is a :class:`~repro.errors.ConfigError` —
    silently replacing a task would redirect queued submissions.
    """
    if name in _REGISTRY:
        raise ConfigError(f"task {name!r} is already registered")
    _REGISTRY[name] = fn
    return fn


def get_task(name: str) -> Callable[..., Any]:
    """The registered task called ``name`` (ConfigError on a typo)."""
    fn = _REGISTRY.get(name)
    if fn is None:
        raise ConfigError(f"unknown task {name!r}; registered tasks: "
                          f"{', '.join(task_names())}")
    return fn


def task_names() -> List[str]:
    """Names of all registered tasks, sorted."""
    return sorted(_REGISTRY)


def noop(**kwargs: Any) -> Dict[str, Any]:
    """Echo the kwargs back; the queue-drain smoke workload."""
    return dict(kwargs)


def square(x: float) -> float:
    """``x * x`` — the minimal real task for bit-identity smokes."""
    return x * x


def demo_ber(channel: str = "thread",
             message_hex: str = "494368616e6e656c73") -> Dict[str, Any]:
    """One covert transfer on a fresh simulated part, JSON-ready.

    ``channel`` is ``thread`` | ``smt`` | ``cores``; ``message_hex`` is
    the payload as hex.  Every call builds its own
    :class:`~repro.soc.system.System`, so results are deterministic and
    independent of execution order — the sweep-runner contract.
    """
    from repro.core import IccCoresCovert, IccSMTcovert, IccThreadCovert
    from repro.soc.config import cannon_lake_i3_8121u
    from repro.soc.system import System

    channels = {"thread": IccThreadCovert, "smt": IccSMTcovert,
                "cores": IccCoresCovert}
    channel_cls = channels.get(channel)
    if channel_cls is None:
        raise ConfigError(f"unknown channel {channel!r}; valid: "
                          f"{', '.join(sorted(channels))}")
    message = bytes.fromhex(message_hex)
    report = channel_cls(System(cannon_lake_i3_8121u())).transfer(message)
    return {
        "channel": channel,
        "sent_hex": message_hex,
        "received_hex": report.received.hex(),
        "ok": report.received == message,
        "ber": float(report.ber),
        "throughput_bps": float(report.throughput_bps),
    }


def fig13_digest() -> str:
    """Content digest of the golden-gated Figure 13 scenario.

    Identical by construction to what ``python -m repro.verify
    --compute fig13_slice`` prints, so an HTTP client can prove the
    service path reproduces the committed golden bit for bit.
    """
    from repro.verify.scenarios import compute_digest

    return compute_digest("fig13_slice")


def scenario_run(name: str = "baseline_thread") -> Dict[str, Any]:
    """One named declarative scenario, run end to end, JSON-ready.

    ``name`` is any scenario from ``python -m repro.scenarios list``.
    Returns per-tenant BERs, the aggregate goodput, and the content
    digest of the full run document, so an HTTP client can compare the
    service path against an inline ``run_document`` call bit for bit.
    """
    from repro.scenarios.run import run_scenario
    from repro.verify.digest import content_digest

    run = run_scenario(name)
    return {
        "scenario": name,
        "tenants": len(run.tenants),
        "per_tenant_ber": [float(t.ber) for t in run.tenants],
        "mean_ber": float(run.mean_ber),
        "aggregate_goodput_bps": float(run.aggregate_goodput_bps),
        "digest": content_digest(run.document()),
    }


register_task("noop", noop)
register_task("square", square)
register_task("demo_ber", demo_ber)
register_task("fig13_digest", fig13_digest)
register_task("scenario_run", scenario_run)
