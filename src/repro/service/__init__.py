"""The channel lab as an async service: queue, workers, artifact store.

ROADMAP item 2: grow the single-shot :class:`~repro.runner.SweepRunner`
into a long-lived service that absorbs experiment sweeps continuously.
The pieces, bottom-up:

* :mod:`repro.service.store` — :class:`ArtifactStore`, the
  content-addressed :class:`~repro.runner.cache.ResultCache` promoted to
  a shared artifact store (versioned envelopes, eviction budgets,
  inventory);
* :mod:`repro.service.tasks` — the named-task registry the HTTP/CLI
  front ends submit against (``noop``, ``square``, ``demo_ber``,
  ``fig13_digest``);
* :mod:`repro.service.scheduler` — :class:`ChannelLabService`: the
  asyncio priority queue, the worker fleet (one
  :class:`~repro.runner.SweepRunner` each), single-flight dedup,
  retry-with-backoff, worker-loss salvage, streaming partial results
  and per-worker metrics;
* :mod:`repro.service.adapter` — :class:`ServiceRunner`, the
  synchronous runner-shaped facade that routes existing experiments
  through the queue unchanged (what :mod:`repro.verify` uses to prove
  the service path bit-identical to the inline one);
* :mod:`repro.service.http` — the stdlib HTTP front end;
* ``python -m repro.service`` — serve / submit / status / fetch /
  cancel / stream / smoke.

Quick start (Python)::

    import asyncio
    from repro.service import ChannelLabService, ServiceConfig

    async def main():
        async with ChannelLabService(ServiceConfig(workers=4)) as lab:
            job = await lab.submit("square",
                                   [{"x": x} for x in range(100)])
            async for partial in job.stream():
                print(partial.index, partial.value)
            print((await job.wait()).describe())

    asyncio.run(main())

See ``docs/SERVICE.md`` for the architecture and the verification gate.
"""

from repro.service.adapter import ServiceRunner
from repro.service.http import ServiceHTTP
from repro.service.scheduler import (
    ChannelLabService,
    Job,
    ServiceConfig,
    TaskResult,
)
from repro.service.store import (
    ArtifactStore,
    EntryInfo,
    StoreBudget,
    StoreStats,
)
from repro.service.tasks import get_task, register_task, task_names

__all__ = [
    "ArtifactStore",
    "ChannelLabService",
    "EntryInfo",
    "Job",
    "ServiceConfig",
    "ServiceHTTP",
    "ServiceRunner",
    "StoreBudget",
    "StoreStats",
    "TaskResult",
    "get_task",
    "register_task",
    "task_names",
]
