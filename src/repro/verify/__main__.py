"""``python -m repro.verify`` — the full verification gate.

Default run order (each stage independently skippable)::

    lint          AST lint of src/repro against the determinism rules
    differential  fast path vs reference equivalence checks
    goldens       canonical scenarios vs committed golden digests
    audit         hash-seed / worker-count / cache-state variations

Exit status is 0 only when every selected stage passes.  Other modes:

* ``--update-goldens`` regenerates the committed goldens (run this when
  a change is *supposed* to move the physics, and review the diff);
* ``--compute NAME`` prints exactly ``NAME <digest>`` — the auditor's
  fresh-interpreter probe;
* ``--list`` shows the scenario registry.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.verify.audit import audit_all
from repro.verify.differential import run_all as run_differential
from repro.verify.goldens import check_all, update_goldens
from repro.verify.lint import lint_paths, load_waivers
from repro.verify.scenarios import SCENARIOS, compute_digest, scenario_names


def _build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.verify`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Golden-trace verification: lint, differential checks, "
                    "golden regression, determinism audit.")
    parser.add_argument("--list", action="store_true",
                        help="list canonical scenarios and exit")
    parser.add_argument("--compute", metavar="NAME",
                        help="print 'NAME <digest>' for one scenario and "
                             "exit (used by the determinism audit)")
    parser.add_argument("--update-goldens", action="store_true",
                        help="regenerate the committed golden files from "
                             "current sources")
    parser.add_argument("--scenario", action="append", metavar="NAME",
                        help="restrict goldens/audit to this scenario "
                             "(repeatable)")
    parser.add_argument("--goldens-dir", type=Path, default=None,
                        help="override the goldens directory "
                             "(default: tests/goldens, or "
                             "$REPRO_GOLDENS_DIR)")
    parser.add_argument("--waivers", type=Path, default=None,
                        help="lint waiver file "
                             "(default: tests/lint_waivers.txt)")
    parser.add_argument("--skip-lint", action="store_true",
                        help="skip the AST lint stage")
    parser.add_argument("--skip-differential", action="store_true",
                        help="skip the differential checks")
    parser.add_argument("--skip-goldens", action="store_true",
                        help="skip the golden regression check")
    parser.add_argument("--skip-audit", action="store_true",
                        help="skip the determinism audit")
    parser.add_argument("--no-subprocess-audit", action="store_true",
                        help="audit without the fresh-interpreter "
                             "hash-seed runs (faster; runner/cache "
                             "variations only)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the verification gate; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.list:
        for scenario in SCENARIOS:
            runner = "runner-aware" if scenario.supports_runner else "serial"
            print(f"{scenario.name:<18} [{runner}]  {scenario.description}")
        return 0

    if args.compute:
        print(f"{args.compute} {compute_digest(args.compute)}")
        return 0

    names = args.scenario if args.scenario else None

    if args.update_goldens:
        for path in update_goldens(names, goldens_dir=args.goldens_dir):
            print(f"wrote {path}")
        return 0

    failures: List[str] = []

    if not args.skip_lint:
        print("== lint ==")
        waivers = load_waivers(args.waivers) if args.waivers else None
        report = lint_paths(waivers=waivers)
        print(report.render())
        print(f"  ({len(report.waived)} waived)")
        if not report.ok:
            failures.append(f"lint: {len(report.findings)} violation(s)")

    if not args.skip_differential:
        print("== differential ==")
        checks = run_differential()
        for check in checks:
            print(check.render())
        bad = [check.name for check in checks if not check.ok]
        if bad:
            failures.append(f"differential: {', '.join(bad)}")

    baselines = {}
    if not args.skip_goldens:
        print("== goldens ==")
        checks = check_all(names, goldens_dir=args.goldens_dir)
        for check in checks:
            print(check.render())
            baselines[check.scenario] = check.actual_digest
        bad = [check.scenario for check in checks if not check.ok]
        if bad:
            failures.append(f"goldens: {', '.join(bad)}")

    if not args.skip_audit:
        print("== determinism audit ==")
        report = audit_all(
            names, baselines=baselines,
            subprocess_checks=not args.no_subprocess_audit)
        print(report.render())
        if not report.ok:
            failures.append(
                f"audit: {len(report.divergences)} divergence(s)")

    if failures:
        print("VERIFY FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("verify: all stages passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
