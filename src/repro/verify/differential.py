"""Differential checks: fast paths must equal their reference paths.

The equivalences the codebase *claims* and this module *proves* on every
verify run:

* the vectorized :class:`~repro.measure.sampler.TraceSampler` fast path
  is **bit-identical** (not epsilon-close) to the documented scalar
  fallback, on real rail traces produced by a covert transfer;
* a :class:`~repro.core.session.CovertSession` configured with adaptive
  machinery behaves **exactly** like a plain session when no faults are
  injected — the adaptive state machine must be pay-for-what-you-use,
  never perturbing a healthy channel;
* every golden scenario is identical under the batch kernel and the
  scalar reference engine (``REPRO_KERNEL`` off vs auto);
* routing a sweep through the :mod:`repro.service` queue / worker fleet
  produces the same canonical document as the inline
  :class:`~repro.runner.SweepRunner` — and both match the committed
  golden.

Each check returns a :class:`DiffCheck` with leaf-level mismatch lines,
rendered by ``python -m repro.verify``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core import IccCoresCovert, IccThreadCovert
from repro.core.session import AdaptiveConfig, CovertSession, SessionConfig
from repro.measure.sampler import TraceSampler
from repro.soc.config import cannon_lake_i3_8121u
from repro.soc.system import System
from repro.verify.digest import diff_documents

#: Payload the differential transfers send (small but multi-frame).
DIFF_PAYLOAD = b"\xa5\x3c\x0f\xf0\x5a\xc3"


@dataclass
class DiffCheck:
    """Outcome of one differential check."""

    name: str
    ok: bool
    #: Human-readable mismatch details (empty when ``ok``).
    detail: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Multi-line human-readable report of this check."""
        head = f"  {'ok      ' if self.ok else 'MISMATCH'} {self.name}"
        if self.ok or not self.detail:
            return head
        return "\n".join([head] + [f"           {line}" for line in self.detail])


def _traced_system() -> System:
    """A fresh system with a non-trivial rail history to sample."""
    system = System(cannon_lake_i3_8121u())
    IccThreadCovert(system).transfer(DIFF_PAYLOAD[:3])
    return system


def check_sampler_bitwise() -> DiffCheck:
    """Vectorized sampling must be bit-identical to the scalar loop.

    Samples every observable signal of a post-transfer system over a
    grid that includes the exact breakpoint times, segment midpoints and
    a dense uniform sweep, through both :class:`TraceSampler` paths, and
    requires ``np.array_equal`` — any single differing bit fails.
    """
    system = _traced_system()
    signals = {
        "vcc": system.vcc_signal(),
        "icc": system.icc_signal(),
        "freq": system.freq_signal(),
    }
    detail: List[str] = []
    sampler = TraceSampler()
    for name, signal in signals.items():
        times, _ = signal.breakpoints()
        grid = np.unique(np.concatenate([
            times,
            (times[:-1] + times[1:]) / 2.0 if len(times) > 1 else times,
            np.linspace(float(times[0]), float(times[-1]), 2048),
            np.asarray([float(times[0]) - 1.0, float(times[-1]) + 1.0]),
        ]))
        scalar_view = (lambda sig: lambda t: sig(t))(signal)
        assert TraceSampler.path_for(signal) == "vectorized"
        assert TraceSampler.path_for(scalar_view) == "scalar"
        fast = sampler.evaluate(signal, grid)
        reference = sampler.evaluate(scalar_view, grid)
        if not np.array_equal(fast, reference):
            differing = np.nonzero(fast != reference)[0]
            for index in differing[:5]:
                detail.append(
                    f"{name} @ t={grid[index]!r}: vectorized "
                    f"{fast[index]!r} != scalar {reference[index]!r}")
            if len(differing) > 5:
                detail.append(f"{name}: ... and {len(differing) - 5} "
                              f"more differing samples")
    return DiffCheck(name="sampler-bitwise", ok=not detail, detail=detail)


def _session_document(adaptive: bool) -> dict:
    """A canonical record of one session send on a fresh system."""
    system = System(cannon_lake_i3_8121u())
    channel = IccCoresCovert(system)
    config = SessionConfig(adaptive=AdaptiveConfig() if adaptive else None)
    report = CovertSession(channel, config).send(DIFF_PAYLOAD)
    return {
        "payload": report.payload,
        "delivered": report.delivered,
        "best_effort": report.best_effort,
        "ok": report.ok,
        "start_ns": report.start_ns,
        "end_ns": report.end_ns,
        "recalibrations": report.recalibrations,
        "degraded": report.degraded,
        "backoff_ns": report.backoff_ns,
        "frames": [dataclasses.asdict(frame) for frame in report.frames],
    }


def check_adaptive_plain_equivalence() -> DiffCheck:
    """Adaptive session under zero faults must match the plain session.

    Runs the same payload through a plain and an adaptive session on
    fresh identical systems and compares the full session records —
    frame logs, timings, degradation state — leaf by leaf.
    """
    plain = _session_document(adaptive=False)
    adaptive = _session_document(adaptive=True)
    detail = diff_documents(plain, adaptive)
    return DiffCheck(name="adaptive-plain-equivalence",
                     ok=not detail, detail=detail)


def _document_under_kernel(name: str, mode: str) -> dict:
    """One golden scenario's canonical document under a kernel mode.

    ``SystemOptions`` reads ``REPRO_KERNEL`` at construction time, so
    flipping the environment variable around the scenario run switches
    every system it builds between the batch kernel and the scalar
    reference engine.
    """
    import os

    from repro.verify.scenarios import compute_document

    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = mode
    try:
        return compute_document(name)
    finally:
        if previous is None:
            del os.environ["REPRO_KERNEL"]
        else:
            os.environ["REPRO_KERNEL"] = previous


def check_kernel_scalar_equivalence(
        names: Optional[Sequence[str]] = None) -> DiffCheck:
    """Every committed golden scenario must be kernel/scalar identical.

    Replays each scenario in the registry (or the given subset of
    ``names``) twice in-process — ``REPRO_KERNEL=off`` (scalar
    reference) and ``REPRO_KERNEL=auto`` (batch kernel where eligible)
    — and diffs the full canonical documents leaf by leaf.  Exact
    equality, no epsilon: the kernel's whole contract is that deferred
    replay reproduces the scalar float trajectory bit for bit
    (docs/KERNEL.md).
    """
    from repro.verify.scenarios import scenario_names

    detail: List[str] = []
    for name in (scenario_names() if names is None else names):
        scalar = _document_under_kernel(name, "off")
        kernel = _document_under_kernel(name, "auto")
        lines = diff_documents(scalar, kernel)
        for line in lines[:5]:
            detail.append(f"{name}: {line}")
        if len(lines) > 5:
            detail.append(f"{name}: ... and {len(lines) - 5} more leaves")
    return DiffCheck(name="kernel-scalar-equivalence",
                     ok=not detail, detail=detail)


def check_service_inline_equivalence() -> DiffCheck:
    """The service path must be bit-identical to the inline runner.

    Computes the ``fig13_slice`` canonical document twice — once with a
    plain inline :class:`~repro.runner.SweepRunner` and once routed
    through a :class:`~repro.service.ServiceRunner` (the full queue /
    worker-fleet / streaming path of :mod:`repro.service`) — and diffs
    the documents leaf by leaf.  Both digests are then also required to
    match the committed golden, so "service == inline == golden" is one
    proven chain, not two assumptions.
    """
    from repro.runner import SweepRunner
    from repro.service import ServiceConfig, ServiceRunner
    from repro.verify.digest import content_digest
    from repro.verify.goldens import load_golden
    from repro.verify.scenarios import compute_document

    inline = compute_document("fig13_slice", runner=SweepRunner())
    with ServiceRunner(ServiceConfig(workers=2, batch_size=4)) as runner:
        routed = compute_document("fig13_slice", runner=runner)
    detail = [f"fig13_slice: {line}"
              for line in diff_documents(inline, routed)[:10]]
    golden = load_golden("fig13_slice").get("digest")
    digest = content_digest(inline)
    if golden is not None and digest != golden:
        detail.append(f"fig13_slice digest {digest} != golden {golden}")
    return DiffCheck(name="service-inline-equivalence",
                     ok=not detail, detail=detail)


def run_all() -> List[DiffCheck]:
    """Every differential check, in reporting order."""
    return [check_sampler_bitwise(), check_adaptive_plain_equivalence(),
            check_kernel_scalar_equivalence(),
            check_service_inline_equivalence()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.verify.differential`` — standalone report.

    Runs every differential check and optionally writes a JSON report
    (``--json PATH``), which CI uploads as the kernel-vs-scalar
    differential artifact.  Exit status 0 only when every check passes.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.differential",
        description="Fast-path vs reference differential checks.")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="write a machine-readable report to PATH")
    args = parser.parse_args(argv)

    checks = run_all()
    for check in checks:
        print(check.render())
    if args.json:
        report = {
            "ok": all(check.ok for check in checks),
            "checks": [
                {"name": check.name, "ok": check.ok, "detail": check.detail}
                for check in checks
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if all(check.ok for check in checks) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
