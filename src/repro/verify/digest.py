"""Stable content digests and human-readable digest diffs.

The golden-trace harness reduces every canonical scenario to a
*document* — a nested structure of plain JSON types (dicts, lists,
strings, ints, exact floats) — and pins its SHA-256.  This module owns
that reduction:

* :func:`canonical_json` serialises any supported value through
  :func:`repro.runner.canonicalize` with sorted keys, so logically
  equal documents always produce byte-identical JSON.  Floats are
  emitted as their shortest round-tripping decimal (Python's ``repr``),
  which means the digest is exact to the last bit — there is no epsilon
  anywhere in the golden check, by design: the simulator is fully
  deterministic, so *any* drift is a finding.
* :func:`content_digest` / :func:`section_digests` hash a document (or
  each of its top-level sections, which is what makes a mismatch
  diagnosable at a glance).
* :func:`summarize_array` reduces a large float array to shape, an
  exact content hash, and a few derived scalars — the committed golden
  stays small while still pinning every sample.
* :func:`diff_documents` renders the leaf-level differences between two
  documents as ``path: old -> new`` lines for the mismatch report.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.runner.cache import canonicalize


def canonical_json(obj: Any) -> str:
    """Byte-stable JSON text of ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(canonicalize(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def content_digest(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def section_digests(document: Mapping[str, Any]) -> Dict[str, str]:
    """Per-section digests of a document's top-level entries.

    A golden mismatch first compares these, so the report can say
    *which* section drifted (rail trace vs transfer report vs metrics)
    before descending to leaf diffs.
    """
    return {name: content_digest(value) for name, value in document.items()}


def summarize_array(values: Sequence[float], name: str = "array") -> Dict[str, Any]:
    """A digest-ready reduction of a float array.

    The exact content is pinned by a SHA-256 over the IEEE-754 bytes
    (little-endian float64), while length and a handful of derived
    scalars keep a mismatch humanly readable without storing thousands
    of floats in the golden file.
    """
    arr = np.ascontiguousarray(np.asarray(values, dtype=float), dtype="<f8")
    out: Dict[str, Any] = {
        "name": name,
        "len": int(arr.size),
        "sha256": hashlib.sha256(arr.tobytes()).hexdigest(),
    }
    if arr.size:
        out.update(
            first=float(arr.reshape(-1)[0]),
            last=float(arr.reshape(-1)[-1]),
            min=float(arr.min()),
            max=float(arr.max()),
            mean=float(arr.mean()),
        )
    return out


def summarize_breakpoints(times: Sequence[float], values: Sequence[float],
                          name: str = "signal") -> Dict[str, Any]:
    """A digest-ready reduction of a breakpoint export.

    Rail traces are pinned through their breakpoints (the exact
    simulator state transitions) rather than a resampled grid: the
    breakpoint set is the ground truth every sampled view derives from.
    """
    return {
        "name": name,
        "times": summarize_array(times, name=f"{name}.times"),
        "values": summarize_array(values, name=f"{name}.values"),
    }


def flatten_leaves(document: Any, prefix: str = "") -> Iterator[Tuple[str, Any]]:
    """Yield ``(dotted.path, leaf)`` pairs of a canonical document.

    Dicts recurse by key, lists by index; everything else is a leaf.
    """
    if isinstance(document, dict):
        for key in sorted(document):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten_leaves(document[key], path)
    elif isinstance(document, list):
        for i, item in enumerate(document):
            yield from flatten_leaves(item, f"{prefix}[{i}]")
    else:
        yield prefix, document


def diff_documents(old: Any, new: Any, max_lines: int = 40) -> List[str]:
    """Human-readable leaf differences between two canonical documents.

    Returns ``path: old -> new`` lines (plus ``only in`` lines for
    added/removed paths), truncated to ``max_lines`` with a summary
    line when more differ.  Both arguments are canonicalised first, so
    dataclasses and arrays can be passed directly.
    """
    old_leaves = dict(flatten_leaves(canonicalize(old)))
    new_leaves = dict(flatten_leaves(canonicalize(new)))
    lines: List[str] = []
    for path in sorted(old_leaves.keys() | new_leaves.keys()):
        if path not in new_leaves:
            lines.append(f"{path}: {old_leaves[path]!r} -> (removed)")
        elif path not in old_leaves:
            lines.append(f"{path}: (added) -> {new_leaves[path]!r}")
        elif old_leaves[path] != new_leaves[path]:
            lines.append(f"{path}: {old_leaves[path]!r} -> {new_leaves[path]!r}")
    if len(lines) > max_lines:
        hidden = len(lines) - max_lines
        lines = lines[:max_lines] + [f"... and {hidden} more differing leaves"]
    return lines
