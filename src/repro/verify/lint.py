"""Custom AST lint encoding the simulator's determinism invariants.

The golden-trace harness can only certify what it runs; this lint pass
certifies the *source* obeys the rules that make those runs
reproducible in the first place.  Rules:

``unseeded-rng``
    ``np.random.default_rng()`` (or ``random.Random()``) constructed
    without an explicit seed argument anywhere in ``src/repro``.  An
    unseeded generator is nondeterminism by construction.
``global-rng``
    Calls through numpy's legacy global generator
    (``np.random.uniform(...)``, ``np.random.seed(...)``, …).  Global
    RNG state leaks across call sites and breaks the "every trial's
    seed derives from its coordinates" contract the parallel sweeps
    rely on.
``wall-clock``
    Wall-clock reads (``time.time``, ``perf_counter``,
    ``datetime.now``, …) inside the simulator core packages
    (:data:`WALL_CLOCK_PACKAGES`).  The simulation must advance only on
    its own event clock; host time belongs to the side-car layers
    (``runner``, ``obs``) only.
``float-eq``
    Bare ``==``/``!=`` between physical quantities (voltages, times,
    frequencies, temperatures — identified by name components), or
    between a physical quantity and a float literal.  Exact float
    comparison on derived physics is how silent guardband drift hides;
    use an epsilon or restructure.
``mutable-default``
    Mutable default arguments (``def f(x=[])``) — shared state across
    calls is both a bug magnet and a determinism leak.

Deliberate exceptions are recorded in a waiver file
(``tests/lint_waivers.txt``): one ``rule path-glob [substring]`` line
per waived finding, comments with ``#``.  Waivers that match nothing
are reported so the file cannot rot.
"""

from __future__ import annotations

import ast
import fnmatch
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError

#: Rule identifiers, in reporting order.
RULES: Tuple[str, ...] = ("unseeded-rng", "global-rng", "wall-clock",
                          "float-eq", "mutable-default")

#: Top-level ``repro`` subpackages that form the simulator core — the
#: only places the wall-clock rule applies (runner/obs are host-side).
WALL_CLOCK_PACKAGES: Tuple[str, ...] = ("soc", "pdn", "pmu", "microarch")

#: Wall-clock attribute names on the ``time`` module.
_TIME_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})

#: Wall-clock attribute names on ``datetime``/``datetime.datetime``.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Identifier components marking a value as a physical quantity for the
#: float-eq rule.  Identifiers are split on underscores and lowercased,
#: so ``vcc_start_mv`` has components {vcc, start, mv}.
PHYSICAL_COMPONENTS = frozenset({
    "vcc", "vdd", "volt", "volts", "voltage", "mv", "icc", "amp", "amps",
    "current", "temp", "temperature", "time", "times", "t", "t0", "t1",
    "ns", "us", "ms", "ghz", "mhz", "hz", "freq", "frequency",
})


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    message: str
    source: str

    def render(self) -> str:
        """One ``path:line: [rule] message`` report line."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Waiver:
    """One deliberate exception from the waiver file."""

    rule: str
    path_glob: str
    substring: Optional[str] = None

    def matches(self, finding: Finding) -> bool:
        """Whether this waiver covers ``finding``."""
        if self.rule != finding.rule:
            return False
        path = finding.path.replace(os.sep, "/")
        if not (fnmatch.fnmatch(path, self.path_glob)
                or path.endswith(self.path_glob)):
            return False
        if self.substring is not None and self.substring not in finding.source:
            return False
        return True


@dataclass
class LintReport:
    """Findings of one lint run, split by waiver status."""

    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    unused_waivers: List[Waiver] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no unwaived findings remain."""
        return not self.findings

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [finding.render() for finding in self.findings]
        for waiver in self.unused_waivers:
            lines.append(
                f"warning: unused waiver "
                f"'{waiver.rule} {waiver.path_glob}"
                f"{' ' + waiver.substring if waiver.substring else ''}'")
        if not lines:
            return "  lint clean"
        return "\n".join(f"  {line}" for line in lines)


def _identifier_of(node: ast.AST) -> str:
    """The identifier a comparison side 'is about', or empty string."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _identifier_of(node.value)
    if isinstance(node, ast.Call):
        return _identifier_of(node.func)
    if isinstance(node, ast.UnaryOp):
        return _identifier_of(node.operand)
    return ""


def _is_physical(node: ast.AST) -> bool:
    """Whether a comparison side names a physical quantity."""
    identifier = _identifier_of(node)
    if not identifier:
        return False
    components = identifier.lower().split("_")
    return any(component in PHYSICAL_COMPONENTS for component in components)


def _is_float_literal(node: ast.AST) -> bool:
    """Whether a node is a float constant (possibly negated)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class _Visitor(ast.NodeVisitor):
    """Collects findings for one source file."""

    def __init__(self, path: str, source_lines: Sequence[str],
                 check_wall_clock: bool) -> None:
        self.path = path
        self.source_lines = source_lines
        self.check_wall_clock = check_wall_clock
        self.findings: List[Finding] = []
        #: Names imported from ``time``/``datetime`` that read the wall
        #: clock (``from time import perf_counter``).
        self._wall_clock_names: Set[str] = set()

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        """Record one finding at ``node``'s line."""
        line = getattr(node, "lineno", 0)
        source = self.source_lines[line - 1].strip() \
            if 0 < line <= len(self.source_lines) else ""
        self.findings.append(Finding(rule=rule, path=self.path, line=line,
                                     message=message, source=source))

    # -- imports feeding the wall-clock rule ---------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Track wall-clock names imported from ``time``."""
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_ATTRS:
                    self._wall_clock_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls: RNG rules, wall-clock calls ----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        """Apply the RNG rules to one call expression."""
        func = node.func
        # unseeded-rng: default_rng() / random.Random() without arguments.
        tail = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        if tail == "default_rng" and not node.args and not node.keywords:
            self._add("unseeded-rng", node,
                      "np.random.default_rng() without an explicit seed")
        if tail == "Random" and not node.args and not node.keywords:
            base = func.value if isinstance(func, ast.Attribute) else None
            if base is None or (isinstance(base, ast.Name)
                                and base.id == "random"):
                self._add("unseeded-rng", node,
                          "random.Random() without an explicit seed")
        # global-rng: np.random.<legacy>(...) calls.
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in ("np", "numpy")
                and func.attr not in ("default_rng", "Generator",
                                      "SeedSequence", "PCG64", "Philox")):
            self._add("global-rng", node,
                      f"legacy global-state RNG np.random.{func.attr}(...)")
        self.generic_visit(node)

    # -- attribute reads: wall clock -----------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        """Apply the wall-clock rule to attribute reads."""
        if self.check_wall_clock:
            value = node.value
            if (isinstance(value, ast.Name) and value.id == "time"
                    and node.attr in _TIME_ATTRS):
                self._add("wall-clock", node,
                          f"wall-clock read time.{node.attr} in simulator core")
            if node.attr in _DATETIME_ATTRS:
                base = value
                if (isinstance(base, ast.Name) and base.id == "datetime") or (
                        isinstance(base, ast.Attribute)
                        and base.attr == "datetime"):
                    self._add("wall-clock", node,
                              f"wall-clock read datetime.{node.attr} "
                              f"in simulator core")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        """Flag uses of names imported from the wall clock."""
        if (self.check_wall_clock and isinstance(node.ctx, ast.Load)
                and node.id in self._wall_clock_names):
            self._add("wall-clock", node,
                      f"wall-clock read {node.id} (imported from time) "
                      f"in simulator core")
        self.generic_visit(node)

    # -- comparisons: float-eq ------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        """Apply the float-eq rule to one comparison."""
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            sides = [node.left] + list(node.comparators)
            physical = [side for side in sides if _is_physical(side)]
            floats = [side for side in sides if _is_float_literal(side)]
            if physical and (floats or len(physical) >= 2):
                identifier = _identifier_of(physical[0]) or "quantity"
                self._add("float-eq", node,
                          f"bare float equality on physical quantity "
                          f"'{identifier}'; compare with an epsilon")
        self.generic_visit(node)

    # -- function definitions: mutable-default --------------------------------

    def _check_defaults(self, node) -> None:
        """Apply the mutable-default rule to one function signature."""
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp,
                                           ast.SetComp))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set",
                                            "bytearray")):
                mutable = True
            if mutable:
                self._add("mutable-default", default,
                          f"mutable default argument in {node.name}()")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check a function definition's defaults."""
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Check an async function definition's defaults."""
        self._check_defaults(node)
        self.generic_visit(node)


def _wall_clock_applies(rel_path: str) -> bool:
    """Whether a path (relative, posix) is in a simulator-core package."""
    parts = rel_path.replace(os.sep, "/").split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1:]
    return bool(parts) and parts[0] in WALL_CLOCK_PACKAGES


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one source text; ``path`` determines wall-clock applicability."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ConfigError(f"{path}: cannot parse for linting: {exc}") from None
    visitor = _Visitor(path, source.splitlines(), _wall_clock_applies(path))
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.path, f.line, f.rule))


def default_lint_root() -> Path:
    """The package source tree the lint pass covers (``src/repro``)."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_waivers_path() -> Optional[Path]:
    """The repo's waiver file (``tests/lint_waivers.txt``), if present."""
    import repro

    repo_root = Path(repro.__file__).resolve().parent.parent.parent
    candidate = repo_root / "tests" / "lint_waivers.txt"
    return candidate if candidate.is_file() else None


def parse_waivers(text: str) -> List[Waiver]:
    """Parse waiver-file text into :class:`Waiver` entries.

    Each non-comment line is ``rule path-glob [substring...]``; the
    substring (everything after the second field) must appear in the
    offending source line for the waiver to apply.
    """
    waivers: List[Waiver] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 2:
            raise ConfigError(
                f"waiver line {lineno}: expected 'rule path-glob "
                f"[substring]', got {raw!r}")
        rule, path_glob = parts[0], parts[1]
        if rule not in RULES:
            raise ConfigError(
                f"waiver line {lineno}: unknown rule {rule!r}; valid: "
                f"{', '.join(RULES)}")
        substring = parts[2].strip() if len(parts) == 3 else None
        waivers.append(Waiver(rule=rule, path_glob=path_glob,
                              substring=substring))
    return waivers


def load_waivers(path: Optional[Path] = None) -> List[Waiver]:
    """Waivers from ``path`` (default: the repo's waiver file)."""
    if path is None:
        path = default_waivers_path()
        if path is None:
            return []
    return parse_waivers(Path(path).read_text(encoding="utf-8"))


def lint_paths(root: Optional[Path] = None,
               waivers: Optional[Iterable[Waiver]] = None) -> LintReport:
    """Lint every ``*.py`` under ``root`` and apply waivers.

    ``root`` defaults to the installed ``repro`` package sources;
    ``waivers`` defaults to the repo waiver file.  Paths in findings
    are reported relative to ``root``'s parent (so they read
    ``repro/measure/sampler.py``).
    """
    root = Path(root) if root is not None else default_lint_root()
    waiver_list = list(waivers) if waivers is not None else load_waivers()
    report = LintReport()
    used: Set[int] = set()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root.parent).as_posix()
        for finding in lint_source(path.read_text(encoding="utf-8"), rel):
            matched = False
            for index, waiver in enumerate(waiver_list):
                if waiver.matches(finding):
                    used.add(index)
                    matched = True
                    break
            (report.waived if matched else report.findings).append(finding)
    report.unused_waivers = [waiver for index, waiver in enumerate(waiver_list)
                             if index not in used]
    return report
