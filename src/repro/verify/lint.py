"""Legacy lint front end — now a thin shim over :mod:`repro.staticcheck`.

The determinism/hygiene rules that used to live here (``unseeded-rng``,
``global-rng``, ``wall-clock``, ``float-eq``, ``mutable-default``) are
implemented by the static-analysis framework's passes; this module
keeps the original public API — :func:`lint_source`, :func:`lint_paths`,
:func:`parse_waivers`, :class:`Finding`, :class:`Waiver`,
:class:`LintReport` — as re-exports and adapters so ``repro verify``
and existing callers keep working unchanged.

The shim restricts analysis to the legacy rule set (:data:`RULES`);
the full rule surface — dimensional analysis, pool safety, API
hygiene — is available through ``python -m repro.staticcheck``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.staticcheck.model import Finding, Waiver  # noqa: F401 (re-export)
from repro.staticcheck.passes.determinism import (  # noqa: F401 (re-export)
    WALL_CLOCK_PACKAGES,
)
from repro.staticcheck.passes.hygiene import (  # noqa: F401 (re-export)
    PHYSICAL_COMPONENTS,
)
from repro.staticcheck.runner import (
    analyze_paths,
    analyze_source,
    default_root,
)
from repro.staticcheck.waivers import (  # noqa: F401 (re-export)
    default_waivers_path,
    load_waivers,
    parse_waivers,
)

#: The legacy rule identifiers this front end reports, in order.
RULES: Tuple[str, ...] = ("unseeded-rng", "global-rng", "wall-clock",
                          "float-eq", "mutable-default")


@dataclass
class LintReport:
    """Findings of one lint run, split by waiver status."""

    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    unused_waivers: List[Waiver] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no unwaived findings remain."""
        return not self.findings

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [finding.render() for finding in self.findings]
        for waiver in self.unused_waivers:
            lines.append(f"warning: unused waiver '{waiver.render()}'")
        if not lines:
            return "  lint clean"
        return "\n".join(f"  {line}" for line in lines)


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one source text; ``path`` determines wall-clock applicability."""
    return analyze_source(source, path, rules=RULES)


def default_lint_root() -> Path:
    """The package source tree the lint pass covers (``src/repro``)."""
    return default_root()


def lint_paths(root: Optional[Path] = None,
               waivers: Optional[Iterable[Waiver]] = None) -> LintReport:
    """Lint every ``*.py`` under ``root`` and apply waivers.

    ``root`` defaults to the installed ``repro`` package sources;
    ``waivers`` defaults to the repo waiver file.  Only legacy-rule
    waivers participate (others belong to the full framework run).
    """
    roots = [Path(root)] if root is not None else None
    report = analyze_paths(paths=roots, rules=RULES, waivers=waivers)
    return LintReport(findings=report.findings, waived=report.waived,
                      unused_waivers=report.unused_waivers)


#: Incremental-engine flags the legacy shim deliberately refuses — the
#: cache, pool and changed-module selection live in the framework CLI.
_UNSUPPORTED_FLAGS: Tuple[str, ...] = (
    "--changed", "--cache", "--cache-dir", "--jobs", "--stats-json",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Minimal legacy CLI: lint the default tree, print, exit 0/1.

    The incremental flags (``--changed``, ``--cache-dir``, ``--jobs``,
    ...) are rejected with a pointer to ``python -m repro.staticcheck``
    rather than silently ignored: the shim always re-analyses the full
    legacy rule set, so accepting those flags would lie about what ran.
    """
    args = list(sys.argv[1:] if argv is None else argv)
    for arg in args:
        flag = arg.split("=", 1)[0]
        if flag in _UNSUPPORTED_FLAGS:
            print(f"repro.verify.lint: {flag} is not supported by the "
                  f"legacy shim; use 'python -m repro.staticcheck' for "
                  f"incremental/parallel analysis", file=sys.stderr)
            return 2
    if args:
        print(f"repro.verify.lint: unexpected argument(s) "
              f"{' '.join(args)}; the shim lints the installed tree "
              f"with the legacy rules only (see python -m "
              f"repro.staticcheck --help)", file=sys.stderr)
        return 2
    report = lint_paths()
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
