"""Canonical scenarios the golden-trace harness pins.

Each scenario is a module-level function reducing one end-to-end
behaviour of the reproduction to a digest *document* (plain JSON types;
see :mod:`repro.verify.digest`).  The set is chosen so the emergent
Section-5 behaviours are all covered:

* ``demo_transfer`` — the three covert channels transferring the demo
  payload, pinned down to every symbol, receiver measurement, rail
  breakpoint and deterministic metrics counter;
* ``fig6_slice`` — Eq.-1 guardband steps (load-line physics);
* ``fig8_slice`` — TP quantization distributions across the three
  parts, plus power-gate wake deltas;
* ``fig13_slice`` — receiver TP level clusters and decode thresholds;
* ``resilience_slice`` — the fault-injection resilience sweep at
  nominal intensity across all three mitigation stacks;
* ``scenario_baseline_cores`` / ``scenario_trace_replay`` /
  ``scenario_interference_2pair`` — declarative-library scenarios
  (:mod:`repro.scenarios`) pinned as full run documents, covering the
  single-pair baseline, trace-driven background replay, and the
  multi-tenant shared-PMU topology;
* ``matrix_2x2`` — a plain/adaptive x none/secure corner of the
  attacker-vs-defender mitigation matrix
  (:mod:`repro.mitigations.matrix`), whose undefended plain cell must
  stay bit-identical to ``scenario_baseline_cores``.

Scenarios marked ``supports_runner`` accept a
:class:`~repro.runner.SweepRunner`, which the determinism auditor uses
to prove that worker count and cache state cannot change any digest.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.experiments import (
    fig6_voltage_steps,
    fig8_throttling,
    fig13_level_distribution,
    resilience_sweep,
)
from repro.core import IccCoresCovert, IccSMTcovert, IccThreadCovert
from repro.errors import ConfigError
from repro.obs import Tracer, metrics_fingerprint, tracing
from repro.runner import SweepRunner
from repro.soc.config import cannon_lake_i3_8121u
from repro.soc.system import System
from repro.verify.digest import (
    content_digest,
    summarize_array,
    summarize_breakpoints,
)

#: Payload every transfer-shaped scenario sends (same as the CLI demo).
DEMO_MESSAGE = b"IChannels"


def _rail_fingerprint(system: System) -> Dict[str, Any]:
    """Breakpoint fingerprints of the system's observable signals."""
    vcc_times, vcc_values = system.vcc_signal().breakpoints()
    icc_times, icc_values = system.icc_signal().breakpoints()
    freq_times, freq_values = system.freq_signal().breakpoints()
    return {
        "vcc": summarize_breakpoints(vcc_times, vcc_values, name="vcc"),
        "icc": summarize_breakpoints(icc_times, icc_values, name="icc"),
        "freq": summarize_breakpoints(freq_times, freq_values, name="freq"),
    }


def demo_transfer() -> Dict[str, Any]:
    """The three-channel demo, reduced to a digest document.

    Runs each channel on a fresh Cannon Lake system under an active
    tracer, and records the full transfer fingerprint (symbols,
    measurements, timings), the rail breakpoints, and the deterministic
    slice of the metrics registry.
    """
    channels: Tuple[Tuple[str, type], ...] = (
        ("IccThreadCovert", IccThreadCovert),
        ("IccSMTcovert", IccSMTcovert),
        ("IccCoresCovert", IccCoresCovert),
    )
    document: Dict[str, Any] = {}
    tracer = Tracer(events=False)
    with tracing(tracer):
        for name, channel_cls in channels:
            system = System(cannon_lake_i3_8121u())
            report = channel_cls(system).transfer(DEMO_MESSAGE)
            document[name] = {
                "report": report.fingerprint(),
                "rails": _rail_fingerprint(system),
            }
    document["metrics"] = metrics_fingerprint(tracer)
    return document


def fig6_slice() -> Dict[str, Any]:
    """Figure 6 guardband steps (Eq. 1 emergents) as a digest document."""
    result = fig6_voltage_steps()
    return {
        "steps": {
            "vcc_start_mv": result.vcc_start_mv,
            "step_core1_mv": result.step_core1_mv,
            "step_core0_mv": result.step_core0_mv,
            "return_mv": result.return_mv,
            "freq_ghz_start": result.freq_ghz_start,
            "freq_ghz_end": result.freq_ghz_end,
        },
        "vcc_samples": result.vcc_samples.fingerprint(),
        "calculix": {
            "vcc_samples": result.calculix_vcc.fingerprint(),
            "phases": int(result.calculix_phases),
        },
    }


def fig8_slice(runner: Optional[SweepRunner] = None) -> Dict[str, Any]:
    """Figure 8 TP distributions (trimmed sweep) as a digest document."""
    result = fig8_throttling(trials=6, runner=runner)
    return {
        "tp_us": {part: [float(v) for v in values]
                  for part, values in result.tp_us_by_part.items()},
        "iteration_deltas_ns": {
            part: [float(v) for v in values]
            for part, values in result.iteration_deltas_ns.items()
        },
    }


def fig13_slice(runner: Optional[SweepRunner] = None) -> Dict[str, Any]:
    """Figure 13 receiver level clusters as a digest document."""
    result = fig13_level_distribution(symbols_per_level=6, seed=13,
                                      runner=runner)
    return {
        "samples_by_symbol": {
            str(symbol): summarize_array(values, name=f"symbol{symbol}")
            for symbol, values in sorted(result.samples_by_symbol.items())
        },
        "thresholds": [float(t) for t in result.thresholds],
        "separations": [[int(a), int(b), float(gap)]
                        for a, b, gap in result.separations],
        "min_gap_cycles": float(result.min_gap_cycles),
    }


def resilience_slice(runner: Optional[SweepRunner] = None) -> Dict[str, Any]:
    """Resilience sweep at nominal fault intensity as a digest document."""
    result = resilience_sweep(
        payload=b"\x5a\x0f\xc3\x3c",
        intensities=(1.0,),
        channels=("cores",),
        trials=1,
        runner=runner,
    )
    return {
        "payload_bytes": result.payload_bytes,
        "trials": result.trials,
        "points": {
            f"{p.channel}/{p.mitigation}@{p.intensity:g}":
                dataclasses.asdict(p)
            for p in result.points
        },
    }


def scenario_baseline_cores() -> Dict[str, Any]:
    """The declarative ``baseline_cores`` scenario's full run document."""
    from repro.scenarios.run import run_document

    return run_document("baseline_cores")


def scenario_trace_replay() -> Dict[str, Any]:
    """The declarative ``trace_replay`` scenario's full run document."""
    from repro.scenarios.run import run_document

    return run_document("trace_replay")


def scenario_interference_2pair() -> Dict[str, Any]:
    """The declarative two-tenant interference scenario's run document."""
    from repro.scenarios.run import run_document

    return run_document("interference_2pair")


def matrix_2x2(runner: Optional[SweepRunner] = None) -> Dict[str, Any]:
    """A 2x2 corner of the mitigation matrix as a digest document.

    Plain and adaptive cross-core attackers against no defence and the
    secure mode: one golden pins an open cell whose underlying run
    document is bit-identical to ``scenario_baseline_cores``, a
    session cell, and two defeated cells.  Costs are skipped — the
    cost harness has its own benchmark — so the golden stays cheap.
    """
    from repro.mitigations.matrix import run_matrix

    report = run_matrix(attackers=("plain_cores", "adaptive_cores"),
                        defenders=("none", "secure_mode"),
                        runner=runner, include_costs=False)
    return report.document()


@dataclass(frozen=True)
class Scenario:
    """One canonical scenario of the golden-trace harness.

    Parameters
    ----------
    name:
        Stable identifier; also the golden file's stem.
    fn:
        Module-level function producing the digest document.  Takes a
        ``runner`` keyword when ``supports_runner`` is true.
    supports_runner:
        Whether the determinism auditor may vary
        :class:`~repro.runner.SweepRunner` worker counts and cache
        state for this scenario.
    description:
        One line for ``python -m repro.verify --list``.
    """

    name: str
    fn: Callable[..., Dict[str, Any]]
    supports_runner: bool
    description: str


#: Registry of canonical scenarios, in checking order.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("demo_transfer", demo_transfer, False,
             "three covert channels transferring the demo payload"),
    Scenario("fig6_slice", fig6_slice, False,
             "Eq.-1 guardband voltage steps (Figure 6)"),
    Scenario("fig8_slice", fig8_slice, True,
             "TP quantization distributions (Figure 8, trimmed)"),
    Scenario("fig13_slice", fig13_slice, True,
             "receiver TP level clusters and thresholds (Figure 13)"),
    Scenario("resilience_slice", resilience_slice, True,
             "fault-injection resilience sweep at nominal intensity"),
    Scenario("scenario_baseline_cores", scenario_baseline_cores, False,
             "declarative library: single cross-core pair baseline"),
    Scenario("scenario_trace_replay", scenario_trace_replay, False,
             "declarative library: cross-core pair beside trace replay"),
    Scenario("scenario_interference_2pair", scenario_interference_2pair,
             False,
             "declarative library: two tenant pairs sharing one PMU"),
    Scenario("matrix_2x2", matrix_2x2, True,
             "mitigation matrix corner: plain/adaptive x none/secure"),
)


def scenario_names() -> List[str]:
    """Names of all registered scenarios, in checking order."""
    return [scenario.name for scenario in SCENARIOS]


def get_scenario(name: str) -> Scenario:
    """The registered scenario called ``name``.

    Raises :class:`~repro.errors.ConfigError` with the valid names on a
    typo, mirroring the CLI's error behaviour.
    """
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise ConfigError(
        f"unknown scenario {name!r}; valid names: {', '.join(scenario_names())}")


def compute_document(name: str,
                     runner: Optional[SweepRunner] = None) -> Dict[str, Any]:
    """Run one scenario and return its digest document.

    ``runner`` is forwarded only to scenarios that support it; passing
    one to a serial-only scenario is silently ignored (the auditor
    relies on this when sweeping variations over every scenario).
    """
    scenario = get_scenario(name)
    if scenario.supports_runner:
        return scenario.fn(runner=runner)
    return scenario.fn()


def compute_digest(name: str,
                   runner: Optional[SweepRunner] = None) -> str:
    """Run one scenario and return its content digest."""
    return content_digest(compute_document(name, runner=runner))
