"""Committed golden documents and the regression check against them.

A golden file (``tests/goldens/<scenario>.json``) stores one scenario's
canonical document together with its content digest and per-section
digests.  The check recomputes the scenario and compares digests; on a
mismatch it reports *which sections* drifted and the leaf-level value
diffs, so a silently changed emergent number (a TP plateau, an Eq.-1
step, a decode threshold) turns into a reviewable failure instead of a
quietly wrong figure.

Regeneration is deliberate and explicit::

    python -m repro.verify --update-goldens

which rewrites every golden from the current sources — to be done only
when a change is *supposed* to move the physics, and reviewed like any
other diff (see ``docs/VERIFICATION.md``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.runner import SweepRunner, canonicalize
from repro.verify.digest import content_digest, diff_documents, section_digests
from repro.verify.scenarios import compute_document, scenario_names

#: Environment variable overriding the default goldens directory.
GOLDENS_DIR_ENV = "REPRO_GOLDENS_DIR"

#: Golden file schema version (bump on incompatible layout changes).
GOLDEN_SCHEMA = 1


def default_goldens_dir() -> Path:
    """The goldens directory: ``$REPRO_GOLDENS_DIR`` or the repo's.

    With the editable/source layout (``src/repro``), the repository
    root is two levels above the package, and the goldens live in
    ``tests/goldens``.  Falls back to ``tests/goldens`` under the
    current working directory for non-source installs.
    """
    env = os.environ.get(GOLDENS_DIR_ENV)
    if env:
        return Path(env)
    import repro

    repo_root = Path(repro.__file__).resolve().parent.parent.parent
    candidate = repo_root / "tests" / "goldens"
    if candidate.is_dir():
        return candidate
    return Path.cwd() / "tests" / "goldens"


def golden_path(name: str, goldens_dir: Optional[Path] = None) -> Path:
    """Path of the golden file for scenario ``name``."""
    root = goldens_dir if goldens_dir is not None else default_goldens_dir()
    return Path(root) / f"{name}.json"


def write_golden(name: str, document: Dict[str, Any],
                 goldens_dir: Optional[Path] = None) -> Path:
    """Write one scenario's golden file; returns the path written."""
    canonical = canonicalize(document)
    payload = {
        "schema": GOLDEN_SCHEMA,
        "scenario": name,
        "digest": content_digest(document),
        "sections": section_digests(document),
        "document": canonical,
    }
    path = golden_path(name, goldens_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_golden(name: str,
                goldens_dir: Optional[Path] = None) -> Optional[Dict[str, Any]]:
    """The parsed golden for ``name``, or ``None`` when not committed."""
    path = golden_path(name, goldens_dir)
    if not path.is_file():
        return None
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != GOLDEN_SCHEMA:
        raise ConfigError(
            f"golden {path} has schema {payload.get('schema')!r}; "
            f"this build reads schema {GOLDEN_SCHEMA} — regenerate with "
            f"python -m repro.verify --update-goldens")
    return payload


@dataclass
class GoldenCheck:
    """Outcome of checking one scenario against its golden."""

    scenario: str
    status: str  # "ok" | "mismatch" | "missing"
    expected_digest: str = ""
    actual_digest: str = ""
    #: Top-level sections whose digests differ.
    drifted_sections: List[str] = field(default_factory=list)
    #: Leaf-level value differences, ``path: old -> new``.
    diff_lines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the recomputed document matches the golden."""
        return self.status == "ok"

    def render(self) -> str:
        """Multi-line human-readable report of this check."""
        if self.ok:
            return f"  ok       {self.scenario}  {self.actual_digest[:16]}"
        if self.status == "missing":
            return (f"  MISSING  {self.scenario}: no golden committed; run "
                    f"python -m repro.verify --update-goldens")
        lines = [
            f"  DRIFT    {self.scenario}: digest "
            f"{self.expected_digest[:16]} -> {self.actual_digest[:16]}",
            f"           drifted sections: "
            f"{', '.join(self.drifted_sections) or '(top-level)'}",
        ]
        lines.extend(f"           {line}" for line in self.diff_lines)
        return "\n".join(lines)


def check_scenario(name: str, goldens_dir: Optional[Path] = None,
                   runner: Optional[SweepRunner] = None) -> GoldenCheck:
    """Recompute one scenario and compare it to its committed golden."""
    document = compute_document(name, runner=runner)
    actual_digest = content_digest(document)
    golden = load_golden(name, goldens_dir)
    if golden is None:
        return GoldenCheck(scenario=name, status="missing",
                           actual_digest=actual_digest)
    if golden["digest"] == actual_digest:
        return GoldenCheck(scenario=name, status="ok",
                           expected_digest=golden["digest"],
                           actual_digest=actual_digest)
    sections = section_digests(document)
    drifted = sorted(
        set(golden["sections"]) ^ set(sections)
        | {s for s in set(golden["sections"]) & set(sections)
           if golden["sections"][s] != sections[s]})
    return GoldenCheck(
        scenario=name,
        status="mismatch",
        expected_digest=golden["digest"],
        actual_digest=actual_digest,
        drifted_sections=drifted,
        diff_lines=diff_documents(golden["document"], document),
    )


def check_all(names: Optional[Sequence[str]] = None,
              goldens_dir: Optional[Path] = None,
              runner: Optional[SweepRunner] = None) -> List[GoldenCheck]:
    """Check every (or the named) scenario against its golden."""
    return [check_scenario(name, goldens_dir, runner=runner)
            for name in (names if names else scenario_names())]


def update_goldens(names: Optional[Sequence[str]] = None,
                   goldens_dir: Optional[Path] = None,
                   runner: Optional[SweepRunner] = None) -> List[Path]:
    """Regenerate the (or the named) golden files from current sources."""
    paths = []
    for name in (names if names else scenario_names()):
        document = compute_document(name, runner=runner)
        paths.append(write_golden(name, document, goldens_dir))
    return paths
