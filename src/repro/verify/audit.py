"""Determinism auditor: prove environment variations cannot move digests.

The golden check pins *one* execution; the auditor pins the claim that
the execution is the only one possible.  For every canonical scenario it
recomputes the digest under deliberately hostile variations and fails on
any divergence from the in-process baseline:

* ``hashseed=0`` / ``hashseed=1`` — a fresh interpreter per run with a
  different ``PYTHONHASHSEED``, catching anything that leaks set/dict
  iteration order or ``hash()`` values into results;
* ``jobs=2`` — a :class:`~repro.runner.SweepRunner` process pool,
  catching order-dependence or worker-state leakage in the parallel
  sweep path (scenarios that support a runner only);
* ``cache=cold`` / ``cache=warm`` — the same runner backed by a
  content-addressed :class:`~repro.runner.ResultCache`, first empty and
  then fully populated, catching any difference between computing a
  result and round-tripping it through the cache.

Subprocess checks go through ``python -m repro.verify --compute NAME``,
which prints exactly ``NAME <digest>`` and nothing else.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.runner import ResultCache, SweepRunner
from repro.verify.scenarios import compute_digest, get_scenario, scenario_names

#: ``PYTHONHASHSEED`` values the fresh-interpreter checks run under.
HASH_SEEDS = ("0", "1")


@dataclass(frozen=True)
class AuditCheck:
    """One scenario digest computed under one variation."""

    scenario: str
    variation: str
    digest: str
    baseline: str

    @property
    def ok(self) -> bool:
        """True when the variation reproduced the baseline digest."""
        return self.digest == self.baseline

    def render(self) -> str:
        """One report line for this check."""
        mark = "ok      " if self.ok else "DIVERGED"
        detail = self.digest[:16] if self.ok else (
            f"{self.baseline[:16]} -> {self.digest[:16]}")
        return f"  {mark} {self.scenario} [{self.variation}]  {detail}"


@dataclass
class AuditReport:
    """All checks of one determinism audit."""

    checks: List[AuditCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no variation diverged."""
        return all(check.ok for check in self.checks)

    @property
    def divergences(self) -> List[AuditCheck]:
        """The checks that diverged from their baseline."""
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        """Multi-line human-readable report."""
        return "\n".join(check.render() for check in self.checks)


def _subprocess_digest(name: str, hashseed: str) -> str:
    """Digest of ``name`` computed in a fresh interpreter.

    The child runs ``python -m repro.verify --compute name`` with the
    requested ``PYTHONHASHSEED`` and a ``PYTHONPATH`` that resolves the
    same ``repro`` sources as this process.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.verify", "--compute", name],
        env=env, capture_output=True, text=True, check=True)
    line = proc.stdout.strip().splitlines()[-1]
    reported_name, digest = line.split()
    assert reported_name == name, f"subprocess answered for {reported_name}"
    return digest


def audit_scenario(name: str, baseline: Optional[str] = None,
                   subprocess_checks: bool = True) -> List[AuditCheck]:
    """All variation checks for one scenario.

    ``baseline`` (the trusted in-process digest) is computed when not
    supplied.  ``subprocess_checks=False`` skips the fresh-interpreter
    hash-seed runs — they re-import the world and dominate wall time, so
    tests that only exercise the runner/cache variations can opt out.
    """
    scenario = get_scenario(name)
    if baseline is None:
        baseline = compute_digest(name)
    checks: List[AuditCheck] = []
    if subprocess_checks:
        for seed in HASH_SEEDS:
            checks.append(AuditCheck(
                scenario=name, variation=f"hashseed={seed}",
                digest=_subprocess_digest(name, seed), baseline=baseline))
    if scenario.supports_runner:
        checks.append(AuditCheck(
            scenario=name, variation="jobs=2",
            digest=compute_digest(name, runner=SweepRunner(jobs=2)),
            baseline=baseline))
        with tempfile.TemporaryDirectory(prefix="repro-audit-") as tmp:
            cache = ResultCache(root=tmp)
            checks.append(AuditCheck(
                scenario=name, variation="cache=cold",
                digest=compute_digest(name, runner=SweepRunner(jobs=1,
                                                               cache=cache)),
                baseline=baseline))
            checks.append(AuditCheck(
                scenario=name, variation="cache=warm",
                digest=compute_digest(name, runner=SweepRunner(jobs=1,
                                                               cache=cache)),
                baseline=baseline))
    return checks


def audit_all(names: Optional[Sequence[str]] = None,
              baselines: Optional[Dict[str, str]] = None,
              subprocess_checks: bool = True) -> AuditReport:
    """Audit every (or the named) scenario; returns the full report.

    ``baselines`` maps scenario name to an already-computed in-process
    digest — the CLI passes the digests it just verified against the
    goldens, so the audit never recomputes the serial run.
    """
    report = AuditReport()
    for name in (names if names else scenario_names()):
        baseline = (baselines or {}).get(name)
        report.checks.extend(audit_scenario(
            name, baseline=baseline, subprocess_checks=subprocess_checks))
    return report
