"""Golden-trace verification: the reproduction's regression gate.

The simulator is fully deterministic, which makes an unusually strong
verification posture possible: every canonical scenario reduces to one
exact content digest, and *any* drift — a changed constant, a reordered
reduction, a platform difference — is a failure with a leaf-level diff,
not a tolerance judgement call.  This package implements that gate:

* :mod:`repro.verify.digest` — canonical JSON, content digests, diffs;
* :mod:`repro.verify.scenarios` — the canonical scenario registry;
* :mod:`repro.verify.goldens` — committed goldens and the check/update
  round-trip;
* :mod:`repro.verify.audit` — determinism audit across hash seeds,
  worker counts and cache states;
* :mod:`repro.verify.lint` — AST lint enforcing the determinism rules
  at the source level;
* :mod:`repro.verify.differential` — fast-path vs reference-path
  equivalence checks;
* :mod:`repro.verify.bench_gate` — benchmark regression gate over
  pytest-benchmark artifacts.

Run the whole gate with ``python -m repro.verify``; see
``docs/VERIFICATION.md``.
"""

from repro.verify.audit import AuditCheck, AuditReport, audit_all, audit_scenario
from repro.verify.bench_gate import (
    BenchDelta,
    GateReport,
    compare,
    load_baseline,
    load_benchmark_medians,
    write_baseline,
)
from repro.verify.differential import (
    DiffCheck,
    check_adaptive_plain_equivalence,
    check_sampler_bitwise,
)
from repro.verify.digest import (
    canonical_json,
    content_digest,
    diff_documents,
    flatten_leaves,
    section_digests,
    summarize_array,
    summarize_breakpoints,
)
from repro.verify.goldens import (
    GoldenCheck,
    check_all,
    check_scenario,
    load_golden,
    update_goldens,
    write_golden,
)
from repro.verify.lint import (
    Finding,
    LintReport,
    Waiver,
    lint_paths,
    lint_source,
    load_waivers,
    parse_waivers,
)
from repro.verify.scenarios import (
    SCENARIOS,
    Scenario,
    compute_digest,
    compute_document,
    get_scenario,
    scenario_names,
)

__all__ = [
    "AuditCheck",
    "AuditReport",
    "BenchDelta",
    "DiffCheck",
    "Finding",
    "GateReport",
    "GoldenCheck",
    "LintReport",
    "SCENARIOS",
    "Scenario",
    "Waiver",
    "audit_all",
    "audit_scenario",
    "canonical_json",
    "check_adaptive_plain_equivalence",
    "check_all",
    "check_sampler_bitwise",
    "check_scenario",
    "compare",
    "compute_digest",
    "compute_document",
    "content_digest",
    "diff_documents",
    "flatten_leaves",
    "get_scenario",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_benchmark_medians",
    "load_golden",
    "load_waivers",
    "parse_waivers",
    "scenario_names",
    "section_digests",
    "summarize_array",
    "summarize_breakpoints",
    "update_goldens",
    "write_baseline",
    "write_golden",
]
