"""Benchmark regression gate over pytest-benchmark JSON artifacts.

CI runs the benchmark suites with ``--benchmark-json=bench-*.json``;
this gate compares each benchmark's **median** against the committed
baseline (``benchmarks/BENCH_baseline.json``) and fails when any median
regresses beyond the tolerance (default +25% — wide enough for shared
CI runners, tight enough to catch the order-of-magnitude slips the
vectorized sampling and parallel sweep work exist to prevent).

Speed-ups never fail the gate; they show up in the delta table so a
suspiciously large one still gets eyeballs.  Benchmarks absent from the
baseline are reported as ``new`` (not failed) so adding a benchmark
does not require a lockstep baseline update; refreshing the baseline is
explicit::

    python -m repro.verify.bench_gate --update-baseline bench-*.json

The delta table is written as GitHub-flavoured markdown to
``--summary`` (defaulting to ``$GITHUB_STEP_SUMMARY`` when set), so the
comparison appears directly on the workflow run page.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError

#: Baseline file schema version.
BASELINE_SCHEMA = 1

#: Default allowed slowdown before a benchmark fails the gate (+25%).
DEFAULT_TOLERANCE = 0.25

#: Default baseline location, relative to the repository root.
DEFAULT_BASELINE = "benchmarks/BENCH_baseline.json"


def load_benchmark_medians(path: Path) -> Dict[str, float]:
    """``{benchmark name: median seconds}`` from a pytest-benchmark JSON."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ConfigError(f"{path}: not a pytest-benchmark JSON "
                          f"(no 'benchmarks' list)")
    medians: Dict[str, float] = {}
    for bench in benchmarks:
        medians[bench["name"]] = float(bench["stats"]["median"])
    return medians


def collect_medians(paths: Sequence[Path]) -> Dict[str, float]:
    """Merged medians of several artifact files (duplicate names collide)."""
    merged: Dict[str, float] = {}
    for path in paths:
        for name, median in load_benchmark_medians(Path(path)).items():
            if name in merged:
                raise ConfigError(
                    f"benchmark {name!r} appears in more than one artifact")
            merged[name] = median
    return merged


def load_baseline(path: Path) -> Dict[str, float]:
    """The committed baseline medians; raises on schema mismatch."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ConfigError(
            f"baseline {path} has schema {payload.get('schema')!r}; this "
            f"build reads schema {BASELINE_SCHEMA} — regenerate with "
            f"--update-baseline")
    return {name: float(median)
            for name, median in payload["medians"].items()}


def write_baseline(path: Path, medians: Dict[str, float]) -> None:
    """Write a new baseline file from ``medians``."""
    payload = {
        "schema": BASELINE_SCHEMA,
        "note": ("Benchmark gate baseline: median seconds per benchmark. "
                 "Regenerate with python -m repro.verify.bench_gate "
                 "--update-baseline bench-*.json"),
        "medians": {name: medians[name] for name in sorted(medians)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")


@dataclass(frozen=True)
class BenchDelta:
    """One benchmark's comparison against the baseline."""

    name: str
    baseline_s: Optional[float]
    current_s: float
    tolerance: float

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline, or ``None`` for a new benchmark."""
        if self.baseline_s is None or self.baseline_s <= 0:
            return None
        return self.current_s / self.baseline_s

    @property
    def status(self) -> str:
        """``ok`` | ``regression`` | ``new``."""
        ratio = self.ratio
        if ratio is None:
            return "new"
        return "regression" if ratio > 1.0 + self.tolerance else "ok"


@dataclass
class GateReport:
    """Outcome of one gate run."""

    deltas: List[BenchDelta] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def regressions(self) -> List[BenchDelta]:
        """The benchmarks that regressed beyond tolerance."""
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        """True when no benchmark regressed beyond tolerance."""
        return not self.regressions

    def markdown(self) -> str:
        """GitHub-flavoured markdown delta table for the step summary."""
        lines = [
            "### Benchmark gate "
            + ("✅ within tolerance" if self.ok
               else f"❌ {len(self.regressions)} regression(s)"),
            "",
            f"Tolerance: +{self.tolerance:.0%} over committed baseline "
            f"medians.",
            "",
            "| benchmark | baseline (s) | current (s) | delta | status |",
            "|---|---:|---:|---:|---|",
        ]
        for delta in sorted(self.deltas,
                            key=lambda d: (d.status != "regression", d.name)):
            if delta.ratio is None:
                base, change = "—", "new"
            else:
                base = f"{delta.baseline_s:.6f}"
                change = f"{(delta.ratio - 1.0):+.1%}"
            mark = {"ok": "ok", "new": "new",
                    "regression": "**REGRESSION**"}[delta.status]
            lines.append(f"| `{delta.name}` | {base} | "
                         f"{delta.current_s:.6f} | {change} | {mark} |")
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        """Plain-text report for the job log."""
        lines = []
        for delta in self.deltas:
            ratio = f"{delta.ratio:.3f}x" if delta.ratio is not None else "new"
            lines.append(f"  {delta.status:<10} {delta.name}  "
                         f"median {delta.current_s:.6f}s  ({ratio})")
        return "\n".join(lines)


def compare(baseline: Dict[str, float], current: Dict[str, float],
            tolerance: float = DEFAULT_TOLERANCE) -> GateReport:
    """Compare current medians against the baseline."""
    report = GateReport(tolerance=tolerance)
    for name in sorted(current):
        report.deltas.append(BenchDelta(
            name=name, baseline_s=baseline.get(name),
            current_s=current[name], tolerance=tolerance))
    return report


def default_baseline_path() -> Path:
    """The committed baseline's path, resolved from the package root."""
    import repro

    repo_root = Path(repro.__file__).resolve().parent.parent.parent
    return repo_root / DEFAULT_BASELINE


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.bench_gate",
        description="Compare pytest-benchmark artifacts against the "
                    "committed baseline and fail on regressions.")
    parser.add_argument("artifacts", nargs="+", type=Path,
                        help="pytest-benchmark JSON files (bench-*.json)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE})")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional slowdown "
                             "(default: %(default)s)")
    parser.add_argument("--summary", type=Path, default=None,
                        help="write the markdown delta table here "
                             "(default: $GITHUB_STEP_SUMMARY when set)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the artifacts "
                             "instead of gating")
    args = parser.parse_args(argv)
    baseline_path = args.baseline if args.baseline is not None \
        else default_baseline_path()
    current = collect_medians(args.artifacts)
    if args.update_baseline:
        write_baseline(baseline_path, current)
        print(f"baseline updated: {baseline_path} "
              f"({len(current)} benchmarks)")
        return 0
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}; run with --update-baseline "
              f"to create one", file=sys.stderr)
        return 2
    report = compare(load_baseline(baseline_path), current,
                     tolerance=args.tolerance)
    print(report.render())
    summary_path = args.summary
    if summary_path is None and os.environ.get("GITHUB_STEP_SUMMARY"):
        summary_path = Path(os.environ["GITHUB_STEP_SUMMARY"])
    if summary_path is not None:
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(report.markdown())
    if not report.ok:
        names = ", ".join(d.name for d in report.regressions)
        print(f"benchmark gate FAILED: {names}", file=sys.stderr)
        return 1
    print(f"benchmark gate passed: {len(report.deltas)} benchmarks within "
          f"+{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
