"""Package entry point: ``python -m repro`` runs a short live demo.

Transfers a message over each of the three IChannels on a simulated
Cannon Lake part and prints the decoded payloads — the fastest way to
see the reproduction work.  ``--jobs N`` runs the three transfers on a
process pool and ``--cache-dir PATH`` caches their results (see
:mod:`repro.runner`); the demo output is identical either way.
``--faults SPEC`` attaches fault models from :mod:`repro.faults` (try
``--faults default``) and ``--adaptive`` routes each message through
the adaptive session — together they demo the resilience story from
docs/FAULTS.md.  ``--scenario NAME`` runs a named topology from the
declarative scenario library instead (see docs/SCENARIOS.md and
``python -m repro.scenarios list``).  ``--mitigation-matrix`` runs the
attacker-vs-defender evaluation matrix (optionally exporting
``--matrix-csv``/``--matrix-json``; see docs/MITIGATIONS.md).  For the
full paper regeneration use ``python -m repro.analysis.report``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence, Tuple

from repro import System, cannon_lake_i3_8121u
from repro.core import AdaptiveConfig, CovertSession, SessionConfig
from repro.core import IccCoresCovert, IccSMTcovert, IccThreadCovert
from repro.errors import CalibrationError, ConfigError, ProtocolError
from repro.faults import parse_fault_spec
from repro.obs import Tracer, tracing, write_chrome_trace, write_metrics_json
from repro.runner import ResultCache, SweepRunner

_DEMO_CHANNELS = {
    "IccThreadCovert": IccThreadCovert,
    "IccSMTcovert": IccSMTcovert,
    "IccCoresCovert": IccCoresCovert,
}


def _demo_transfer(channel_name: str, message: bytes,
                   fault_spec: str = "",
                   adaptive: bool = False) -> Tuple[bytes, float, float]:
    """One demo transfer: (received, ber, throughput_bps).

    With a non-empty ``fault_spec`` the named fault models are attached
    before the transfer; ``adaptive`` routes the message through the
    adaptive :class:`CovertSession` instead of a bare transfer.
    """
    system = System(cannon_lake_i3_8121u())
    if fault_spec:
        parse_fault_spec(fault_spec).attach(system)
    channel = _DEMO_CHANNELS[channel_name](system)
    if adaptive:
        session = CovertSession(channel, SessionConfig(
            max_retries=8, adaptive=AdaptiveConfig()))
        try:
            report = session.send(message)
        except (CalibrationError, ProtocolError):
            return b"", 1.0, 0.0
        received = report.delivered if report.ok else report.best_effort
        return received, report.residual_ber, report.goodput_bps
    try:
        report = channel.transfer(message)
    except (CalibrationError, ProtocolError):
        return b"", 1.0, 0.0
    return report.received, report.ber, report.throughput_bps


def _cmd_mitigation_matrix(args: argparse.Namespace) -> int:
    """Run the mitigation matrix and print/export its report.

    Prints the markdown verdict grid, the per-defender cost lines and
    the acceptance summaries (channels each paper recipe defeats,
    adaptive-dominance shortfalls); writes CSV/JSON exports when asked.
    Returns 1 when the adaptive tier fails to dominate plain ARQ —
    the property the CI smoke job gates on.
    """
    from repro.mitigations.matrix import run_matrix, smoke_matrix

    cache = ResultCache(root=args.cache_dir) if args.cache_dir else None
    runner = SweepRunner(jobs=args.jobs, cache=cache)
    if args.mitigation_matrix == "smoke":
        report = smoke_matrix(runner=runner)
    else:
        report = run_matrix(runner=runner)
    print(f"mitigation matrix: {len(report.attackers)} attackers x "
          f"{len(report.defenders)} defenders "
          f"({len(report.cells)} cells)\n")
    print(report.markdown_table())
    print("defender costs (victim workload):")
    for cost in report.costs:
        print(f"  {cost.defender:20s} runtime {cost.runtime_overhead:+7.2%}"
              f"  power {cost.power_overhead:+7.2%}")
    for defender in ("per_core_ldo", "improved_throttling", "secure_mode"):
        if defender in report.defenders:
            killed = ", ".join(sorted(report.channels_defeated(defender)))
            print(f"{defender} defeats: {killed or 'nothing'}")
    shortfalls = report.adaptive_shortfalls()
    if shortfalls:
        print("\nADAPTIVE SHORTFALLS (adaptive should dominate arq):")
        for line in shortfalls:
            print(f"  {line}")
    if args.matrix_csv:
        report.write_csv(args.matrix_csv)
        print(f"\ncsv: {args.matrix_csv}")
    if args.matrix_json:
        report.write_json(args.matrix_json)
        print(f"json: {args.matrix_json}")
    return 1 if shortfalls else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the three channels end to end and print a one-line summary each."""
    parser = argparse.ArgumentParser(
        epilog="Verification gate: python -m repro.verify "
               "(goldens, determinism audit, lint; see docs/VERIFICATION.md). "
               "Full paper regeneration: python -m repro.analysis.report.",
        prog="python -m repro",
        description="IChannels reproduction demo (three covert channels).")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the transfers (default: 1, serial)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache transfer results under PATH (default: no cache)")
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace (chrome://tracing) of the demo to PATH")
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write counters and latency histograms as JSON to PATH")
    parser.add_argument(
        "--faults", default="", metavar="SPEC",
        help="inject faults, e.g. 'default' or "
             "'slot-jitter:sigma_us=2;rail-jitter' (see docs/FAULTS.md)")
    parser.add_argument(
        "--adaptive", action="store_true",
        help="send through the adaptive session (re-calibration, "
             "backoff, two-level degradation) instead of bare transfers")
    parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="run a named scenario from the declarative library instead "
             "of the demo (see `python -m repro.scenarios list` and "
             "docs/SCENARIOS.md)")
    parser.add_argument(
        "--mitigation-matrix", nargs="?", const="full", default=None,
        choices=("full", "smoke"), metavar="GRID",
        help="run the attacker-vs-defender mitigation matrix instead of "
             "the demo ('full' = 9x7, 'smoke' = the 3x3 CI corner; see "
             "docs/MITIGATIONS.md)")
    parser.add_argument(
        "--matrix-csv", default=None, metavar="PATH",
        help="with --mitigation-matrix, also write the cell table as CSV")
    parser.add_argument(
        "--matrix-json", default=None, metavar="PATH",
        help="with --mitigation-matrix, also write the canonical report "
             "document as JSON")
    args = parser.parse_args(list(argv) if argv is not None else [])
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.mitigation_matrix is not None:
        return _cmd_mitigation_matrix(args)
    if (args.matrix_csv or args.matrix_json):
        parser.error("--matrix-csv/--matrix-json need --mitigation-matrix")
    if args.scenario is not None:
        from repro.scenarios.__main__ import _cmd_run
        try:
            return _cmd_run(args.scenario)
        except ConfigError as exc:
            parser.error(f"--scenario: {exc}")
    if args.faults:
        try:
            injector = parse_fault_spec(args.faults)
        except ConfigError as exc:
            parser.error(f"--faults: {exc}")
        print(f"faults: {injector.describe()}")
    if (args.trace or args.metrics) and args.jobs > 1:
        # Spans are recorded in-process; pool workers would trace into
        # their own (discarded) tracers.  Keep the observed run honest.
        print("note: --trace/--metrics force --jobs 1 so every span "
              "lands in one trace")
        args.jobs = 1

    cache = ResultCache(root=args.cache_dir) if args.cache_dir else None
    runner = SweepRunner(jobs=args.jobs, cache=cache)

    message = b"IChannels"
    print(f"IChannels demo on a simulated {cannon_lake_i3_8121u().name} "
          f"({cannon_lake_i3_8121u().codename})")
    print(f"secret: {message!r}\n")
    labels = (
        ("same hardware thread ", "IccThreadCovert"),
        ("across SMT threads   ", "IccSMTcovert"),
        ("across physical cores", "IccCoresCovert"),
    )
    tracer: Optional[Tracer] = None
    if args.trace or args.metrics:
        tracer = Tracer(events=args.trace is not None)
    tasks = [
        dict(channel_name=name, message=message, fault_spec=args.faults,
             adaptive=args.adaptive)
        for _, name in labels
    ]
    if tracer is not None:
        with tracing(tracer):
            results = runner.map(_demo_transfer, tasks)
    else:
        results = runner.map(_demo_transfer, tasks)
    failures = 0
    for (label, _), (received, ber, bps) in zip(labels, results):
        ok = received == message
        failures += 0 if ok else 1
        print(f"  {label}: {received!r}  "
              f"BER={ber:.3f}  {bps:,.0f} bit/s  "
              f"[{'OK' if ok else 'FAILED'}]")
    if runner.total.cache_hits:
        print(f"\n({runner.total.cache_hits} of {runner.total.tasks} "
              f"transfers served from cache)")
    if tracer is not None:
        if args.trace:
            trace = write_chrome_trace(tracer, args.trace)
            print(f"\ntrace: {args.trace} "
                  f"({len(trace['traceEvents'])} events; load in "
                  f"chrome://tracing or https://ui.perfetto.dev)")
        if args.metrics:
            write_metrics_json(tracer, args.metrics)
            print(f"metrics: {args.metrics}")
    print("\nSee `python -m repro.analysis.report` for every regenerated "
          "table and figure.")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
