"""Package entry point: ``python -m repro`` runs a short live demo.

Transfers a message over each of the three IChannels on a simulated
Cannon Lake part and prints the decoded payloads — the fastest way to
see the reproduction work.  For the full paper regeneration use
``python -m repro.analysis.report``.
"""

from __future__ import annotations

import sys

from repro import System, cannon_lake_i3_8121u
from repro.core import IccCoresCovert, IccSMTcovert, IccThreadCovert


def main() -> int:
    """Run the three channels end to end and print a one-line summary each."""
    message = b"IChannels"
    print(f"IChannels demo on a simulated {cannon_lake_i3_8121u().name} "
          f"({cannon_lake_i3_8121u().codename})")
    print(f"secret: {message!r}\n")
    channels = (
        ("same hardware thread ", IccThreadCovert),
        ("across SMT threads   ", IccSMTcovert),
        ("across physical cores", IccCoresCovert),
    )
    failures = 0
    for label, channel_cls in channels:
        system = System(cannon_lake_i3_8121u())
        report = channel_cls(system).transfer(message)
        ok = report.received == message
        failures += 0 if ok else 1
        print(f"  {label}: {report.received!r}  "
              f"BER={report.ber:.3f}  {report.throughput_bps:,.0f} bit/s  "
              f"[{'OK' if ok else 'FAILED'}]")
    print("\nSee `python -m repro.analysis.report` for every regenerated "
          "table and figure.")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
