"""Spectral analysis of the rail: the analog-side defender.

A defender (or lab analyst, as in the paper's Figure 5 setup) probing
the VR output sees the covert channel as a *voltage* signature: every
transaction ramps the rail up and back down once per slot, so the
sampled rail carries a strong spectral line at the slot frequency
(~1.3 kHz for the default protocol) and its harmonics.  Organic
workloads spread their energy broadly instead.

:class:`RailSpectralDetector` complements the PMC-based
:class:`~repro.mitigations.detector.ThrottleAnomalyDetector`: the same
verdict from physical measurements instead of performance counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.measure.trace import SampleSeries


@dataclass(frozen=True)
class SpectralVerdict:
    """Outcome of one rail-spectrum analysis."""

    peak_hz: float
    peak_prominence: float
    flagged: bool


class RailSpectralDetector:
    """Flags periodic rail modulation from a uniformly sampled trace.

    Parameters
    ----------
    band_hz:
        Frequency band to search: covert slot clocks live in the
        hundreds-of-Hz to few-kHz range (reset-time-bound protocols
        cannot clock faster than ~1/650 us ≈ 1.5 kHz).
    prominence_threshold:
        Ratio of the tallest in-band line to the in-band median power
        above which the trace counts as machine-modulated.  Covert
        slots produce lines three orders of magnitude over the floor;
        organic phase workloads stay below ~50.
    """

    def __init__(self, band_hz: Tuple[float, float] = (200.0, 5_000.0),
                 prominence_threshold: float = 100.0) -> None:
        if not 0.0 < band_hz[0] < band_hz[1]:
            raise MeasurementError(f"bad search band: {band_hz}")
        if prominence_threshold <= 1.0:
            raise MeasurementError("prominence threshold must exceed 1")
        self.band_hz = band_hz
        self.prominence_threshold = prominence_threshold

    def spectrum(self, series: SampleSeries
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """(frequencies_hz, power) of the detrended rail trace."""
        if len(series) < 16:
            raise MeasurementError("trace too short for a spectrum")
        times = np.asarray(series.times_ns, dtype=float)
        values = np.asarray(series.values, dtype=float)
        dt_ns = np.diff(times)
        if np.max(dt_ns) - np.min(dt_ns) > 1e-3 * np.mean(dt_ns):
            raise MeasurementError("spectral analysis needs uniform sampling")
        signal = values - values.mean()
        power = np.abs(np.fft.rfft(signal)) ** 2
        freqs = np.fft.rfftfreq(len(signal), d=float(np.mean(dt_ns)) * 1e-9)
        return freqs, power

    def analyze(self, series: SampleSeries) -> SpectralVerdict:
        """Verdict for one rail trace."""
        freqs, power = self.spectrum(series)
        mask = (freqs >= self.band_hz[0]) & (freqs <= self.band_hz[1])
        if not np.any(mask):
            raise MeasurementError(
                "trace too short to resolve the search band"
            )
        band_power = power[mask]
        band_freqs = freqs[mask]
        floor = float(np.median(band_power))
        if floor <= 0.0:
            return SpectralVerdict(0.0, 0.0, flagged=False)
        peak_index = int(np.argmax(band_power))
        prominence = float(band_power[peak_index] / floor)
        return SpectralVerdict(
            peak_hz=float(band_freqs[peak_index]),
            peak_prominence=prominence,
            flagged=prominence >= self.prominence_threshold,
        )
