"""Statistics helpers for characterisation experiments.

The paper's figures report distributions (Fig. 8a, 11, 13), level
separations (Fig. 13's >2 K-cycle threshold gaps) and bit error rates
(Fig. 14).  These helpers keep the benchmark harnesses free of ad-hoc
numerics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of one sample set."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} p25={self.p25:.3f} med={self.median:.3f} "
            f"p75={self.p75:.3f} max={self.maximum:.3f}"
        )


def distribution_summary(samples: Sequence[float]) -> DistributionSummary:
    """Summarise a sample set; raises on empty input."""
    if len(samples) == 0:
        raise MeasurementError("cannot summarise an empty sample set")
    arr = np.asarray(samples, dtype=float)
    return DistributionSummary(
        count=len(arr),
        mean=float(np.mean(arr)),
        std=float(np.std(arr)),
        minimum=float(np.min(arr)),
        p25=float(np.percentile(arr, 25)),
        median=float(np.median(arr)),
        p75=float(np.percentile(arr, 75)),
        maximum=float(np.max(arr)),
    )


def histogram(samples: Sequence[float], bins: int = 20
              ) -> List[Tuple[float, float, int]]:
    """Histogram as (bin_lo, bin_hi, count) rows."""
    if len(samples) == 0:
        raise MeasurementError("cannot histogram an empty sample set")
    if bins < 1:
        raise MeasurementError(f"bins must be >= 1, got {bins}")
    counts, edges = np.histogram(np.asarray(samples, dtype=float), bins=bins)
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(len(counts))
    ]


def level_separation(level_samples: Dict[int, Sequence[float]]
                     ) -> List[Tuple[int, int, float]]:
    """Gap between adjacent level clusters, as (level_a, level_b, gap).

    ``gap`` is ``min(samples_b) - max(samples_a)`` for consecutive levels
    sorted by their means; positive gaps mean the clusters do not overlap
    (the Figure 13 condition for a zero error rate).
    """
    if len(level_samples) < 2:
        raise MeasurementError("need at least two levels to compute separation")
    ordered = sorted(
        level_samples.items(),
        key=lambda kv: float(np.mean(np.asarray(kv[1], dtype=float))),
    )
    gaps = []
    for (label_a, samples_a), (label_b, samples_b) in zip(ordered, ordered[1:]):
        if len(samples_a) == 0 or len(samples_b) == 0:
            raise MeasurementError("levels must have samples")
        gap = float(np.min(samples_b)) - float(np.max(samples_a))
        gaps.append((label_a, label_b, gap))
    return gaps


def bit_error_rate(sent: Sequence[int], received: Sequence[int],
                   bits_per_symbol: int = 2) -> float:
    """Fraction of wrong bits between two symbol streams.

    Symbols are compared bit-by-bit (a symbol error may cost 1 or 2
    bits); streams must have equal length.
    """
    if len(sent) != len(received):
        raise MeasurementError(
            f"stream lengths differ: {len(sent)} vs {len(received)}"
        )
    if len(sent) == 0:
        raise MeasurementError("cannot compute BER on empty streams")
    wrong = 0
    for a, b in zip(sent, received):
        diff = a ^ b
        wrong += bin(diff & ((1 << bits_per_symbol) - 1)).count("1")
    return wrong / (len(sent) * bits_per_symbol)
