"""Measurement infrastructure: traces, simulated NI-DAQ, statistics.

Stands in for the paper's National Instruments PCIe-6376 acquisition card
(Section 5.1): the simulated DAQ samples the rail voltage and the derived
supply current at up to 3.5 MS/s, producing the time series behind
Figures 6, 7 and 9.
"""

from repro.measure.trace import SampleSeries, StepTrace
from repro.measure.daq import DAQCard, DAQSpec, sample_grid
from repro.measure.sampler import (
    PiecewiseConstantSignal,
    PiecewiseLinearSignal,
    TraceSampler,
)
from repro.measure.railwatch import RailPhase, RailPhaseDetector, RailStep
from repro.measure.spectral import RailSpectralDetector, SpectralVerdict
from repro.measure.probe import (
    IterationTimings,
    ThrottleDetector,
    expected_iteration_tsc,
    measured_iterations,
)
from repro.measure.stats import (
    distribution_summary,
    histogram,
    level_separation,
    DistributionSummary,
)

__all__ = [
    "SampleSeries",
    "StepTrace",
    "DAQCard",
    "DAQSpec",
    "sample_grid",
    "PiecewiseConstantSignal",
    "PiecewiseLinearSignal",
    "TraceSampler",
    "RailPhase",
    "RailPhaseDetector",
    "RailStep",
    "RailSpectralDetector",
    "SpectralVerdict",
    "IterationTimings",
    "ThrottleDetector",
    "expected_iteration_tsc",
    "measured_iterations",
    "distribution_summary",
    "histogram",
    "level_separation",
    "DistributionSummary",
]
