"""Vectorized trace sampling: piecewise signal sources and the fast path.

The simulator's observables are all piecewise signals: a rail voltage is
piecewise-*linear* (flat plateaus joined by VR slews), while frequency,
Cdyn and throttle state are piecewise-*constant* step traces.  Sampling
them one scalar call at a time (``signal(float(t))`` per grid point) is
O(samples x history) and dominates host time when regenerating the
paper's figures at the NI PCIe-6376's 3.5 MS/s.

This module provides the vectorized alternative:

* :class:`PiecewiseLinearSignal` / :class:`PiecewiseConstantSignal` wrap
  a breakpoint export — ``(times, values)`` arrays — and evaluate an
  entire sample grid in one ``np.interp`` / ``np.searchsorted`` call;
* :class:`TraceSampler` picks the path: signal sources exposing a
  vectorized ``sample(times)`` method take the fast path, bare callables
  fall back to the documented scalar loop.

Both paths are equivalent: the signal objects are themselves callables
whose scalar evaluation uses the same interpolation rule as the
vectorized evaluation, and ``tests/test_measure_sampler.py`` pins the
two paths together to 1e-12 on real rail traces.

Breakpoint export contract (see also ``docs/SIMULATOR.md``):

* breakpoint times are non-decreasing; consecutive duplicate
  ``(time, value)`` points are removed;
* a *linear* source is continuous: queries between breakpoints linearly
  interpolate, queries outside the span clamp to the end values;
* a *constant* (step) source is right-continuous: the value recorded at
  ``t`` is in force from ``t`` onward; a jump in a linear source is
  encoded as two breakpoints at the same time (left value first), which
  ``np.interp`` resolves to the right value — matching step semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, Tuple, Union

import numpy as np

from repro.errors import MeasurementError

#: Anything the DAQ can sample: a scalar callable or a signal source.
SignalLike = Union[Callable[[float], float], "PiecewiseLinearSignal",
                   "PiecewiseConstantSignal"]


def _as_breakpoint_arrays(times: Sequence[float], values: Sequence[float],
                          name: str) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and convert a breakpoint export to float arrays."""
    times_arr = np.asarray(times, dtype=float)
    values_arr = np.asarray(values, dtype=float)
    if times_arr.ndim != 1 or values_arr.ndim != 1:
        raise MeasurementError(f"{name}: breakpoints must be 1-D arrays")
    if len(times_arr) != len(values_arr):
        raise MeasurementError(
            f"{name}: {len(times_arr)} breakpoint times vs "
            f"{len(values_arr)} values"
        )
    if len(times_arr) == 0:
        raise MeasurementError(f"{name}: empty breakpoint export")
    if np.any(np.diff(times_arr) < 0):
        raise MeasurementError(f"{name}: breakpoint times must be non-decreasing")
    return times_arr, values_arr


@dataclass(frozen=True)
class PiecewiseLinearSignal:
    """A continuous piecewise-linear signal built from breakpoints.

    Calling the object evaluates one scalar time; :meth:`sample`
    evaluates a whole grid with one vectorized ``np.interp``.  Queries
    outside the breakpoint span clamp to the first/last value, matching
    :meth:`repro.pdn.regulator.VoltageRegulator.voltage_at`.
    """

    times_ns: np.ndarray
    values: np.ndarray
    name: str = "signal"

    def __post_init__(self) -> None:
        times, values = _as_breakpoint_arrays(self.times_ns, self.values,
                                              self.name)
        object.__setattr__(self, "times_ns", times)
        object.__setattr__(self, "values", values)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[float, float]],
                   name: str = "signal") -> "PiecewiseLinearSignal":
        """Build from an iterable of (time, value) breakpoints.

        Consecutive duplicate points are dropped so degenerate segments
        (zero-length holds) collapse to a single breakpoint.
        """
        times: list = []
        values: list = []
        for t, v in pairs:
            if times and t == times[-1] and v == values[-1]:
                continue
            times.append(float(t))
            values.append(float(v))
        return cls(np.asarray(times), np.asarray(values), name=name)

    def __call__(self, t_ns: float) -> float:
        """Scalar evaluation (same interpolation rule as :meth:`sample`)."""
        return float(np.interp(t_ns, self.times_ns, self.values))

    def sample(self, times_ns: np.ndarray) -> np.ndarray:
        """Vectorized evaluation of a whole sample grid."""
        return np.interp(np.asarray(times_ns, dtype=float),
                         self.times_ns, self.values)

    def breakpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(times, values)`` breakpoint export."""
        return self.times_ns, self.values


@dataclass(frozen=True)
class PiecewiseConstantSignal:
    """A right-continuous step signal built from breakpoints.

    The value recorded at ``t`` is in force from ``t`` onward (matching
    :meth:`repro.measure.trace.StepTrace.value_at`); queries before the
    first breakpoint return ``initial``.
    """

    times_ns: np.ndarray
    values: np.ndarray
    initial: float = 0.0
    name: str = "step"

    def __post_init__(self) -> None:
        times, values = _as_breakpoint_arrays(self.times_ns, self.values,
                                              self.name)
        object.__setattr__(self, "times_ns", times)
        object.__setattr__(self, "values", values)

    def __call__(self, t_ns: float) -> float:
        """Scalar evaluation (same lookup rule as :meth:`sample`)."""
        return float(self.sample(np.asarray([t_ns], dtype=float))[0])

    def sample(self, times_ns: np.ndarray,
               inclusive: bool = True) -> np.ndarray:
        """Vectorized evaluation via one binary search.

        ``inclusive`` keeps the right-continuous rule (a breakpoint at
        ``t`` is in force at ``t``); ``inclusive=False`` evaluates the
        left limit instead, which is what jump encoding needs.
        """
        side = "right" if inclusive else "left"
        idx = np.searchsorted(self.times_ns,
                              np.asarray(times_ns, dtype=float), side=side) - 1
        clipped = np.maximum(idx, 0)
        out = self.values[clipped]
        return np.where(idx >= 0, out, self.initial)

    def breakpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(times, values)`` breakpoint export."""
        return self.times_ns, self.values


@dataclass
class TraceSampler:
    """Evaluates a signal over a sample grid, vectorized when possible.

    The fast path triggers for any signal source exposing a vectorized
    ``sample(times)`` method (the piecewise signals above, or anything
    honouring the same contract); bare scalar callables fall back to a
    per-sample Python loop.  The fallback is kept deliberately simple —
    it is the reference the fast path is tested against.
    """

    #: Counters for introspection/benchmarks: grids served per path.
    vectorized_calls: int = 0
    scalar_calls: int = 0

    @staticmethod
    def path_for(signal: SignalLike) -> str:
        """Which path ``evaluate`` will take: 'vectorized' or 'scalar'."""
        return "vectorized" if callable(getattr(signal, "sample", None)) \
            else "scalar"

    def evaluate(self, signal: SignalLike, times_ns: np.ndarray) -> np.ndarray:
        """Evaluate ``signal`` at every grid time, picking the fast path."""
        fast = getattr(signal, "sample", None)
        if callable(fast):
            self.vectorized_calls += 1
            return np.asarray(fast(times_ns), dtype=float)
        if not callable(signal):
            raise MeasurementError(
                f"signal {signal!r} is neither callable nor a signal source"
            )
        self.scalar_calls += 1
        return np.array([signal(float(t)) for t in times_ns], dtype=float)
