"""Simulated National Instruments data-acquisition card.

The paper measures rail voltage and current with an NI PCIe-6376 card
(3.5 MS/s, 99.94 % accuracy) wired to the VR output and motherboard sense
resistors (Section 5.1, Figure 5).  The simulated card samples arbitrary
signal callables at a configured rate and can add the instrument's small
gain error and noise floor so downstream analysis code faces realistic
data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import MeasurementError
from repro.measure.sampler import SignalLike, TraceSampler
from repro.measure.trace import SampleSeries
from repro.units import NS_PER_S


def sample_grid(t0_ns: float, t1_ns: float, rate_hz: float) -> np.ndarray:
    """The exact uniform sample grid covering [t0, t1] at ``rate_hz``.

    Every sample is ``t0 + k * period`` with the number of whole periods
    chosen so the last sample never lands past ``t1`` — the naive
    ``int(span / period) + 1`` count is off by one whenever the float
    ratio rounds up across an integer (awkward rates over long spans).
    """
    if rate_hz <= 0:
        raise MeasurementError(f"sample rate must be positive, got {rate_hz}")
    if t1_ns <= t0_ns:
        raise MeasurementError(f"empty sampling window [{t0_ns}, {t1_ns}]")
    period_ns = NS_PER_S / rate_hz
    span = t1_ns - t0_ns
    n_periods = int(span / period_ns)
    # Repair the float division against the exact (float-multiply) grid.
    while n_periods > 0 and n_periods * period_ns > span:
        n_periods -= 1
    while (n_periods + 1) * period_ns <= span:
        n_periods += 1
    times = t0_ns + np.arange(n_periods + 1) * period_ns
    if times[-1] > t1_ns:  # t0 + k*period may round up half an ulp past t1
        times[-1] = t1_ns
    return times


@dataclass(frozen=True)
class DAQSpec:
    """Instrument parameters (defaults model the NI PCIe-6376).

    Parameters
    ----------
    max_sample_rate_hz:
        Upper bound on the sampling rate (3.5 MS/s for the PCIe-6376).
    accuracy:
        Multiplicative accuracy (0.9994 -> 99.94 %); the gain error is
        drawn once per channel, as calibration error would be.
    noise_rms:
        Additive Gaussian noise per sample, in signal units.
    """

    max_sample_rate_hz: float = 3.5e6
    accuracy: float = 0.9994
    noise_rms: float = 0.0

    def __post_init__(self) -> None:
        if self.max_sample_rate_hz <= 0:
            raise MeasurementError("sample rate limit must be positive")
        if not 0.0 < self.accuracy <= 1.0:
            raise MeasurementError(f"accuracy must be in (0, 1], got {self.accuracy}")
        if self.noise_rms < 0:
            raise MeasurementError(f"noise must be >= 0, got {self.noise_rms}")


class DAQCard:
    """Samples signal callables (or signal sources) over a time span."""

    def __init__(self, spec: DAQSpec = DAQSpec(), seed: int = 6376,
                 faults: Optional[object] = None) -> None:
        #: Optional fault injector whose measurement models corrupt the
        #: sampled series (see :meth:`repro.faults.FaultInjector.attach_daq`).
        #: Duck-typed — anything with ``perturb_samples(name, times,
        #: values)`` — so this layer never imports the fault layer above.
        self.faults = faults
        self.spec = spec
        self._rng = np.random.default_rng(seed)
        self.sampler = TraceSampler()

    def sample(self, signal: SignalLike, t0_ns: float,
               t1_ns: float, sample_rate_hz: Optional[float] = None,
               name: str = "channel") -> SampleSeries:
        """Sample ``signal`` uniformly over [t0, t1].

        ``sample_rate_hz`` defaults to the instrument maximum and may not
        exceed it.  ``signal`` is either a scalar callable (sampled one
        grid point at a time — the documented fallback) or a signal
        source with a vectorized ``sample(times)`` method such as
        :meth:`repro.soc.system.System.vcc_signal`, which evaluates the
        whole grid in one call; the two paths agree to float rounding.
        """
        rate = sample_rate_hz if sample_rate_hz is not None else self.spec.max_sample_rate_hz
        if rate > self.spec.max_sample_rate_hz + 1e-9:
            raise MeasurementError(
                f"sample rate {rate} Hz exceeds instrument maximum "
                f"{self.spec.max_sample_rate_hz} Hz"
            )
        times = sample_grid(t0_ns, t1_ns, rate)
        values = self.sampler.evaluate(signal, times)
        gain = 1.0 + (1.0 - self.spec.accuracy) * float(self._rng.normal())
        values = values * gain
        if self.spec.noise_rms > 0:
            values = values + self._rng.normal(0.0, self.spec.noise_rms,
                                               len(times))
        if self.faults is not None:
            values = self.faults.perturb_samples(name, times, values)
        return SampleSeries(times, values, name=name)
