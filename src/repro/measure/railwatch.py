"""Rail-trace analysis: recovering activity phases from DAQ samples.

The paper's characterisation methodology works in this direction too:
the NI-DAQ voltage trace alone reveals when cores enter and leave AVX
phases (Figure 6's steps *are* the phases).  :class:`RailPhaseDetector`
automates that read-off — segment a sampled rail voltage into plateaus
and classify each step edge — which doubles as the physical-access
attacker model: anyone probing the board's sense resistors sees the
same per-core guardband staircase the covert channels modulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import MeasurementError
from repro.measure.trace import SampleSeries


@dataclass(frozen=True)
class RailPhase:
    """One voltage plateau in a rail trace."""

    start_ns: float
    end_ns: float
    level_v: float

    @property
    def duration_ns(self) -> float:
        """How long the plateau lasted."""
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class RailStep:
    """One detected guardband step between plateaus."""

    time_ns: float
    delta_mv: float

    @property
    def rising(self) -> bool:
        """True for a guardband increase (a core entering a PHI phase)."""
        return self.delta_mv > 0


class RailPhaseDetector:
    """Segments a sampled rail voltage into plateaus and steps.

    Parameters
    ----------
    min_step_mv:
        Voltage changes smaller than this are treated as noise; client
        guardband steps are >= one VID (2.5-10 mV), so 2.0 mV default.
    settle_samples:
        A new plateau must hold for at least this many samples before it
        counts (skips the ramp between plateaus).
    """

    def __init__(self, min_step_mv: float = 2.0,
                 settle_samples: int = 3) -> None:
        if min_step_mv <= 0:
            raise MeasurementError("min step must be positive")
        if settle_samples < 1:
            raise MeasurementError("settle window must be >= 1 sample")
        self.min_step_mv = min_step_mv
        self.settle_samples = settle_samples

    def phases(self, series: SampleSeries) -> List[RailPhase]:
        """The plateau segmentation of a rail trace.

        Instead of testing every sample against the current level in a
        Python loop, each plateau jumps straight to its next departure
        with one vectorized ``np.flatnonzero`` scan — samples inside a
        plateau (the overwhelming majority at DAQ rates) are never
        visited individually.
        """
        if len(series) < self.settle_samples:
            raise MeasurementError("trace too short to segment")
        threshold_v = self.min_step_mv / 1000.0
        values = np.asarray(series.values, dtype=float)
        times = np.asarray(series.times_ns, dtype=float)
        phases: List[RailPhase] = []
        anchor = 0
        level = values[0]
        i = 1
        n = len(values)
        while i < n:
            departures = np.flatnonzero(np.abs(values[i:] - level) > threshold_v)
            if departures.size == 0:
                break
            i += int(departures[0])
            # Candidate step: require the new level to hold.
            hold = values[i:i + self.settle_samples]
            if len(hold) < self.settle_samples:
                break
            if np.max(np.abs(hold - hold.mean())) > threshold_v:
                i += 1
                continue  # still ramping
            phases.append(RailPhase(times[anchor], times[i], float(level)))
            anchor = i
            level = float(hold.mean())
            i += 1
        phases.append(RailPhase(times[anchor], times[-1], float(level)))
        return phases

    def steps(self, series: SampleSeries) -> List[RailStep]:
        """The guardband steps between consecutive plateaus."""
        phases = self.phases(series)
        return [
            RailStep(time_ns=b.start_ns,
                     delta_mv=(b.level_v - a.level_v) * 1000.0)
            for a, b in zip(phases, phases[1:])
        ]

    def active_phi_cores(self, series: SampleSeries,
                         step_per_core_mv: float) -> List[int]:
        """Per-plateau estimate of how many cores run PHIs.

        Divides each plateau's height above the lowest plateau by the
        per-core guardband step — the 'count the staircase' read-off of
        Figure 6(a).
        """
        if step_per_core_mv <= 0:
            raise MeasurementError("per-core step must be positive")
        phases = self.phases(series)
        floor = min(p.level_v for p in phases)
        return [
            int(round((p.level_v - floor) * 1000.0 / step_per_core_mv))
            for p in phases
        ]
