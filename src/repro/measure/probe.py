"""Receiver-side throttling-period detection from per-iteration timing.

The paper's receivers (Figure 3) measure their loop with ``rdtsc`` and
compare the observed time against level thresholds.  At a finer grain,
the characterisation micro-benchmarks time *individual loop iterations*
and classify each as throttled or not (a throttled iteration runs at a
quarter of the expected rate).  This module provides both pieces:

* :func:`measured_iterations` — a program fragment that executes a loop
  one iteration at a time, timestamping each with the TSC;
* :class:`ThrottleDetector` — classifies per-iteration durations and
  extracts the throttling period, the way Figures 8(b/c) and 11 do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Sequence

import numpy as np

from repro.errors import ConfigError, MeasurementError
from repro.isa.instructions import IClass
from repro.isa.workload import Loop

if TYPE_CHECKING:  # soc.system imports measure.trace; avoid the cycle
    from repro.soc.system import System


@dataclass(frozen=True)
class IterationTimings:
    """Per-iteration TSC durations of one measured loop run."""

    iclass: IClass
    block_instructions: int
    durations_tsc: List[float]
    start_tsc: int
    end_tsc: int

    @property
    def total_tsc(self) -> int:
        """Whole-run TSC span."""
        return self.end_tsc - self.start_tsc


def measured_iterations(system: "System", thread_id: int, iclass: IClass,
                        iterations: int, block_instructions: int = 300,
                        sink: "List[IterationTimings]" = None) -> Generator:
    """A program that runs ``iterations`` timed single-iteration loops.

    Append the resulting :class:`IterationTimings` to ``sink``.  Use as::

        sink = []
        system.spawn(measured_iterations(system, 0, IClass.HEAVY_256,
                                         40, sink=sink))
        system.run_until(...)
        timings = sink[0]
    """
    if iterations < 1:
        raise ConfigError(f"iterations must be >= 1, got {iterations}")
    if sink is None:
        raise ConfigError("pass a sink list to receive the timings")
    durations: List[float] = []
    start_tsc = system.rdtsc()
    end_tsc = start_tsc
    for _ in range(iterations):
        result = yield system.execute(
            thread_id, Loop(iclass, 1, block_instructions))
        durations.append(float(result.elapsed_tsc))
        end_tsc = result.end_tsc
    sink.append(IterationTimings(
        iclass=iclass,
        block_instructions=block_instructions,
        durations_tsc=durations,
        start_tsc=start_tsc,
        end_tsc=end_tsc,
    ))
    return None


@dataclass(frozen=True)
class ThrottleDetector:
    """Classify per-iteration durations as throttled or not.

    Parameters
    ----------
    expected_tsc:
        Unthrottled duration of one iteration in TSC cycles (compute it
        from the loop shape and frequencies, or calibrate it from a
        known-unthrottled run).
    threshold_factor:
        Durations above ``threshold_factor * expected_tsc`` count as
        throttled.  2.0 splits cleanly between 1x (unthrottled) and 4x
        (throttled) iterations.
    """

    expected_tsc: float
    threshold_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.expected_tsc <= 0:
            raise ConfigError(
                f"expected duration must be positive, got {self.expected_tsc}"
            )
        if self.threshold_factor <= 1.0:
            raise ConfigError(
                f"threshold factor must exceed 1, got {self.threshold_factor}"
            )

    @property
    def threshold_tsc(self) -> float:
        """Duration above which an iteration counts as throttled."""
        return self.threshold_factor * self.expected_tsc

    def throttled_mask(self, durations: Sequence[float]) -> List[bool]:
        """Per-iteration throttled/unthrottled classification.

        One vectorized comparison over the whole run instead of a
        per-iteration Python loop (characterisation sweeps classify
        tens of thousands of iterations).
        """
        if len(durations) == 0:
            raise MeasurementError("no iteration durations to classify")
        mask = np.asarray(durations, dtype=float) > self.threshold_tsc
        return mask.tolist()

    def throttling_period_tsc(self, durations: Sequence[float]) -> float:
        """Throttling period in TSC cycles.

        Sums the *excess* duration of throttled iterations over the
        expected duration — the extra cycles the current-management
        throttle injected, which is exactly the quantity the paper's
        multi-level decoding thresholds are defined over.
        """
        if len(durations) == 0:
            raise MeasurementError("no iteration durations to classify")
        values = np.asarray(durations, dtype=float)
        excess = values[values > self.threshold_tsc] - self.expected_tsc
        return float(np.sum(excess))

    def throttled_count(self, durations: Sequence[float]) -> int:
        """Number of throttled iterations."""
        if len(durations) == 0:
            raise MeasurementError("no iteration durations to classify")
        values = np.asarray(durations, dtype=float)
        return int(np.count_nonzero(values > self.threshold_tsc))


def expected_iteration_tsc(iclass: IClass, block_instructions: int,
                           core_freq_ghz: float, tsc_ghz: float) -> float:
    """Unthrottled single-iteration duration in TSC cycles."""
    if core_freq_ghz <= 0 or tsc_ghz <= 0:
        raise ConfigError("frequencies must be positive")
    wall_ns = block_instructions / (iclass.ipc * core_freq_ghz)
    return wall_ns * tsc_ghz
