"""Time-series containers for simulation observables.

Two shapes cover everything the simulator records:

* :class:`StepTrace` — piecewise-constant signals (frequency, per-core
  throttle state, activity class, power draw).  Records (time, value)
  breakpoints; lookups return the value in force at a time.
* :class:`SampleSeries` — uniformly sampled signals, as produced by the
  simulated DAQ card.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Generic, List, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import MeasurementError
from repro.measure.sampler import PiecewiseConstantSignal

T = TypeVar("T")


@dataclass
class StepTrace(Generic[T]):
    """A piecewise-constant signal recorded as breakpoints.

    ``record`` may be called with non-decreasing timestamps; recording a
    new value at an existing timestamp overwrites the breakpoint (last
    writer wins, which matches how state settles within one event).
    """

    name: str = "signal"
    _times: List[float] = field(default_factory=list)
    _values: List[T] = field(default_factory=list)

    def record(self, t_ns: float, value: T) -> None:
        """Set the signal to ``value`` from ``t_ns`` onward."""
        if self._times and t_ns < self._times[-1] - 1e-9:
            raise MeasurementError(
                f"{self.name}: record at t={t_ns} before last t={self._times[-1]}"
            )
        if self._times and abs(t_ns - self._times[-1]) <= 1e-9:
            self._values[-1] = value
            return
        if self._values and self._values[-1] == value:
            return  # no change, keep the trace compact
        self._times.append(t_ns)
        self._values.append(value)

    def value_at(self, t_ns: float, default: T = None) -> T:  # type: ignore[assignment]
        """Value in force at ``t_ns`` (``default`` before the first record)."""
        idx = bisect.bisect_right(self._times, t_ns) - 1
        if idx < 0:
            return default
        return self._values[idx]

    def values_at(self, times_ns: np.ndarray, default: float = 0.0) -> np.ndarray:
        """Vectorized :meth:`value_at` for numeric traces.

        One ``np.searchsorted`` over the whole grid instead of one
        binary search per sample; same right-continuous semantics.
        """
        return self.signal(default=default).sample(times_ns)

    def signal(self, default: float = 0.0) -> "PiecewiseConstantSignal":
        """A vectorizable signal-source view of a numeric step trace.

        The returned object snapshots the current breakpoints; records
        made afterwards are not reflected.  ``default`` is the value
        reported before the first breakpoint.
        """
        if not self._times:
            return PiecewiseConstantSignal(
                np.asarray([0.0]), np.asarray([default], dtype=float),
                initial=default, name=self.name,
            )
        return PiecewiseConstantSignal(
            np.asarray(self._times, dtype=float),
            np.asarray(self._values, dtype=float),
            initial=default, name=self.name,
        )

    def breakpoints(self) -> List[Tuple[float, T]]:
        """All (time, value) breakpoints in order."""
        return list(zip(self._times, self._values))

    def __len__(self) -> int:
        return len(self._times)

    def changes_in(self, t0_ns: float, t1_ns: float) -> List[Tuple[float, T]]:
        """Breakpoints with t0 <= t < t1."""
        lo = bisect.bisect_left(self._times, t0_ns)
        hi = bisect.bisect_left(self._times, t1_ns)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def time_weighted_mean(self, t0_ns: float, t1_ns: float) -> float:
        """Time-weighted mean of a numeric step trace over [t0, t1]."""
        if t1_ns <= t0_ns:
            raise MeasurementError(f"empty interval [{t0_ns}, {t1_ns}]")
        total = 0.0
        current = self.value_at(t0_ns, default=0.0)  # type: ignore[arg-type]
        last = t0_ns
        for t, value in self.changes_in(t0_ns, t1_ns):
            if t > last:
                total += float(current) * (t - last)
                last = t
            current = value
        total += float(current) * (t1_ns - last)
        return total / (t1_ns - t0_ns)


@dataclass
class SampleSeries:
    """A uniformly sampled signal (what a DAQ card returns)."""

    times_ns: np.ndarray
    values: np.ndarray
    name: str = "samples"

    def __post_init__(self) -> None:
        if len(self.times_ns) != len(self.values):
            raise MeasurementError(
                f"{self.name}: {len(self.times_ns)} timestamps vs "
                f"{len(self.values)} values"
            )

    def __len__(self) -> int:
        return len(self.times_ns)

    @property
    def duration_ns(self) -> float:
        """Span between first and last sample."""
        if len(self.times_ns) < 2:
            return 0.0
        return float(self.times_ns[-1] - self.times_ns[0])

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if len(self.values) == 0:
            raise MeasurementError(f"{self.name}: no samples")
        return float(np.mean(self.values))

    def minmax(self) -> Tuple[float, float]:
        """(min, max) of the samples."""
        if len(self.values) == 0:
            raise MeasurementError(f"{self.name}: no samples")
        return float(np.min(self.values)), float(np.max(self.values))

    def delta_from_start(self) -> "SampleSeries":
        """Series re-based to its first sample (Figure 6 plots Vcc delta)."""
        if len(self.values) == 0:
            raise MeasurementError(f"{self.name}: no samples")
        return SampleSeries(self.times_ns, self.values - self.values[0],
                            name=f"{self.name}_delta")

    def window(self, t0_ns: float, t1_ns: float) -> "SampleSeries":
        """Samples with t0 <= t <= t1."""
        mask = (self.times_ns >= t0_ns) & (self.times_ns <= t1_ns)
        return SampleSeries(self.times_ns[mask], self.values[mask], name=self.name)

    def fingerprint(self) -> dict:
        """A compact, digest-ready summary of the series.

        Large sampled grids are reduced to shape plus exact content
        hashes and a handful of derived scalars, so the golden-trace
        harness (:mod:`repro.verify`) can pin a multi-thousand-sample
        DAQ capture without committing megabytes of floats: any change
        to any sample changes ``values_sha256``, while the scalar
        fields make a mismatch humanly readable.
        """
        import hashlib

        def _sha(arr: np.ndarray) -> str:
            return hashlib.sha256(
                np.ascontiguousarray(arr, dtype="<f8").tobytes()).hexdigest()

        values = np.asarray(self.values, dtype=float)
        out = {
            "name": self.name,
            "samples": int(len(self)),
            "times_sha256": _sha(np.asarray(self.times_ns, dtype=float)),
            "values_sha256": _sha(values),
        }
        if len(self):
            out.update(
                first=float(values[0]), last=float(values[-1]),
                min=float(values.min()), max=float(values.max()),
                mean=float(values.mean()),
            )
        return out


def merge_step_traces(traces: Sequence[StepTrace], t0_ns: float,
                      t1_ns: float) -> List[float]:
    """Sorted union of breakpoint times of several traces within a span."""
    times = {t0_ns, t1_ns}
    for trace in traces:
        for t, _ in trace.changes_in(t0_ns, t1_ns):
            times.add(t)
    return sorted(times)
