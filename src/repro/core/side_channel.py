"""Side-channel variant: inferring a victim's instruction classes.

Section 6.5: the same throttling side effects that carry the covert
channels also leak *what kind* of instructions an unwitting victim
executes.  A spy on the sibling SMT thread (Multi-Throttling-SMT) or on
another core (Multi-Throttling-Cores) times its own loop while the victim
runs, then classifies the measured stretching against thresholds
calibrated from known classes.

This is the paper's synthetic proof-of-concept: it recovers the victim's
instruction-class sequence (64-bit scalar vs 128/256/512-bit vector),
not application secrets — turning that leak into key material is left to
future work in the paper as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from repro.core.calibration import Calibrator
from repro.core.levels import ChannelLocation, probe_class_for
from repro.core.sync import SlotSchedule
from repro.errors import ConfigError
from repro.isa.instructions import IClass
from repro.isa.workload import Loop
from repro.soc.system import System
from repro.units import us_to_ns


@dataclass
class SpyReport:
    """Outcome of one spying session."""

    victim_classes: List[IClass]
    inferred_classes: List[IClass]
    measurements_tsc: List[float]

    @property
    def accuracy(self) -> float:
        """Fraction of victim phases classified correctly."""
        if not self.victim_classes:
            return 0.0
        hits = sum(
            1 for a, b in zip(self.victim_classes, self.inferred_classes)
            if a == b
        )
        return hits / len(self.victim_classes)


@dataclass
class KeyDependentVictim:
    """A victim whose instruction mix depends on secret bits.

    Models the classic data-dependent-code-path leak, restated in the
    paper's terms: a library that takes a vectorised (AVX2) path when a
    key bit is 1 and a scalar path when it is 0 — e.g. a
    square-and-multiply loop with a SIMD multiply.  The paper leaves
    real-world extraction to future work; this synthetic victim shows
    the primitive suffices once such a code path exists.
    """

    one_class: IClass = IClass.HEAVY_256
    zero_class: IClass = IClass.SCALAR_64

    def __post_init__(self) -> None:
        if self.one_class == self.zero_class:
            raise ConfigError("the two key paths must use distinct classes")

    def phases_for_key(self, key_bits: Sequence[int]) -> List[IClass]:
        """The class sequence the victim executes for ``key_bits``."""
        if any(bit not in (0, 1) for bit in key_bits):
            raise ConfigError("key bits must be 0 or 1")
        if not key_bits:
            raise ConfigError("key must have at least one bit")
        return [self.one_class if bit else self.zero_class
                for bit in key_bits]

    def recover_key(self, inferred: Sequence[IClass]) -> List[int]:
        """Map a spy's inferred classes back to key bits.

        Classification noise may produce classes other than the two key
        paths; those resolve to whichever path is closer in intensity.
        """
        midpoint = (self.one_class.cdyn_nf + self.zero_class.cdyn_nf) / 2.0
        if self.one_class.cdyn_nf > self.zero_class.cdyn_nf:
            return [1 if c.cdyn_nf > midpoint else 0 for c in inferred]
        return [0 if c.cdyn_nf > midpoint else 1 for c in inferred]


class InstructionClassSpy:
    """Infers the instruction classes a victim core/thread executes."""

    def __init__(self, system: System, location: ChannelLocation,
                 victim_core: int = 0, spy_core: int = 1,
                 slot_us: float = 750.0, probe_iterations: int = 60,
                 victim_iterations: int = 30) -> None:
        if location == ChannelLocation.SAME_THREAD:
            raise ConfigError(
                "the side-channel spy observes *another* context; use "
                "ACROSS_SMT or ACROSS_CORES"
            )
        self.system = system
        self.location = location
        self.slot_ns = us_to_ns(slot_us)
        self.probe_iterations = probe_iterations
        self.victim_iterations = victim_iterations
        if location == ChannelLocation.ACROSS_SMT:
            if not system.config.supports_smt:
                raise ConfigError(f"{system.config.codename} has no SMT")
            self.victim_thread = system.thread_on(victim_core, 0)
            self.spy_thread = system.thread_on(victim_core, 1)
        else:
            if system.config.n_cores < 2:
                raise ConfigError("cross-core spying needs two cores")
            if victim_core == spy_core:
                raise ConfigError("victim and spy must use different cores")
            self.victim_thread = system.thread_on(victim_core, 0)
            self.spy_thread = system.thread_on(spy_core, 0)
        self.probe_class = probe_class_for(location, system.config.max_vector_bits)
        self._calibrator: Optional[Calibrator] = None
        self._class_by_id: dict = {}

    def _observable_classes(self) -> List[IClass]:
        limit = self.system.config.max_vector_bits
        return [c for c in IClass if c.width_bits <= limit]

    def _victim_program(self, schedule: SlotSchedule,
                        classes: Sequence[IClass]) -> Generator:
        system = self.system
        for i, iclass in enumerate(classes):
            yield system.until(schedule.slot_start(i))
            yield system.execute(
                self.victim_thread, Loop(iclass, self.victim_iterations),
            )
        return None

    def _spy_program(self, schedule: SlotSchedule, n_slots: int,
                     measurements: List[Optional[float]]) -> Generator:
        system = self.system
        offset = 200.0 if self.location == ChannelLocation.ACROSS_CORES else 0.0
        for i in range(n_slots):
            yield system.until(schedule.slot_start(i) + offset)
            result = yield system.execute(
                self.spy_thread, Loop(self.probe_class, self.probe_iterations),
            )
            measurements[i] = float(result.elapsed_tsc)
        return None

    def _observe(self, classes: Sequence[IClass]) -> List[float]:
        schedule = SlotSchedule(self.system.now + self.slot_ns, self.slot_ns)
        measurements: List[Optional[float]] = [None] * len(classes)
        self.system.spawn(self._victim_program(schedule, classes), name="victim")
        self.system.spawn(
            self._spy_program(schedule, len(classes), measurements), name="spy",
        )
        self.system.run_until(schedule.slot_start(len(classes)) + self.slot_ns)
        if any(m is None for m in measurements):
            raise ConfigError("spy produced no measurement for some slots")
        return [float(m) for m in measurements]

    def calibrate(self, rounds: int = 3) -> Calibrator:
        """Learn the per-class signatures by observing known victims."""
        observable = self._observable_classes()
        self._class_by_id = {int(c): c for c in observable}
        labels: List[int] = []
        for _ in range(rounds):
            labels.extend(int(c) for c in observable)
        readings = self._observe([self._class_by_id[lab] for lab in labels])
        self._calibrator = Calibrator(list(zip(labels, readings)))
        return self._calibrator

    def spy(self, victim_classes: Sequence[IClass]) -> SpyReport:
        """Observe a victim running the given class sequence."""
        if self._calibrator is None:
            self.calibrate()
        assert self._calibrator is not None
        for iclass in victim_classes:
            if iclass.width_bits > self.system.config.max_vector_bits:
                raise ConfigError(
                    f"victim cannot execute {iclass.label} on this part"
                )
        readings = self._observe(list(victim_classes))
        inferred = [
            self._class_by_id[self._calibrator.decode(value)]
            for value in readings
        ]
        return SpyReport(
            victim_classes=list(victim_classes),
            inferred_classes=inferred,
            measurements_tsc=readings,
        )

    def steal_key(self, victim: KeyDependentVictim,
                  key_bits: Sequence[int]) -> List[int]:
        """End-to-end: observe a key-dependent victim, return key bits."""
        report = self.spy(victim.phases_for_key(key_bits))
        return victim.recover_key(report.inferred_classes)
