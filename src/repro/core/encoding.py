"""Payload framing: bytes <-> bits <-> two-bit symbols.

The IChannels protocol transmits two bits per transaction (Figure 3);
payload bytes are split into four symbols each, most-significant pair
first, so the bit order on the channel matches the paper's
``send_bits[i+1:i]`` indexing read from the top of the secret.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.levels import SYMBOL_BITS
from repro.errors import ProtocolError


def bytes_to_bits(data: bytes) -> List[int]:
    """Bits of ``data``, MSB-first within each byte."""
    bits: List[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Inverse of :func:`bytes_to_bits`; length must be a multiple of 8."""
    if len(bits) % 8 != 0:
        raise ProtocolError(f"bit count {len(bits)} is not a multiple of 8")
    if any(bit not in (0, 1) for bit in bits):
        raise ProtocolError("bits must be 0 or 1")
    out = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for bit in bits[i:i + 8]:
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)


def bits_to_symbols(bits: Sequence[int]) -> List[int]:
    """Pack bits into two-bit symbols, most-significant pair first."""
    if len(bits) % SYMBOL_BITS != 0:
        raise ProtocolError(
            f"bit count {len(bits)} is not a multiple of {SYMBOL_BITS}"
        )
    if any(bit not in (0, 1) for bit in bits):
        raise ProtocolError("bits must be 0 or 1")
    return [
        (bits[i] << 1) | bits[i + 1]
        for i in range(0, len(bits), SYMBOL_BITS)
    ]


def symbols_to_bits(symbols: Sequence[int]) -> List[int]:
    """Inverse of :func:`bits_to_symbols`."""
    bits: List[int] = []
    for symbol in symbols:
        if not 0 <= symbol < (1 << SYMBOL_BITS):
            raise ProtocolError(f"symbol must be 0..3, got {symbol}")
        bits.append((symbol >> 1) & 1)
        bits.append(symbol & 1)
    return bits


def bytes_to_symbols(data: bytes) -> List[int]:
    """Payload bytes as a symbol stream (4 symbols per byte)."""
    return bits_to_symbols(bytes_to_bits(data))


def symbols_to_bytes(symbols: Sequence[int]) -> bytes:
    """Inverse of :func:`bytes_to_symbols`."""
    return bits_to_bytes(symbols_to_bits(symbols))
