"""IccThreadCovert: covert channel within one hardware thread (Section 4.1).

Sender and receiver are two software contexts sharing the same hardware
thread — e.g. a victim gadget and attacker code in one process, as in
NetSpectre's setting.  The sender's PHI loop ramps the rail part-way to
its level's guardband; the receiver then runs the *heaviest* probe loop
(512b_Heavy where available) and measures how much ramp remains: the
higher the sender's level, the *shorter* the probe's throttling period
(Figure 4a).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.core.channel import ChannelConfig, CovertChannel
from repro.core.levels import ChannelLocation
from repro.core.sync import SlotSchedule
from repro.errors import ConfigError
from repro.soc.system import System


class IccThreadCovert(CovertChannel):
    """Same-hardware-thread covert channel."""

    location = ChannelLocation.SAME_THREAD

    def __init__(self, system: System, config: ChannelConfig = ChannelConfig(),
                 core: int = 0, smt_slot: int = 0) -> None:
        super().__init__(system, config)
        if not 0 <= core < system.config.n_cores:
            raise ConfigError(f"no such core: {core}")
        self.thread_id = system.thread_on(core, smt_slot)

    def _program(self, schedule: SlotSchedule, symbols: Sequence[int],
                 measurements: List[Optional[float]]) -> Generator:
        system = self.system
        for i, symbol in enumerate(symbols):
            yield system.until(schedule.slot_start(i))
            # Sender context: PHI loop at the level encoding the bits.
            yield system.execute(self.thread_id, self.sender_loop(symbol))
            # Receiver context (same thread): probe at the heaviest level
            # and time it with rdtsc.
            result = yield system.execute(self.thread_id, self.probe_loop())
            measurements[i] = float(result.elapsed_tsc)
        return None

    def _spawn_transaction_programs(self, schedule: SlotSchedule,
                                    symbols: Sequence[int],
                                    measurements: List[Optional[float]]) -> None:
        # Sender and receiver share the hardware thread, so scheduling
        # faults delay the single program as one party.
        self.system.spawn(
            self._program(self.party_schedule(schedule, "sender"),
                          symbols, measurements),
            name="icc_thread_covert")
