"""IChannels: covert channels over current-management throttling.

The paper's contribution (Section 4): three covert channels that encode
two bits per transaction in the computational-intensity level of a PHI
loop, decoded by measuring multi-level throttling periods with ``rdtsc``.

* :class:`IccThreadCovert` — sender and receiver share one hardware
  thread (Multi-Throttling-Thread).
* :class:`IccSMTcovert` — sender and receiver on co-located SMT threads
  (Multi-Throttling-SMT).
* :class:`IccCoresCovert` — sender and receiver on different physical
  cores (Multi-Throttling-Cores).
"""

from repro.core.levels import (
    ChannelLocation,
    ROBUST_SYMBOLS,
    SYMBOL_BITS,
    SYMBOL_CLASSES,
    PROBE_CLASSES,
    symbol_for_class,
)
from repro.core.encoding import bits_to_bytes, bytes_to_bits, bytes_to_symbols, symbols_to_bytes
from repro.core.calibration import Calibrator, LevelStats
from repro.core.sync import JitteredSchedule, PerturbedSchedule, SlotSchedule
from repro.core.channel import ChannelConfig, CovertChannel, TransferReport
from repro.core.thread_channel import IccThreadCovert
from repro.core.smt_channel import IccSMTcovert
from repro.core.cores_channel import IccCoresCovert
from repro.core.broadcast import BroadcastReport, IccBroadcast
from repro.core.burst_channel import BurstReport, IccSMTBurst
from repro.core.session import (
    AdaptiveConfig,
    CovertSession,
    FecScheme,
    SessionConfig,
    SessionReport,
)
from repro.core.five_level import FiveLevelReport, FiveLevelThreadChannel
from repro.core.capacity import (
    binary_symmetric_capacity,
    effective_throughput_bps,
    symbol_channel_capacity_bps,
)
from repro.core.ecc import CRC8, Hamming74, RepetitionCode
from repro.core.side_channel import (
    InstructionClassSpy,
    KeyDependentVictim,
    SpyReport,
)

__all__ = [
    "AdaptiveConfig",
    "ChannelLocation",
    "JitteredSchedule",
    "PerturbedSchedule",
    "ROBUST_SYMBOLS",
    "SYMBOL_BITS",
    "SYMBOL_CLASSES",
    "PROBE_CLASSES",
    "symbol_for_class",
    "bits_to_bytes",
    "bytes_to_bits",
    "bytes_to_symbols",
    "symbols_to_bytes",
    "Calibrator",
    "LevelStats",
    "SlotSchedule",
    "ChannelConfig",
    "CovertChannel",
    "TransferReport",
    "IccThreadCovert",
    "IccSMTcovert",
    "IccCoresCovert",
    "BroadcastReport",
    "IccBroadcast",
    "BurstReport",
    "IccSMTBurst",
    "CovertSession",
    "FecScheme",
    "SessionConfig",
    "SessionReport",
    "FiveLevelReport",
    "FiveLevelThreadChannel",
    "binary_symmetric_capacity",
    "effective_throughput_bps",
    "symbol_channel_capacity_bps",
    "CRC8",
    "Hamming74",
    "RepetitionCode",
    "InstructionClassSpy",
    "KeyDependentVictim",
    "SpyReport",
]
