"""Broadcast extension: one sender, multiple simultaneous receivers.

The three side effects fire from a *single* PHI loop: the sender's
voltage transition co-throttles its SMT sibling (Multi-Throttling-SMT)
*and* serialises against other cores' transitions
(Multi-Throttling-Cores) at the same time.  A sender can therefore
broadcast each two-bit symbol to an SMT-sibling receiver and a
cross-core receiver in the same transaction — an extension beyond the
paper's pairwise channels that follows directly from its observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence

from repro.core.calibration import Calibrator
from repro.core.channel import ChannelConfig
from repro.core.encoding import bytes_to_symbols, symbols_to_bytes
from repro.core.levels import (
    ChannelLocation,
    narrow_symbol_classes,
    probe_class_for,
)
from repro.core.sync import SlotSchedule
from repro.errors import ConfigError, ProtocolError
from repro.isa.workload import Loop
from repro.soc.system import System
from repro.units import us_to_ns


@dataclass
class BroadcastReport:
    """Outcome of one broadcast transfer, per receiver."""

    sent: bytes
    symbols_sent: List[int]
    received: Dict[ChannelLocation, bytes]
    symbols_received: Dict[ChannelLocation, List[int]]
    start_ns: float
    end_ns: float
    meta: dict = field(default_factory=dict)

    def ber(self, location: ChannelLocation) -> float:
        """Bit error rate seen by one receiver."""
        decoded = self.symbols_received[location]
        wrong = sum(
            bin((a ^ b) & 0b11).count("1")
            for a, b in zip(self.symbols_sent, decoded)
        )
        total = 2 * len(self.symbols_sent)
        return wrong / total if total else 0.0


class IccBroadcast:
    """One sender broadcasting to an SMT sibling and another core."""

    LOCATIONS = (ChannelLocation.ACROSS_SMT, ChannelLocation.ACROSS_CORES)

    def __init__(self, system: System,
                 config: ChannelConfig = ChannelConfig(),
                 sender_core: int = 0, cross_core: int = 1) -> None:
        if not system.config.supports_smt:
            raise ConfigError("broadcast needs an SMT part for the sibling")
        if system.config.n_cores < 2:
            raise ConfigError("broadcast needs a second physical core")
        if sender_core == cross_core:
            raise ConfigError("cross-core receiver must use another core")
        self.system = system
        self.config = config
        self.sender_thread = system.thread_on(sender_core, 0)
        self.smt_thread = system.thread_on(sender_core, 1)
        self.cross_thread = system.thread_on(cross_core, 0)
        max_bits = system.config.max_vector_bits
        self.symbol_classes = narrow_symbol_classes(max_bits)
        self.probe_classes = {
            location: probe_class_for(location, max_bits)
            for location in self.LOCATIONS
        }
        self._calibrators: Dict[ChannelLocation, Calibrator] = {}

    # -- loops -----------------------------------------------------------------

    def _sender_loop(self, symbol: int) -> Loop:
        if symbol not in self.symbol_classes:
            raise ProtocolError(f"symbol must be 0..3, got {symbol}")
        return Loop(self.symbol_classes[symbol],
                    self.config.sender_iterations * 2,
                    self.config.block_instructions)

    def _probe_loop(self, location: ChannelLocation) -> Loop:
        return Loop(self.probe_classes[location],
                    self.config.probe_iterations * 2,
                    self.config.block_instructions)

    # -- programs ---------------------------------------------------------------

    def _sender_program(self, schedule: SlotSchedule,
                        symbols: Sequence[int]) -> Generator:
        system = self.system
        for i, symbol in enumerate(symbols):
            yield system.until(schedule.slot_start(i))
            yield system.execute(self.sender_thread, self._sender_loop(symbol))
        return None

    def _receiver_program(self, location: ChannelLocation,
                          schedule: SlotSchedule, n_symbols: int,
                          measurements: List[Optional[float]]) -> Generator:
        system = self.system
        thread = (self.smt_thread if location == ChannelLocation.ACROSS_SMT
                  else self.cross_thread)
        delay = (self.config.cross_core_delay_ns
                 if location == ChannelLocation.ACROSS_CORES else 0.0)
        for i in range(n_symbols):
            yield system.until(schedule.slot_start(i) + delay)
            result = yield system.execute(thread, self._probe_loop(location))
            measurements[i] = float(result.elapsed_tsc)
        return None

    # -- transfer machinery --------------------------------------------------------

    @property
    def slot_ns(self) -> float:
        """Broadcast slots: the paper slot plus headroom for two probes."""
        return us_to_ns(self.config.slot_us) * 1.25

    def _run(self, symbols: Sequence[int]
             ) -> Dict[ChannelLocation, List[float]]:
        if not symbols:
            raise ProtocolError("symbol stream is empty")
        schedule = SlotSchedule(self.system.now + self.slot_ns, self.slot_ns)
        measurements: Dict[ChannelLocation, List[Optional[float]]] = {
            location: [None] * len(symbols) for location in self.LOCATIONS
        }
        self.system.spawn(self._sender_program(schedule, list(symbols)),
                          name="broadcast_sender")
        for location in self.LOCATIONS:
            self.system.spawn(
                self._receiver_program(location, schedule, len(symbols),
                                       measurements[location]),
                name=f"broadcast_rx_{location.value}",
            )
        self.system.run_until(schedule.slot_start(len(symbols)) + self.slot_ns)
        out: Dict[ChannelLocation, List[float]] = {}
        for location, values in measurements.items():
            if any(v is None for v in values):
                raise ProtocolError(
                    f"{location.value} receiver missed some slots"
                )
            out[location] = [float(v) for v in values]
        return out

    def calibrate(self) -> Dict[ChannelLocation, Calibrator]:
        """Fit per-receiver decoders from shared training transactions."""
        training: List[int] = []
        for _ in range(self.config.training_rounds):
            training.extend(sorted(self.symbol_classes))
        readings = self._run(training)
        for location in self.LOCATIONS:
            self._calibrators[location] = Calibrator(
                list(zip(training, readings[location])),
                min_gap=self.config.min_level_gap_tsc,
            )
        return dict(self._calibrators)

    def transfer(self, payload: bytes) -> BroadcastReport:
        """Broadcast ``payload``; every receiver decodes independently."""
        if not payload:
            raise ProtocolError("payload is empty")
        if not self._calibrators:
            self.calibrate()
        symbols = bytes_to_symbols(payload)
        start = self.system.now
        readings = self._run(symbols)
        decoded = {
            location: self._calibrators[location].decode_all(values)
            for location, values in readings.items()
        }
        return BroadcastReport(
            sent=payload,
            symbols_sent=symbols,
            received={
                location: symbols_to_bytes(symbols_rx)
                for location, symbols_rx in decoded.items()
            },
            symbols_received=decoded,
            start_ns=start,
            end_ns=self.system.now,
        )
