"""Five-level same-thread channel: using everything Figure 10 measures.

The paper's protocol sends two bits over four levels; its own
characterisation shows at least five distinguishable levels.  The fifth
symbol costs nothing: a slot with *no sender PHI* leaves the rail at
baseline, so the same-thread probe pays its full ramp — the longest,
cleanly separated reading.  With base-5 payload coding
(:mod:`repro.core.base5`) each transaction carries 2.32 bits, a ~16 %
rate gain at identical slot timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from repro.core.base5 import bytes_to_digits, digits_for_bytes, digits_to_bytes
from repro.core.calibration import Calibrator
from repro.core.channel import ChannelConfig
from repro.core.levels import narrow_symbol_classes
from repro.core.sync import SlotSchedule
from repro.errors import ConfigError, ProtocolError
from repro.isa.instructions import IClass
from repro.isa.workload import Loop
from repro.soc.system import System
from repro.units import bits_per_second, us_to_ns

#: Symbol 0 is 'no PHI'; symbols 1..4 reuse the paper's L1..L4 ladder.
QUIET_SYMBOL = 0


@dataclass
class FiveLevelReport:
    """Outcome of one five-level transfer."""

    sent: bytes
    received: bytes
    digits_sent: List[int]
    digits_received: List[int]
    start_ns: float
    end_ns: float

    @property
    def digit_error_rate(self) -> float:
        """Fraction of base-5 digits decoded wrongly."""
        wrong = sum(1 for a, b in zip(self.digits_sent, self.digits_received)
                    if a != b)
        return wrong / len(self.digits_sent) if self.digits_sent else 0.0

    @property
    def throughput_bps(self) -> float:
        """Payload bits per second."""
        return bits_per_second(len(self.sent) * 8,
                               self.end_ns - self.start_ns)


class FiveLevelThreadChannel:
    """Same-thread channel over the full five-level ladder."""

    def __init__(self, system: System,
                 config: ChannelConfig = ChannelConfig(),
                 core: int = 0) -> None:
        self.system = system
        self.config = config
        self.thread_id = system.thread_on(core, 0)
        ladder = narrow_symbol_classes(system.config.max_vector_bits)
        #: digit -> class; digit 0 sends nothing.
        self.digit_classes: Dict[int, Optional[IClass]] = {
            QUIET_SYMBOL: None,
            1: ladder[0], 2: ladder[1], 3: ladder[2], 4: ladder[3],
        }
        self.probe_class = max(ladder.values())
        self._calibrator: Optional[Calibrator] = None

    # -- loops ------------------------------------------------------------------

    def _sender_loop(self, digit: int) -> Optional[Loop]:
        iclass = self.digit_classes.get(digit, False)
        if iclass is False:
            raise ProtocolError(f"digit must be 0..4, got {digit}")
        if iclass is None:
            return None
        iterations = max(self.config.sender_iterations,
                         int(self.config.sender_iterations * iclass.ipc))
        return Loop(iclass, iterations, self.config.block_instructions)

    def _probe_loop(self) -> Loop:
        return Loop(self.probe_class, 2 * self.config.probe_iterations,
                    self.config.block_instructions)

    @property
    def slot_ns(self) -> float:
        """Same slot arithmetic as the base protocol.

        The five-level transaction is no longer than the four-level one
        (the quiet symbol even shortens it), so the configured slot
        floor applies unchanged — the whole 16 % rate gain comes from
        the extra information per slot.
        """
        reset = us_to_ns(self.system.config.reset_time_us)
        freq = self.system.pmu.requested_freq_ghz
        probe = self._probe_loop()
        probe_wall = probe.total_instructions * 4.0 / (probe.iclass.ipc * freq)
        sender_wall = (self.config.sender_iterations
                       * self.config.block_instructions * 4.0 / freq)
        needed = reset + probe_wall + sender_wall + us_to_ns(10.0)
        return max(us_to_ns(self.config.slot_us), needed)

    # -- transfer machinery ---------------------------------------------------------

    def _program(self, schedule: SlotSchedule, digits: Sequence[int],
                 measurements: List[Optional[float]]) -> Generator:
        system = self.system
        for i, digit in enumerate(digits):
            yield system.until(schedule.slot_start(i))
            loop = self._sender_loop(digit)
            if loop is not None:
                yield system.execute(self.thread_id, loop)
            result = yield system.execute(self.thread_id, self._probe_loop())
            measurements[i] = float(result.elapsed_tsc)
        return None

    def _run_digits(self, digits: Sequence[int]) -> List[float]:
        if not digits:
            raise ProtocolError("digit stream is empty")
        schedule = SlotSchedule(self.system.now + self.slot_ns, self.slot_ns)
        measurements: List[Optional[float]] = [None] * len(digits)
        self.system.spawn(self._program(schedule, list(digits), measurements),
                          name="five_level_channel")
        self.system.run_until(schedule.slot_start(len(digits)) + self.slot_ns)
        if any(m is None for m in measurements):
            raise ProtocolError("receiver missed some slots")
        return [float(m) for m in measurements]

    def calibrate(self) -> Calibrator:
        """Train all five clusters (including the quiet symbol)."""
        training: List[int] = []
        for _ in range(self.config.training_rounds):
            training.extend(range(5))
        readings = self._run_digits(training)
        self._calibrator = Calibrator(
            list(zip(training, readings)),
            min_gap=self.config.min_level_gap_tsc,
        )
        return self._calibrator

    def transfer(self, payload: bytes) -> FiveLevelReport:
        """Send ``payload`` at 2.32 bits per transaction."""
        if not payload:
            raise ProtocolError("payload is empty")
        if self._calibrator is None:
            self.calibrate()
        assert self._calibrator is not None
        digits = bytes_to_digits(payload)
        assert len(digits) == digits_for_bytes(len(payload))
        start = self.system.now
        readings = self._run_digits(digits)
        decoded = self._calibrator.decode_all(readings)
        received = digits_to_bytes(decoded, len(payload))
        return FiveLevelReport(
            sent=payload,
            received=received,
            digits_sent=digits,
            digits_received=decoded,
            start_ns=start,
            end_ns=self.system.now,
        )
