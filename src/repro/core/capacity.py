"""Channel capacity and throughput accounting (Section 6.2).

The paper reports the IChannels capacity as ~2.9 kbit/s: two bits per
transaction over a <690 us cycle (a <40 us send window plus the ~650 us
reset-time).  These helpers compute realised and theoretical figures for
our channels and the baselines so the Figure 12 comparison can be
regenerated from measured simulations.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ProtocolError
from repro.units import NS_PER_S, us_to_ns


def raw_symbol_rate_bps(bits_per_transaction: int, cycle_us: float) -> float:
    """Error-free throughput of a slotted channel."""
    if bits_per_transaction < 1:
        raise ProtocolError("a transaction must carry at least one bit")
    if cycle_us <= 0:
        raise ProtocolError(f"cycle must be positive, got {cycle_us}")
    return bits_per_transaction * NS_PER_S / us_to_ns(cycle_us)


def binary_symmetric_capacity(error_probability: float) -> float:
    """Capacity (bits per use) of a binary symmetric channel."""
    p = error_probability
    if not 0.0 <= p <= 1.0:
        raise ProtocolError(f"error probability must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 1.0
    entropy = -p * math.log2(p) - (1 - p) * math.log2(1 - p)
    return 1.0 - entropy


def symmetric_symbol_capacity(m: int, symbol_error_probability: float) -> float:
    """Capacity (bits per use) of an m-ary symmetric channel.

    Assumes a wrong symbol is uniformly one of the other ``m - 1``
    symbols — the standard model for threshold decoding with occasional
    level confusions.
    """
    if m < 2:
        raise ProtocolError(f"symbol alphabet needs >= 2 symbols, got {m}")
    p = symbol_error_probability
    if not 0.0 <= p <= 1.0:
        raise ProtocolError(f"error probability must be in [0, 1], got {p}")
    if p == 0.0:
        return math.log2(m)
    if p == 1.0:
        return math.log2(m) - math.log2(m - 1)
    entropy = -(1 - p) * math.log2(1 - p) - p * math.log2(p / (m - 1))
    return math.log2(m) - entropy


def symbol_channel_capacity_bps(cycle_us: float,
                                symbol_error_probability: float,
                                m: int = 4) -> float:
    """Information capacity of a slotted m-ary channel in bit/s."""
    per_use = symmetric_symbol_capacity(m, symbol_error_probability)
    if cycle_us <= 0:
        raise ProtocolError(f"cycle must be positive, got {cycle_us}")
    return per_use * NS_PER_S / us_to_ns(cycle_us)


def effective_throughput_bps(raw_bps: float, ber: float,
                             code_rate: float = 1.0,
                             duty_cycle: float = 1.0) -> float:
    """Deliverable throughput after coding and quiet-period gating.

    Parameters
    ----------
    raw_bps:
        Channel bits per second on the wire.
    ber:
        Residual bit error rate after decoding.
    code_rate:
        Information bits per channel bit of the ECC in use.
    duty_cycle:
        Fraction of wall time the channel transmits (quiet-period
        gating per Section 6.3 lowers this; client systems idle >80 %
        of the day, so high duty cycles are realistic for patient
        attackers).
    """
    if raw_bps < 0:
        raise ProtocolError(f"raw throughput must be >= 0, got {raw_bps}")
    if not 0.0 <= ber <= 1.0:
        raise ProtocolError(f"BER must be in [0, 1], got {ber}")
    if not 0.0 < code_rate <= 1.0:
        raise ProtocolError(f"code rate must be in (0, 1], got {code_rate}")
    if not 0.0 <= duty_cycle <= 1.0:
        raise ProtocolError(f"duty cycle must be in [0, 1], got {duty_cycle}")
    return raw_bps * code_rate * duty_cycle * (1.0 - ber)


def confusion_matrix(sent: Sequence[int], received: Sequence[int],
                     m: int = 4) -> "list[list[int]]":
    """Counts[i][j] of symbol ``i`` sent and ``j`` decoded."""
    if len(sent) != len(received):
        raise ProtocolError(
            f"stream lengths differ: {len(sent)} vs {len(received)}"
        )
    if not sent:
        raise ProtocolError("cannot build a confusion matrix from nothing")
    counts = [[0] * m for _ in range(m)]
    for a, b in zip(sent, received):
        if not (0 <= a < m and 0 <= b < m):
            raise ProtocolError(f"symbol out of range: sent={a} received={b}")
        counts[a][b] += 1
    return counts


def empirical_mutual_information(confusion: Sequence[Sequence[int]]) -> float:
    """Mutual information (bits/use) estimated from a confusion matrix.

    The plug-in estimator ``I(X;Y) = sum p(x,y) log2(p(x,y)/(p(x)p(y)))``
    over the empirical joint distribution.  This measures the capacity a
    *real* decoder run achieved — including asymmetric confusions the
    symmetric-channel formulas cannot express.
    """
    total = sum(sum(row) for row in confusion)
    if total == 0:
        raise ProtocolError("empty confusion matrix")
    m = len(confusion)
    p_x = [sum(confusion[i]) / total for i in range(m)]
    p_y = [sum(confusion[i][j] for i in range(m)) / total for j in range(m)]
    info = 0.0
    for i in range(m):
        for j in range(m):
            joint = confusion[i][j] / total
            if joint > 0:
                info += joint * math.log2(joint / (p_x[i] * p_y[j]))
    return max(0.0, info)


def empirical_capacity_bps(sent: Sequence[int], received: Sequence[int],
                           elapsed_ns: float, m: int = 4) -> float:
    """Information actually carried per second by a measured transfer."""
    if elapsed_ns <= 0:
        raise ProtocolError(f"elapsed time must be positive, got {elapsed_ns}")
    info_per_symbol = empirical_mutual_information(
        confusion_matrix(sent, received, m))
    return info_per_symbol * len(sent) * NS_PER_S / elapsed_ns


def mean_ber(bers: Sequence[float]) -> float:
    """Average BER over repeated transfers."""
    if not bers:
        raise ProtocolError("need at least one BER sample")
    if any(not 0.0 <= b <= 1.0 for b in bers):
        raise ProtocolError("BER samples must be in [0, 1]")
    return sum(bers) / len(bers)
