"""IccCoresCovert: covert channel across physical cores (Section 4.3).

All cores share one voltage regulator, and the central PMU serialises
voltage transitions: when the receiver's own PHI request arrives while
the sender's transition is in flight (within a few hundred cycles), the
receiver stays throttled until *both* transitions complete.  Its probe
time therefore grows with the sender's level (Figure 4c), even though
sender and receiver never share a core.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.core.channel import ChannelConfig, CovertChannel
from repro.core.levels import ChannelLocation
from repro.core.sync import SlotSchedule
from repro.errors import ConfigError
from repro.soc.system import System


class IccCoresCovert(CovertChannel):
    """Cross-physical-core covert channel."""

    location = ChannelLocation.ACROSS_CORES

    def __init__(self, system: System, config: ChannelConfig = ChannelConfig(),
                 sender_core: int = 0, receiver_core: int = 1) -> None:
        super().__init__(system, config)
        if system.config.n_cores < 2:
            raise ConfigError("IccCoresCovert needs at least two cores")
        if sender_core == receiver_core:
            raise ConfigError(
                "sender and receiver must run on different physical cores"
            )
        for core in (sender_core, receiver_core):
            if not 0 <= core < system.config.n_cores:
                raise ConfigError(f"no such core: {core}")
        self.sender_thread = system.thread_on(sender_core, 0)
        self.receiver_thread = system.thread_on(receiver_core, 0)

    def _sender_program(self, schedule: SlotSchedule,
                        symbols: Sequence[int]) -> Generator:
        system = self.system
        for i, symbol in enumerate(symbols):
            yield system.until(schedule.slot_start(i))
            yield system.execute(self.sender_thread, self.sender_loop(symbol))
        return None

    def _receiver_program(self, schedule: SlotSchedule, n_symbols: int,
                          measurements: List[Optional[float]]) -> Generator:
        system = self.system
        delay = self.config.cross_core_delay_ns
        for i in range(n_symbols):
            # Start the probe a few hundred cycles after the sender so its
            # voltage request queues behind the sender's (Section 4.3.1).
            yield system.until(schedule.slot_start(i) + delay)
            result = yield system.execute(self.receiver_thread, self.probe_loop())
            measurements[i] = float(result.elapsed_tsc)
        return None

    def _spawn_transaction_programs(self, schedule: SlotSchedule,
                                    symbols: Sequence[int],
                                    measurements: List[Optional[float]]) -> None:
        self.system.spawn(
            self._sender_program(self.party_schedule(schedule, "sender"),
                                 symbols),
            name="icc_cores_sender")
        self.system.spawn(
            self._receiver_program(self.party_schedule(schedule, "receiver"),
                                   len(symbols), measurements),
            name="icc_cores_receiver",
        )
