"""Base machinery shared by the three IChannels covert channels.

A transfer proceeds in fixed wall-clock slots (Section 4.3.3).  In each
slot the sender executes a PHI loop whose computational-intensity level
encodes two secret bits, and the receiver measures a probe loop with
``rdtsc``; the measured throttling behaviour decodes the level.  Between
slots both sides stay quiet so the 650 us hysteresis (reset-time,
Section 4.1.2) returns the rail to baseline.

Subclasses provide the per-location sender/receiver programs; everything
else — framing, calibration, decoding, reporting — lives here.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Sequence

from repro.core.calibration import Calibrator
from repro.core.encoding import (
    bits_to_bytes,
    bytes_to_bits,
    bytes_to_symbols,
    symbols_to_bytes,
)
from repro.core.levels import (
    ChannelLocation,
    ROBUST_SYMBOLS,
    SYMBOL_BITS,
    bit_for_robust_symbol,
    narrow_symbol_classes,
    probe_class_for,
    robust_symbol_for_bit,
)
from repro.core.sync import JitteredSchedule, SlotSchedule
from repro.errors import ProtocolError
from repro.obs.tracer import current as _obs
from repro.isa.instructions import IClass
from repro.isa.workload import Loop
from repro.soc.system import System
from repro.units import bits_per_second, us_to_ns


@dataclass(frozen=True)
class ChannelConfig:
    """Protocol parameters of one covert channel instance.

    Parameters
    ----------
    slot_us:
        Transaction slot length.  Must exceed the send window plus the
        650 us reset-time plus the rail's down-ramp; 750 us is safe for
        the MBVR parts (the paper's <=690 us assumes an instant ramp-
        down, which MBVR hardware does not quite deliver).
    sender_iterations / probe_iterations:
        Loop lengths (300-instruction blocks per iteration).  The probe
        must outlast the longest throttling period it needs to observe.
    cross_core_delay_ns:
        How long after the sender the cross-core receiver starts its
        probe ('within a few hundred cycles', Section 4.3.1).
    training_rounds:
        Calibration transactions per symbol level.
    min_level_gap_tsc:
        Required separation between calibrated cluster means, in TSC
        cycles; closer clusters raise :class:`CalibrationError`.
    adaptive_slot:
        Grow the slot beyond ``slot_us`` when the part's electrical
        parameters require a longer send window (default).  Disable to
        force the configured slot exactly — useful for studying what
        goes wrong when the protocol violates the reset-time.
    slot_jitter_us / jitter_seed:
        Pseudo-random per-slot start offsets from a seed both parties
        share: defeats periodicity-based throttle-pattern detection at
        the cost of ``slot_jitter_us / 2`` of average extra latency per
        transaction.
    """

    slot_us: float = 750.0
    sender_iterations: int = 30
    probe_iterations: int = 60
    block_instructions: int = 300
    cross_core_delay_ns: float = 200.0
    training_rounds: int = 3
    min_level_gap_tsc: float = 500.0
    adaptive_slot: bool = True
    slot_jitter_us: float = 0.0
    jitter_seed: int = 7

    def __post_init__(self) -> None:
        if self.slot_us <= 0:
            raise ProtocolError(f"slot must be positive, got {self.slot_us}")
        if self.sender_iterations < 1 or self.probe_iterations < 1:
            raise ProtocolError("loop iterations must be >= 1")
        if self.training_rounds < 1:
            raise ProtocolError("training needs at least one round per symbol")


@dataclass
class TransferReport:
    """Everything observed during one payload transfer."""

    sent: bytes
    received: bytes
    symbols_sent: List[int]
    symbols_received: List[int]
    measurements_tsc: List[float]
    start_ns: float
    end_ns: float
    location: ChannelLocation
    retraining: bool = False
    #: Bits each transaction carried: :data:`SYMBOL_BITS` for the full
    #: four-level ladder, 1 for degraded two-level signalling.
    bits_per_symbol: int = SYMBOL_BITS
    meta: dict = field(default_factory=dict)

    @property
    def bits(self) -> int:
        """Payload bits transferred."""
        return len(self.symbols_sent) * self.bits_per_symbol

    @property
    def elapsed_ns(self) -> float:
        """Wall time of the transfer (excluding calibration)."""
        return self.end_ns - self.start_ns

    @property
    def bit_errors(self) -> int:
        """Wrong bits between sent and received symbol streams.

        When the streams differ in length (a receiver that lost slots),
        every missing or surplus symbol counts as fully errored — a
        silently dropped tail must not *lower* the reported BER.
        """
        wrong = 0
        if self.bits_per_symbol == SYMBOL_BITS:
            for a, b in zip(self.symbols_sent, self.symbols_received):
                wrong += bin((a ^ b) & 0b11).count("1")
        else:
            # Degraded signalling: each symbol carries one bit, so any
            # symbol mismatch is exactly one bit error.
            for a, b in zip(self.symbols_sent, self.symbols_received):
                wrong += int(a != b)
        wrong += self.bits_per_symbol * abs(len(self.symbols_sent)
                                            - len(self.symbols_received))
        return wrong

    @property
    def ber(self) -> float:
        """Bit error rate of the transfer."""
        if self.bits == 0:
            return 0.0
        return self.bit_errors / self.bits

    @property
    def throughput_bps(self) -> float:
        """Realised throughput in bits per second."""
        return bits_per_second(self.bits, self.elapsed_ns)

    @property
    def goodput_bps(self) -> float:
        """Throughput discounted by the bit error rate."""
        return self.throughput_bps * (1.0 - self.ber)

    def fingerprint(self) -> dict:
        """A digest-ready reduction of the transfer (plain JSON types).

        Everything the golden-trace harness (:mod:`repro.verify`) pins
        about a transfer: the payloads, the exact symbol streams, the
        raw receiver measurements and the simulated start/end times.
        Two transfers with equal fingerprints behaved identically at
        every externally observable seam.
        """
        return {
            "sent": self.sent.hex(),
            "received": self.received.hex(),
            "symbols_sent": list(self.symbols_sent),
            "symbols_received": list(self.symbols_received),
            "measurements_tsc": [float(m) for m in self.measurements_tsc],
            "start_ns": float(self.start_ns),
            "end_ns": float(self.end_ns),
            "location": self.location.value,
            "bits_per_symbol": int(self.bits_per_symbol),
            "ber": self.ber,
            "throughput_bps": self.throughput_bps,
        }


class CovertChannel(abc.ABC):
    """Common behaviour of IccThreadCovert / IccSMTcovert / IccCoresCovert."""

    #: Where sender and receiver run; set by each subclass.
    location: ClassVar[ChannelLocation]

    def __init__(self, system: System,
                 config: ChannelConfig = ChannelConfig()) -> None:
        self.system = system
        self.config = config
        max_bits = system.config.max_vector_bits
        self.symbol_classes = narrow_symbol_classes(max_bits)
        self.probe_class = probe_class_for(self.location, max_bits)
        self._calibrator: Optional[Calibrator] = None
        self._calibrated_symbols: "tuple[int, ...]" = ()
        # Loop construction and slot sizing are pure functions of the
        # requested operating point (the electrical model is immutable),
        # so they are memoised per channel, keyed by the requested
        # frequency.  Loops are frozen dataclasses — safe to share.
        self._loop_cache: dict = {}
        self._slot_ns_cache: dict = {}

    # -- subclass hooks ------------------------------------------------------

    @abc.abstractmethod
    def _spawn_transaction_programs(self, schedule: SlotSchedule,
                                    symbols: Sequence[int],
                                    measurements: List[Optional[float]]) -> None:
        """Spawn the sender/receiver programs for one symbol stream.

        ``measurements[i]`` must receive the receiver's probe reading
        (elapsed TSC cycles) for slot ``i``.
        """

    # -- electrical sizing ------------------------------------------------------
    #
    # The protocol only works when two timing conditions hold (the paper's
    # senders/receivers use "a few thousand loop iterations" for the same
    # reason):
    #
    # 1. the sender's loop must outlast its *own* voltage transition, so
    #    the grant lands while the loop still runs — otherwise the probe
    #    begins mid-ramp and only the total rail distance (which is the
    #    same for every symbol) remains observable;
    # 2. the receiver's probe must outlast the *longest* throttling
    #    period it has to measure, or its reading saturates at 4x its own
    #    length and the top levels alias.
    #
    # Both bounds depend on the part's guardbands and VR slew, so loops
    # are sized from the system's electrical model, never below the
    # configured minimums.

    def _operating_point(self) -> "tuple[float, float]":
        """(frequency GHz, baseline Vcc) of the current governor target."""
        freq = self.system.pmu.requested_freq_ghz
        vcc = self.system.pmu.curve.vcc_for(freq)
        return freq, vcc

    def _tp_estimate_ns(self, delta_v: float) -> float:
        """Pessimistic transition time for a guardband step of ``delta_v``."""
        spec = self.system.pmu.rail_of(0).spec
        quantisation_v = 2.0 * spec.vid_step_mv / 1000.0
        ramp = spec.transition_ns(0.0, delta_v + quantisation_v)
        return ramp + spec.command_latency_ns  # second command in a queue

    def _iterations_for_wall(self, iclass: IClass, wall_ns: float) -> int:
        """Iterations of ``iclass`` spanning ``wall_ns`` at quarter rate."""
        freq, _ = self._operating_point()
        throttled_rate = iclass.ipc * freq / 4.0  # instructions per ns
        instructions = wall_ns * throttled_rate
        return max(1, int(instructions / self.config.block_instructions) + 1)

    def _min_wall_ns(self, configured_iterations: int) -> float:
        """Wall-time floor an iteration-count minimum implies (at IPC 1)."""
        freq, _ = self._operating_point()
        return configured_iterations * self.config.block_instructions * 4.0 / freq

    def _sender_dv(self, iclass: IClass) -> float:
        freq, vcc = self._operating_point()
        return self.system.guardband.delta_v(iclass, vcc, freq)

    def sender_loop(self, symbol: int) -> Loop:
        """The PHI loop encoding two-bit ``symbol``.

        Every symbol's loop is sized for the *worst* symbol's transition
        (and iteration counts scale with the class IPC), so the sender's
        unthrottled wall time is symbol-independent: the only observable
        difference between symbols is the throttling behaviour itself,
        never the loop length.
        """
        if symbol not in self.symbol_classes:
            raise ProtocolError(f"symbol must be 0..3, got {symbol}")
        key = ("sender", symbol, self.system.pmu.requested_freq_ghz)
        cached = self._loop_cache.get(key)
        if cached is not None:
            return cached
        iclass = self.symbol_classes[symbol]
        worst_dv = max(self._sender_dv(c) for c in self.symbol_classes.values())
        wall = max(self._min_wall_ns(self.config.sender_iterations),
                   1.5 * self._tp_estimate_ns(worst_dv))
        loop = Loop(iclass, self._iterations_for_wall(iclass, wall),
                    self.config.block_instructions)
        self._loop_cache[key] = loop
        return loop

    def probe_loop(self) -> Loop:
        """The receiver's measurement loop (sized to outlast any TP).

        The worst throttling period the probe must span depends on the
        location: same-thread probes pay at most their own full ramp
        (the residual after the sender shrinks it); SMT probes observe
        at most the sender's ramp; cross-core probes queue behind the
        sender and then pay their own ramp on top.
        """
        key = ("probe", self.system.pmu.requested_freq_ghz)
        cached = self._loop_cache.get(key)
        if cached is not None:
            return cached
        worst_sender_dv = max(
            self._sender_dv(iclass) for iclass in self.symbol_classes.values()
        )
        probe_dv = self._sender_dv(self.probe_class)
        if self.location == ChannelLocation.SAME_THREAD:
            worst_dv = probe_dv
        elif self.location == ChannelLocation.ACROSS_SMT:
            worst_dv = worst_sender_dv
        else:
            worst_dv = worst_sender_dv + probe_dv
        wall = max(self._min_wall_ns(self.config.probe_iterations),
                   1.5 * self._tp_estimate_ns(worst_dv))
        loop = Loop(self.probe_class,
                    self._iterations_for_wall(self.probe_class, wall),
                    self.config.block_instructions)
        self._loop_cache[key] = loop
        return loop

    # -- slot execution -----------------------------------------------------------

    @property
    def slot_ns(self) -> float:
        """Slot length in ns.

        At least the configured ``slot_us``; grown when the part's slow
        guardband ramps make the send window (sender loop + probe loop,
        both potentially at quarter rate) plus the reset-time exceed it.
        """
        if not self.config.adaptive_slot:
            return us_to_ns(self.config.slot_us)
        freq, _ = self._operating_point()
        cached = self._slot_ns_cache.get(freq)
        if cached is not None:
            return cached
        share = 2.0 if self.location == ChannelLocation.ACROSS_SMT else 1.0

        def wall_ns(loop: Loop) -> float:
            return loop.total_instructions * 4.0 * share / (loop.iclass.ipc * freq)

        send_window = max(wall_ns(self.sender_loop(s))
                          for s in self.symbol_classes)
        send_window += wall_ns(self.probe_loop())
        send_window += self.config.cross_core_delay_ns
        reset_ns = us_to_ns(self.system.config.reset_time_us)
        needed = reset_ns + send_window + us_to_ns(10.0)
        result = max(us_to_ns(self.config.slot_us), needed)
        self._slot_ns_cache[freq] = result
        return result

    def party_schedule(self, schedule: SlotSchedule,
                       party: str) -> SlotSchedule:
        """``party``'s view of ``schedule`` under any scheduling faults.

        With no injector attached (``system.faults`` unset) this is the
        shared schedule itself; under a ``slot-jitter`` fault each party
        gets independently delayed slot entries.  Subclasses route their
        sender/receiver programs through this so faults act on the seam
        without the channels importing the fault layer.
        """
        faults = getattr(self.system, "faults", None)
        if faults is None:
            return schedule
        return faults.perturb_schedule(schedule, party)

    def _fault_slack_ns(self) -> float:
        """Extra run time scheduling faults may push the last probe by."""
        faults = getattr(self.system, "faults", None)
        if faults is None:
            return 0.0
        return faults.extra_slot_slack_ns()

    def _fresh_schedule(self, n_slots: int) -> SlotSchedule:
        """A slot schedule starting one quiet slot from now.

        The leading quiet slot guarantees the hysteresis window of any
        earlier activity has expired before slot 0 begins.
        """
        del n_slots  # length is implicit; slots are consumed in order
        jitter_ns = us_to_ns(self.config.slot_jitter_us)
        slot = self.slot_ns + jitter_ns  # keep the reset-time honoured
        epoch = self.system.now + slot
        if jitter_ns > 0.0:
            return JitteredSchedule(epoch_ns=epoch, slot_ns=slot,
                                    jitter_ns=jitter_ns,
                                    seed=self.config.jitter_seed)
        return SlotSchedule(epoch_ns=epoch, slot_ns=slot)

    def run_symbols(self, symbols: Sequence[int]) -> List[float]:
        """Transmit a raw symbol stream; returns per-slot probe readings."""
        if not symbols:
            raise ProtocolError("symbol stream is empty")
        schedule = self._fresh_schedule(len(symbols))
        measurements: List[Optional[float]] = [None] * len(symbols)
        self._spawn_transaction_programs(schedule, list(symbols), measurements)
        end = (schedule.slot_start(len(symbols)) + self.slot_ns
               + self._fault_slack_ns())
        self.system.run_until(end)
        missing = [i for i, m in enumerate(measurements) if m is None]
        tracer = _obs()
        if tracer.enabled:
            readings = tracer.metrics.histogram("channel.slot_measurement_tsc")
            for i, symbol in enumerate(symbols):
                args = {"slot": i, "symbol": symbol}
                if measurements[i] is not None:
                    args["tsc"] = float(measurements[i])  # type: ignore[arg-type]
                    readings.observe(float(measurements[i]))  # type: ignore[arg-type]
                tracer.complete(f"slot s{symbol}", "channel",
                                schedule.slot_start(i), self.slot_ns,
                                track="channel.slots", args=args)
            if missing:
                tracer.metrics.counter(
                    "channel.missing_measurements").inc(len(missing))
                for i in missing:
                    tracer.instant(
                        "channel.missing_measurement", "channel",
                        schedule.slot_start(i), track="channel.slots",
                        args={"slot": i, "symbol": symbols[i]},
                    )
        if missing:
            raise ProtocolError(
                f"receiver produced no measurement for slots {missing}; "
                f"slot length {self.config.slot_us} us may be too short"
            )
        return [float(m) for m in measurements]

    # -- calibration -------------------------------------------------------------

    def calibrate(self, symbols: Optional[Sequence[int]] = None) -> Calibrator:
        """Learn decode thresholds by sending known training symbols.

        ``symbols`` restricts training to a subset of the ladder — the
        degraded two-level mode calibrates on
        :data:`~repro.core.levels.ROBUST_SYMBOLS` only, which both
        shortens training and widens every decision margin.
        """
        levels = sorted(self.symbol_classes if symbols is None else symbols)
        for symbol in levels:
            if symbol not in self.symbol_classes:
                raise ProtocolError(f"symbol must be 0..3, got {symbol}")
        if len(levels) < 2:
            raise ProtocolError("calibration needs at least two levels")
        training_symbols: List[int] = []
        for _ in range(self.config.training_rounds):
            training_symbols.extend(levels)
        start = self.system.now
        readings = self.run_symbols(training_symbols)
        self._calibrator = Calibrator(
            list(zip(training_symbols, readings)),
            min_gap=self.config.min_level_gap_tsc,
        )
        self._calibrated_symbols = tuple(levels)
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("channel.calibrations").inc()
            tracer.complete(
                "channel.calibrate", "channel", start, self.system.now - start,
                track="channel",
                args={"rounds": self.config.training_rounds,
                      "levels": len(levels),
                      "training_symbols": len(training_symbols)},
            )
        return self._calibrator

    @property
    def calibrator(self) -> Optional[Calibrator]:
        """The fitted calibrator, if :meth:`calibrate` ran."""
        return self._calibrator

    # -- transfers -------------------------------------------------------------------

    def transfer(self, payload: bytes) -> TransferReport:
        """Send ``payload`` and decode it; calibrates first if needed."""
        if not payload:
            raise ProtocolError("payload is empty")
        retrained = False
        full_ladder = tuple(sorted(self.symbol_classes))
        if self._calibrator is None or self._calibrated_symbols != full_ladder:
            self.calibrate()
            retrained = True
        assert self._calibrator is not None
        symbols = bytes_to_symbols(payload)
        start = self.system.now
        readings = self.run_symbols(symbols)
        decoded = self._calibrator.decode_all(readings)
        if len(decoded) != len(symbols):
            raise ProtocolError(
                f"receiver decoded {len(decoded)} symbols for "
                f"{len(symbols)} sent; the slot streams diverged"
            )
        report = TransferReport(
            sent=payload,
            received=symbols_to_bytes(decoded),
            symbols_sent=symbols,
            symbols_received=decoded,
            measurements_tsc=readings,
            start_ns=start,
            end_ns=self.system.now,
            location=self.location,
            retraining=retrained,
        )
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("channel.transfers").inc()
            tracer.metrics.histogram("channel.transfer_ber").observe(report.ber)
            tracer.complete(
                "channel.transfer", "channel", start, report.elapsed_ns,
                track="channel",
                args={"bytes": len(payload), "bits": report.bits,
                      "bit_errors": report.bit_errors,
                      "ber": round(report.ber, 6),
                      "location": self.location.name,
                      "retrained": retrained},
            )
        return report

    def transfer_robust(self, payload: bytes) -> TransferReport:
        """Send ``payload`` with degraded two-level signalling.

        One bit per transaction using only the ladder's extreme levels
        (:data:`~repro.core.levels.ROBUST_SYMBOLS`): half the rate of
        :meth:`transfer`, but the decision margin grows to the full
        spread of the ladder — the adaptive session's graceful
        degradation when the four-level SNR collapses under faults.
        Calibrates (on the two robust levels only) when needed.
        """
        if not payload:
            raise ProtocolError("payload is empty")
        retrained = False
        if (self._calibrator is None
                or self._calibrated_symbols != ROBUST_SYMBOLS):
            self.calibrate(symbols=ROBUST_SYMBOLS)
            retrained = True
        assert self._calibrator is not None
        symbols = [robust_symbol_for_bit(bit)
                   for bit in bytes_to_bits(payload)]
        start = self.system.now
        readings = self.run_symbols(symbols)
        decoded = self._calibrator.decode_all(readings)
        if len(decoded) != len(symbols):
            raise ProtocolError(
                f"receiver decoded {len(decoded)} symbols for "
                f"{len(symbols)} sent; the slot streams diverged"
            )
        received = bits_to_bytes([bit_for_robust_symbol(s) for s in decoded])
        report = TransferReport(
            sent=payload,
            received=received,
            symbols_sent=symbols,
            symbols_received=decoded,
            measurements_tsc=readings,
            start_ns=start,
            end_ns=self.system.now,
            location=self.location,
            retraining=retrained,
            bits_per_symbol=1,
        )
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("channel.transfers_robust").inc()
            tracer.metrics.histogram("channel.transfer_ber").observe(report.ber)
            tracer.complete(
                "channel.transfer_robust", "channel", start, report.elapsed_ns,
                track="channel",
                args={"bytes": len(payload), "bits": report.bits,
                      "bit_errors": report.bit_errors,
                      "ber": round(report.ber, 6),
                      "location": self.location.name,
                      "retrained": retrained},
            )
        return report

    def symbol_class(self, symbol: int) -> IClass:
        """PHI class for ``symbol`` under this part's ladder."""
        if symbol not in self.symbol_classes:
            raise ProtocolError(f"symbol must be 0..3, got {symbol}")
        return self.symbol_classes[symbol]
