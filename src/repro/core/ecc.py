"""Error handling for noisy channels (Section 6.3 mitigations).

The paper lists three receiver-side strategies against system noise:

1. **Averaging** — send the value many times, average the measurements
   (:class:`RepetitionCode` with majority voting is the digital analog).
2. **Error detection and correction codes** — we provide Hamming(7,4)
   with an extended SECDED parity bit and a CRC-8 detector.
3. **Quiet-period gating** — transmit only when the system is idle
   (implemented at the protocol layer; see
   :func:`repro.core.capacity.effective_throughput_bps` for its cost
   accounting).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ProtocolError

_HAMMING_DATA_POSITIONS = (2, 4, 5, 6)  # 0-indexed positions of d1..d4
_HAMMING_PARITY_POSITIONS = (0, 1, 3)   # p1, p2, p4


def _check_bits(bits: Sequence[int]) -> List[int]:
    if any(bit not in (0, 1) for bit in bits):
        raise ProtocolError("bits must be 0 or 1")
    return list(bits)


@dataclass(frozen=True)
class RepetitionCode:
    """Send every bit ``n`` times; decode by majority vote.

    ``n`` must be odd so the vote cannot tie.  Corrects up to
    ``(n - 1) / 2`` errors per bit.
    """

    n: int = 3

    def __post_init__(self) -> None:
        if self.n < 1 or self.n % 2 == 0:
            raise ProtocolError(f"repetition factor must be odd >= 1, got {self.n}")

    @property
    def rate(self) -> float:
        """Code rate (information bits per transmitted bit)."""
        return 1.0 / self.n

    def encode(self, bits: Sequence[int]) -> List[int]:
        """Repeat each bit ``n`` times."""
        out: List[int] = []
        for bit in _check_bits(bits):
            out.extend([bit] * self.n)
        return out

    def decode(self, coded: Sequence[int]) -> List[int]:
        """Majority-vote each group of ``n`` bits."""
        coded = _check_bits(coded)
        if len(coded) % self.n != 0:
            raise ProtocolError(
                f"coded length {len(coded)} is not a multiple of {self.n}"
            )
        out = []
        for i in range(0, len(coded), self.n):
            votes = Counter(coded[i:i + self.n])
            out.append(1 if votes[1] > votes[0] else 0)
        return out


class Hamming74:
    """Hamming(7,4) with an optional extended (SECDED) parity bit.

    Encodes 4 data bits into 7 (or 8 with ``extended=True``).  Corrects
    any single-bit error per block; the extended parity additionally
    *detects* double-bit errors (reported via :meth:`decode_block`).
    """

    def __init__(self, extended: bool = True) -> None:
        self.extended = extended

    @property
    def block_bits(self) -> int:
        """Transmitted bits per block."""
        return 8 if self.extended else 7

    @property
    def rate(self) -> float:
        """Code rate."""
        return 4.0 / self.block_bits

    def encode_block(self, data: Sequence[int]) -> List[int]:
        """Encode exactly 4 data bits into one block."""
        data = _check_bits(data)
        if len(data) != 4:
            raise ProtocolError(f"Hamming(7,4) blocks carry 4 bits, got {len(data)}")
        d1, d2, d3, d4 = data
        p1 = d1 ^ d2 ^ d4
        p2 = d1 ^ d3 ^ d4
        p4 = d2 ^ d3 ^ d4
        block = [p1, p2, d1, p4, d2, d3, d4]
        if self.extended:
            block.append(sum(block) % 2)
        return block

    def decode_block(self, block: Sequence[int]) -> "tuple[List[int], bool, bool]":
        """Decode one block; returns (data, corrected, uncorrectable).

        ``corrected`` is True when a single-bit error was repaired;
        ``uncorrectable`` is True when the extended parity exposed a
        double-bit error (data is then best-effort).
        """
        block = _check_bits(block)
        if len(block) != self.block_bits:
            raise ProtocolError(
                f"expected {self.block_bits}-bit block, got {len(block)}"
            )
        code = list(block[:7])
        syndrome = 0
        for parity_index, positions in (
            (1, (0, 2, 4, 6)),
            (2, (1, 2, 5, 6)),
            (4, (3, 4, 5, 6)),
        ):
            if sum(code[p] for p in positions) % 2:
                syndrome += parity_index
        corrected = False
        uncorrectable = False
        if self.extended:
            overall_ok = (sum(block) % 2) == 0
            if syndrome and not overall_ok:
                code[syndrome - 1] ^= 1
                corrected = True
            elif syndrome and overall_ok:
                uncorrectable = True  # double-bit error detected
            elif not syndrome and not overall_ok:
                corrected = True  # error in the extended parity bit itself
        elif syndrome:
            code[syndrome - 1] ^= 1
            corrected = True
        data = [code[p] for p in _HAMMING_DATA_POSITIONS]
        return data, corrected, uncorrectable

    def encode(self, bits: Sequence[int]) -> List[int]:
        """Encode a bit stream (length must be a multiple of 4)."""
        bits = _check_bits(bits)
        if len(bits) % 4 != 0:
            raise ProtocolError(f"bit count {len(bits)} is not a multiple of 4")
        out: List[int] = []
        for i in range(0, len(bits), 4):
            out.extend(self.encode_block(bits[i:i + 4]))
        return out

    def decode(self, coded: Sequence[int]) -> List[int]:
        """Decode a coded stream, correcting single-bit errors per block."""
        coded = _check_bits(coded)
        if len(coded) % self.block_bits != 0:
            raise ProtocolError(
                f"coded length {len(coded)} is not a multiple of {self.block_bits}"
            )
        out: List[int] = []
        for i in range(0, len(coded), self.block_bits):
            data, _, _ = self.decode_block(coded[i:i + self.block_bits])
            out.extend(data)
        return out


def interleave(bits: Sequence[int], depth: int) -> List[int]:
    """Block-interleave a bit stream (write row-major, read column-major).

    A symbol error on the channel corrupts *two adjacent* bits; without
    interleaving both can land in the same Hamming block and defeat its
    single-error correction.  Reading column-major places channel-
    adjacent bits ``depth`` positions apart in the original stream, so
    with ``depth >= block_bits`` (8 for extended Hamming) each code
    block absorbs at most one bit of any symbol error.

    Works on any symbol sequence, not only bits.
    """
    bits = list(bits)
    if depth < 1:
        raise ProtocolError(f"interleaver depth must be >= 1, got {depth}")
    if len(bits) % depth != 0:
        raise ProtocolError(
            f"bit count {len(bits)} is not a multiple of depth {depth}"
        )
    rows = len(bits) // depth
    return [bits[row * depth + col] for col in range(depth) for row in range(rows)]


def deinterleave(bits: Sequence[int], depth: int) -> List[int]:
    """Inverse of :func:`interleave`."""
    bits = list(bits)
    if depth < 1:
        raise ProtocolError(f"interleaver depth must be >= 1, got {depth}")
    if len(bits) % depth != 0:
        raise ProtocolError(
            f"bit count {len(bits)} is not a multiple of depth {depth}"
        )
    rows = len(bits) // depth
    out = [0] * len(bits)
    position = 0
    for col in range(depth):
        for row in range(rows):
            out[row * depth + col] = bits[position]
            position += 1
    return out


class CRC8:
    """CRC-8 (polynomial 0x07) for payload integrity checks."""

    POLY = 0x07

    def checksum(self, data: bytes) -> int:
        """CRC-8 of ``data``."""
        crc = 0
        for byte in data:
            crc ^= byte
            for _ in range(8):
                if crc & 0x80:
                    crc = ((crc << 1) ^ self.POLY) & 0xFF
                else:
                    crc = (crc << 1) & 0xFF
        return crc

    def append(self, data: bytes) -> bytes:
        """Payload with its CRC byte appended."""
        return data + bytes([self.checksum(data)])

    def verify(self, framed: bytes) -> bool:
        """Whether the trailing CRC byte matches the payload."""
        if len(framed) < 2:
            raise ProtocolError("framed payload needs at least 2 bytes")
        return self.checksum(framed[:-1]) == framed[-1]
