"""Symbol levels and probe classes of the IChannels protocol (Figure 3).

The sender encodes two secret bits per transaction by choosing one of
four computational-intensity levels:

======  ======  ==============
bits    level   sender class
======  ======  ==============
``00``  L1      128b_Heavy
``01``  L2      256b_Light
``10``  L3      256b_Heavy
``11``  L4      512b_Heavy
======  ======  ==============

The receiver's probe loop depends on where it runs relative to the
sender: ``512b_Heavy`` on the same hardware thread (the probe's residual
voltage ramp shrinks as the sender's level grows), a scalar ``64b`` loop
on the sibling SMT thread (co-throttled for the sender's TP), and
``128b_Heavy`` across cores (its own transition queues behind the
sender's).
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.errors import ConfigError
from repro.isa.instructions import IClass

#: Bits carried per communication transaction.
SYMBOL_BITS = 2

#: Two-bit symbol value -> the PHI class the sender executes.
SYMBOL_CLASSES: Dict[int, IClass] = {
    0b00: IClass.HEAVY_128,
    0b01: IClass.LIGHT_256,
    0b10: IClass.HEAVY_256,
    0b11: IClass.HEAVY_512,
}

#: Paper-style level names per symbol.
LEVEL_NAMES: Dict[int, str] = {0b00: "L1", 0b01: "L2", 0b10: "L3", 0b11: "L4"}

#: The two maximally-separated symbols (lowest and highest level) used
#: by degraded two-level signalling: one bit per transaction, decided by
#: the widest decision margin the ladder offers.  Under collapsing SNR
#: the adaptive session falls back to these (see docs/FAULTS.md).
ROBUST_SYMBOLS = (0b00, 0b11)

#: Bits carried per transaction in degraded two-level mode.
ROBUST_SYMBOL_BITS = 1


def robust_symbol_for_bit(bit: int) -> int:
    """The two-level symbol encoding one ``bit``."""
    if bit not in (0, 1):
        raise ConfigError(f"bit must be 0 or 1, got {bit}")
    return ROBUST_SYMBOLS[bit]


def bit_for_robust_symbol(symbol: int) -> int:
    """Inverse of :func:`robust_symbol_for_bit` (tolerant decode).

    A decoder trained only on the two robust levels can only emit those
    symbols; anything else means the calibrator was fit on the full
    ladder, which is a programming error worth surfacing.
    """
    try:
        return ROBUST_SYMBOLS.index(symbol)
    except ValueError:
        raise ConfigError(
            f"symbol {symbol} is not a robust level; expected one of "
            f"{ROBUST_SYMBOLS}") from None


@enum.unique
class ChannelLocation(enum.Enum):
    """Where sender and receiver execute relative to each other."""

    SAME_THREAD = "same-thread"
    ACROSS_SMT = "across-SMT"
    ACROSS_CORES = "across-cores"


#: Receiver probe class per location (Figure 3's receiver pseudo-code).
PROBE_CLASSES: Dict[ChannelLocation, IClass] = {
    ChannelLocation.SAME_THREAD: IClass.HEAVY_512,
    ChannelLocation.ACROSS_SMT: IClass.SCALAR_64,
    ChannelLocation.ACROSS_CORES: IClass.HEAVY_128,
}


def class_for_symbol(symbol: int) -> IClass:
    """The PHI class encoding two-bit ``symbol``."""
    try:
        return SYMBOL_CLASSES[symbol]
    except KeyError:
        raise ConfigError(f"symbol must be 0..3, got {symbol}") from None


def symbol_for_class(iclass: IClass) -> int:
    """Inverse of :func:`class_for_symbol`."""
    for symbol, candidate in SYMBOL_CLASSES.items():
        if candidate == iclass:
            return symbol
    raise ConfigError(f"{iclass.label} does not encode a symbol")


def narrow_symbol_classes(max_vector_bits: int) -> Dict[int, IClass]:
    """Symbol mapping restricted to a part without wide vectors.

    Parts without AVX-512 (Haswell, Coffee Lake) cannot execute the L4
    class; the paper's protocol degrades to the widest available ladder.
    We shift the ladder down one rung so four distinct levels remain:
    128b_Light < 128b_Heavy < 256b_Light < 256b_Heavy.
    """
    if max_vector_bits >= 512:
        return dict(SYMBOL_CLASSES)
    return {
        0b00: IClass.LIGHT_128,
        0b01: IClass.HEAVY_128,
        0b10: IClass.LIGHT_256,
        0b11: IClass.HEAVY_256,
    }


def probe_class_for(location: ChannelLocation, max_vector_bits: int) -> IClass:
    """Receiver probe class for a location, adapted to the vector width.

    The same-thread probe must be at least as intense as the highest
    sender level, so it shrinks with :func:`narrow_symbol_classes` on
    parts without AVX-512.
    """
    probe = PROBE_CLASSES[location]
    if probe.width_bits > max_vector_bits:
        probe = IClass.HEAVY_256
    return probe
