"""Baseline covert channels the paper compares against (Sections 3, 6.2).

* :class:`NetSpectreGadget` — same-thread, single-level AVX2 throttling,
  one bit per transaction (Schwarz et al., ESORICS 2019).
* :class:`TurboCC` — cross-core turbo-license frequency modulation
  (Kalmbach et al., 2020); tens of milliseconds per bit.
* :class:`DFSCovert` — governor-driven DVFS modulation (Alagappan et
  al., VLSI-SoC 2017); ~50 ms per bit.
* :class:`PowerT` — power-budget (RAPL-style) frequency modulation
  (Khatamifard et al., HPCA 2019); ~8 ms per bit.

Each baseline runs on the same simulated SoC as IChannels, so the
Figure 12 throughput ratios are measured, not transcribed.
"""

from repro.core.baselines.base import BaselineReport
from repro.core.baselines.netspectre import NetSpectreGadget
from repro.core.baselines.turbocc import TurboCC
from repro.core.baselines.dfscovert import DFSCovert
from repro.core.baselines.powert import PowerT

__all__ = [
    "BaselineReport",
    "NetSpectreGadget",
    "TurboCC",
    "DFSCovert",
    "PowerT",
]
