"""DFScovert: governor-driven frequency modulation (Alagappan et al. [5]).

A privileged Trojan toggles the cpufreq governor's requested frequency
between the package minimum and maximum; a spy process on another core
observes the shared clock domain by timing a scalar loop.  Linux
governor writes take effect only at the cpufreq sampling granularity
(tens of milliseconds), which is why DFScovert's reported throughput is
~20 bit/s — two orders of magnitude below IChannels.

Here the governor-write latency is modelled explicitly
(``governor_latency_ms``), and the rest of the pipeline (PLL relock,
V/F retargeting, receiver timing) runs through the simulator.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.core.baselines.base import BaselineReport
from repro.core.calibration import Calibrator
from repro.core.sync import SlotSchedule
from repro.errors import ConfigError, ProtocolError
from repro.isa.instructions import IClass
from repro.isa.workload import Loop
from repro.soc.system import System
from repro.units import ms_to_ns


class DFSCovert:
    """Cross-core channel over governor frequency writes."""

    def __init__(self, system: System, receiver_core: int = 1,
                 bit_period_ms: float = 50.0, governor_latency_ms: float = 10.0,
                 probe_iterations: int = 40, training_rounds: int = 3,
                 min_gap_tsc: float = 200.0) -> None:
        if system.config.n_cores < 2:
            raise ConfigError("DFScovert needs at least two cores")
        self.system = system
        self.receiver_thread = system.thread_on(receiver_core, 0)
        self.slot_ns = ms_to_ns(bit_period_ms)
        self.governor_latency_ns = ms_to_ns(governor_latency_ms)
        self.low_ghz = system.config.min_freq_ghz
        self.high_ghz = system.config.max_turbo_ghz
        self.probe_loop = Loop(IClass.SCALAR_64, probe_iterations)
        self.training_rounds = training_rounds
        self.min_gap_tsc = min_gap_tsc
        self._calibrator: Optional[Calibrator] = None

    def _sender_program(self, schedule: SlotSchedule,
                        bits: Sequence[int]) -> Generator:
        system = self.system
        for i, bit in enumerate(bits):
            yield system.until(schedule.slot_start(i))
            # The governor write lands after the cpufreq sampling delay.
            yield system.sleep(self.governor_latency_ns)
            target = self.low_ghz if bit else self.high_ghz
            system.pmu.set_requested_freq(target)
        # Leave the package at full speed after the last bit.
        yield system.until(schedule.slot_start(len(bits)))
        system.pmu.set_requested_freq(self.high_ghz)
        return None

    def _receiver_program(self, schedule: SlotSchedule, n_bits: int,
                          measurements: List[Optional[float]]) -> Generator:
        system = self.system
        for i in range(n_bits):
            yield system.until(schedule.slot_start(i) + 0.6 * self.slot_ns)
            result = yield system.execute(self.receiver_thread, self.probe_loop)
            measurements[i] = float(result.elapsed_tsc)
        return None

    def _run_bits(self, bits: Sequence[int]) -> List[float]:
        if not bits:
            raise ProtocolError("bit stream is empty")
        if any(bit not in (0, 1) for bit in bits):
            raise ProtocolError("bits must be 0 or 1")
        schedule = SlotSchedule(self.system.now + self.slot_ns, self.slot_ns)
        measurements: List[Optional[float]] = [None] * len(bits)
        self.system.spawn(self._sender_program(schedule, list(bits)),
                          name="dfscovert_sender")
        self.system.spawn(
            self._receiver_program(schedule, len(bits), measurements),
            name="dfscovert_receiver",
        )
        self.system.run_until(schedule.slot_start(len(bits)) + self.slot_ns)
        if any(m is None for m in measurements):
            raise ProtocolError("receiver missed some slots")
        return [float(m) for m in measurements]

    def calibrate(self) -> Calibrator:
        """Train the low/high frequency decoder."""
        training = [0, 1] * self.training_rounds
        readings = self._run_bits(training)
        self._calibrator = Calibrator(list(zip(training, readings)),
                                      min_gap=self.min_gap_tsc)
        return self._calibrator

    def transfer_bits(self, bits: Sequence[int]) -> BaselineReport:
        """Send a bit stream by toggling the requested frequency."""
        if self._calibrator is None:
            self.calibrate()
        assert self._calibrator is not None
        start = self.system.now
        readings = self._run_bits(bits)
        decoded = self._calibrator.decode_all(readings)
        return BaselineReport(
            name="DFScovert",
            bits_sent=list(bits),
            bits_received=decoded,
            start_ns=start,
            end_ns=self.system.now,
        )
