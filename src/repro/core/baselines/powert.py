"""POWERT: covert channel over power-budget management (Khatamifard et al. [59]).

POWERT signals through the processor's *power-limit* machinery: a sender
burning power pushes the package over its sustained budget, a RAPL-style
controller reacts by lowering the shared frequency, and a receiver times
a loop to observe it.  The control loop averages power over milliseconds
(PL1/EWMA), so the channel's bit period is ~8 ms (~122 bit/s reported),
still 24x slower than IChannels.

The budget controller is implemented here as a real simulation process
(EWMA of the package power, stepped frequency requests), so the
frequency dips the receiver decodes are emergent.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.core.baselines.base import BaselineReport
from repro.core.calibration import Calibrator
from repro.core.sync import SlotSchedule
from repro.errors import ConfigError, ProtocolError
from repro.isa.instructions import IClass
from repro.isa.workload import Loop
from repro.soc.system import System
from repro.units import ms_to_ns


class PowerBudgetController:
    """RAPL-style PL1 controller: EWMA power -> stepped frequency requests."""

    def __init__(self, system: System, pl1_watts: float,
                 control_interval_ms: float = 0.5, ewma_alpha: float = 0.25,
                 step_ghz: float = 0.2, low_band: float = 0.7) -> None:
        if pl1_watts <= 0:
            raise ConfigError(f"PL1 must be positive, got {pl1_watts}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError(f"EWMA alpha must be in (0, 1], got {ewma_alpha}")
        self.system = system
        self.pl1_watts = pl1_watts
        self.interval_ns = ms_to_ns(control_interval_ms)
        self.alpha = ewma_alpha
        self.step_ghz = step_ghz
        self.low_band = low_band
        self.ewma_watts = 0.0
        self.max_ghz = system.config.max_turbo_ghz
        self.min_ghz = system.config.min_freq_ghz
        self._target_ghz = system.pmu.requested_freq_ghz

    def process(self, horizon_ns: float) -> Generator:
        """The controller as a simulation program."""
        system = self.system
        while system.now < horizon_ns:
            yield system.sleep(self.interval_ns)
            power = system.power_at(system.now)
            self.ewma_watts = self.alpha * power + (1 - self.alpha) * self.ewma_watts
            if self.ewma_watts > self.pl1_watts and self._target_ghz > self.min_ghz:
                self._target_ghz = max(self.min_ghz,
                                       self._target_ghz - self.step_ghz)
                system.pmu.set_requested_freq(self._target_ghz)
            elif (self.ewma_watts < self.low_band * self.pl1_watts
                  and self._target_ghz < self.max_ghz):
                self._target_ghz = min(self.max_ghz,
                                       self._target_ghz + self.step_ghz)
                system.pmu.set_requested_freq(self._target_ghz)
        return None


class PowerT:
    """Cross-core channel over power-limit frequency throttling."""

    def __init__(self, system: System, sender_core: int = 0,
                 receiver_core: int = 1, bit_period_ms: float = 8.2,
                 pl1_watts: float = 7.0, probe_iterations: int = 40,
                 training_rounds: int = 3, min_gap_tsc: float = 200.0) -> None:
        if system.config.n_cores < 2:
            raise ConfigError("POWERT needs at least two cores")
        if sender_core == receiver_core:
            raise ConfigError("sender and receiver must use different cores")
        self.system = system
        self.sender_thread = system.thread_on(sender_core, 0)
        self.receiver_thread = system.thread_on(receiver_core, 0)
        self.slot_ns = ms_to_ns(bit_period_ms)
        self.controller = PowerBudgetController(system, pl1_watts)
        self.probe_loop = Loop(IClass.SCALAR_64, probe_iterations)
        self.training_rounds = training_rounds
        self.min_gap_tsc = min_gap_tsc
        self._calibrator: Optional[Calibrator] = None
        self._controller_running_until = 0.0
        burst_us = 300.0
        self.burn_loop = Loop(
            IClass.HEAVY_256,
            max(1, int(burst_us * system.config.base_freq_ghz * 1_000 / 300)),
        )

    def _ensure_controller(self, horizon_ns: float) -> None:
        if horizon_ns <= self._controller_running_until:
            return
        self.system.spawn(self.controller.process(horizon_ns),
                          name="rapl_controller")
        self._controller_running_until = horizon_ns

    def _sender_program(self, schedule: SlotSchedule,
                        bits: Sequence[int]) -> Generator:
        system = self.system
        for i, bit in enumerate(bits):
            yield system.until(schedule.slot_start(i))
            if not bit:
                continue
            # Burn power for 70% of the slot so the EWMA trips PL1.
            active_until = schedule.slot_start(i) + 0.7 * self.slot_ns
            while system.now < active_until:
                yield system.execute(self.sender_thread, self.burn_loop)
        return None

    def _receiver_program(self, schedule: SlotSchedule, n_bits: int,
                          measurements: List[Optional[float]]) -> Generator:
        system = self.system
        for i in range(n_bits):
            yield system.until(schedule.slot_start(i) + 0.6 * self.slot_ns)
            result = yield system.execute(self.receiver_thread, self.probe_loop)
            measurements[i] = float(result.elapsed_tsc)
        return None

    def _run_bits(self, bits: Sequence[int]) -> List[float]:
        if not bits:
            raise ProtocolError("bit stream is empty")
        if any(bit not in (0, 1) for bit in bits):
            raise ProtocolError("bits must be 0 or 1")
        schedule = SlotSchedule(self.system.now + self.slot_ns, self.slot_ns)
        end = schedule.slot_start(len(bits)) + self.slot_ns
        self._ensure_controller(end)
        measurements: List[Optional[float]] = [None] * len(bits)
        self.system.spawn(self._sender_program(schedule, list(bits)),
                          name="powert_sender")
        self.system.spawn(
            self._receiver_program(schedule, len(bits), measurements),
            name="powert_receiver",
        )
        self.system.run_until(end)
        if any(m is None for m in measurements):
            raise ProtocolError("receiver missed some slots")
        return [float(m) for m in measurements]

    def calibrate(self) -> Calibrator:
        """Train the budget-throttled/unthrottled decoder."""
        training = [0, 1] * self.training_rounds
        readings = self._run_bits(training)
        self._calibrator = Calibrator(list(zip(training, readings)),
                                      min_gap=self.min_gap_tsc)
        return self._calibrator

    def transfer_bits(self, bits: Sequence[int]) -> BaselineReport:
        """Send a bit stream by modulating the package power budget."""
        if self._calibrator is None:
            self.calibrate()
        assert self._calibrator is not None
        start = self.system.now
        readings = self._run_bits(bits)
        decoded = self._calibrator.decode_all(readings)
        return BaselineReport(
            name="POWERT",
            bits_sent=list(bits),
            bits_received=decoded,
            start_ns=start,
            end_ns=self.system.now,
        )
