"""Shared report type for baseline covert channels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.units import bits_per_second


@dataclass
class BaselineReport:
    """Outcome of a baseline channel transfer (one bit per transaction)."""

    name: str
    bits_sent: List[int]
    bits_received: List[int]
    start_ns: float
    end_ns: float

    @property
    def bits(self) -> int:
        """Number of payload bits transferred."""
        return len(self.bits_sent)

    @property
    def bit_errors(self) -> int:
        """Wrong bits between sent and received streams."""
        return sum(1 for a, b in zip(self.bits_sent, self.bits_received) if a != b)

    @property
    def ber(self) -> float:
        """Bit error rate."""
        if not self.bits_sent:
            return 0.0
        return self.bit_errors / len(self.bits_sent)

    @property
    def elapsed_ns(self) -> float:
        """Wall time of the transfer."""
        return self.end_ns - self.start_ns

    @property
    def throughput_bps(self) -> float:
        """Realised throughput in bit/s."""
        return bits_per_second(self.bits, self.elapsed_ns)
