"""TurboCC: cross-core covert channel over turbo frequency changes [57].

Kalmbach et al. signal by executing AVX2 on the sender core while the
package runs at turbo frequency: the turbo license (LVL1) caps the
all-core frequency, which the receiver detects by timing a scalar loop
on *its* core (the clock domain is shared).  The paper's critique,
reproduced here:

* the effect needs **turbo** operation — at or below base frequency the
  license never binds and the channel is silent (tested in
  ``tests/test_baselines.py``);
* frequency modulation is *slow*: the license and turbo-budget machinery
  reacts over many milliseconds, so TurboCC's practical bit period is
  ~16 ms (61 bit/s reported) versus IChannels' ~0.7 ms transactions.

The simulator's license mechanics respond faster than real turbo-budget
firmware, so the bit period here is an input parameter documented from
the TurboCC paper rather than an emergent quantity; the *mechanism*
(license-capped shared clock observed across cores) is fully modelled.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.core.baselines.base import BaselineReport
from repro.core.calibration import Calibrator
from repro.core.sync import SlotSchedule
from repro.errors import ConfigError, ProtocolError
from repro.isa.instructions import IClass
from repro.isa.workload import Loop
from repro.soc.system import System
from repro.units import ms_to_ns


class TurboCC:
    """Cross-core frequency-modulation channel at turbo frequencies."""

    def __init__(self, system: System, sender_core: int = 0,
                 receiver_core: int = 1, bit_period_ms: float = 16.4,
                 duty: float = 0.6, probe_iterations: int = 40,
                 training_rounds: int = 3, min_gap_tsc: float = 200.0) -> None:
        if system.config.n_cores < 2:
            raise ConfigError("TurboCC needs at least two cores")
        if sender_core == receiver_core:
            raise ConfigError("sender and receiver must use different cores")
        if not 0.0 < duty < 1.0:
            raise ConfigError(f"duty must be in (0, 1), got {duty}")
        self.system = system
        self.sender_thread = system.thread_on(sender_core, 0)
        self.receiver_thread = system.thread_on(receiver_core, 0)
        self.slot_ns = ms_to_ns(bit_period_ms)
        self.duty = duty
        self.probe_loop = Loop(IClass.SCALAR_64, probe_iterations)
        self.training_rounds = training_rounds
        self.min_gap_tsc = min_gap_tsc
        self._calibrator: Optional[Calibrator] = None
        burst_us = 200.0
        self.burst_loop = Loop(
            IClass.HEAVY_256,
            max(1, int(burst_us * system.config.base_freq_ghz * 1_000
                       / Loop(IClass.HEAVY_256, 1).block_instructions)),
        )

    def _sender_program(self, schedule: SlotSchedule,
                        bits: Sequence[int]) -> Generator:
        system = self.system
        for i, bit in enumerate(bits):
            yield system.until(schedule.slot_start(i))
            if not bit:
                continue
            # Keep the LVL1 license engaged for the duty window by
            # back-to-back AVX2 bursts; then go quiet so the license
            # (and the frequency) recovers before the next slot.
            active_until = schedule.slot_start(i) + self.duty * self.slot_ns
            while system.now < active_until:
                yield system.execute(self.sender_thread, self.burst_loop)
        return None

    def _receiver_program(self, schedule: SlotSchedule, n_bits: int,
                          measurements: List[Optional[float]]) -> Generator:
        system = self.system
        for i in range(n_bits):
            # Probe mid-way through the duty window, when the license cap
            # is stable.
            yield system.until(schedule.slot_start(i) + 0.5 * self.duty * self.slot_ns)
            result = yield system.execute(self.receiver_thread, self.probe_loop)
            measurements[i] = float(result.elapsed_tsc)
        return None

    def _run_bits(self, bits: Sequence[int]) -> List[float]:
        if not bits:
            raise ProtocolError("bit stream is empty")
        if any(bit not in (0, 1) for bit in bits):
            raise ProtocolError("bits must be 0 or 1")
        schedule = SlotSchedule(self.system.now + self.slot_ns, self.slot_ns)
        measurements: List[Optional[float]] = [None] * len(bits)
        self.system.spawn(self._sender_program(schedule, list(bits)),
                          name="turbocc_sender")
        self.system.spawn(
            self._receiver_program(schedule, len(bits), measurements),
            name="turbocc_receiver",
        )
        self.system.run_until(schedule.slot_start(len(bits)) + self.slot_ns)
        if any(m is None for m in measurements):
            raise ProtocolError("receiver missed some slots")
        return [float(m) for m in measurements]

    def calibrate(self) -> Calibrator:
        """Train the throttled/unthrottled frequency decoder."""
        training = [0, 1] * self.training_rounds
        readings = self._run_bits(training)
        self._calibrator = Calibrator(list(zip(training, readings)),
                                      min_gap=self.min_gap_tsc)
        return self._calibrator

    def transfer_bits(self, bits: Sequence[int]) -> BaselineReport:
        """Send a bit stream across cores via turbo-license modulation."""
        if self._calibrator is None:
            self.calibrate()
        assert self._calibrator is not None
        start = self.system.now
        readings = self._run_bits(bits)
        decoded = self._calibrator.decode_all(readings)
        return BaselineReport(
            name="TurboCC",
            bits_sent=list(bits),
            bits_received=decoded,
            start_ns=start,
            end_ns=self.system.now,
        )
