"""NetSpectre's AVX covert-channel gadget (Schwarz et al. [91]).

The gadget encodes **one bit per transaction** in whether an AVX2
instruction was recently executed on the same hardware thread: for a 1
the leak gadget runs an AVX2 loop, for a 0 it stays idle; the receiver
then times its own AVX2 instruction — fast when the rail is already
ramped (bit 1), slow when the probe pays the full throttling period
(bit 0).

The paper's comparison (Figure 12a, Section 6.2) is against this gadget,
not the end-to-end network attack.  Its limitations versus
IccThreadCovert, demonstrated by running both on the same simulator:

* single-level signalling — one bit per transaction where the
  multi-level TP carries two, hence half the throughput;
* same-hardware-thread only.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.core.baselines.base import BaselineReport
from repro.core.calibration import Calibrator
from repro.core.sync import SlotSchedule
from repro.errors import ProtocolError
from repro.isa.instructions import IClass
from repro.isa.workload import Loop
from repro.soc.system import System
from repro.units import us_to_ns


class NetSpectreGadget:
    """Same-thread, single-level (1 bit/transaction) covert channel."""

    def __init__(self, system: System, core: int = 0, slot_us: float = 750.0,
                 send_iterations: int = 30, probe_iterations: int = 40,
                 training_rounds: int = 4, min_gap_tsc: float = 200.0) -> None:
        self.system = system
        self.thread_id = system.thread_on(core, 0)
        self.slot_ns = us_to_ns(slot_us)
        self.send_loop = Loop(IClass.HEAVY_256, send_iterations)
        self.probe_loop = Loop(IClass.HEAVY_256, probe_iterations)
        self.training_rounds = training_rounds
        self.min_gap_tsc = min_gap_tsc
        self._calibrator: Optional[Calibrator] = None

    def _program(self, schedule: SlotSchedule, bits: Sequence[int],
                 measurements: List[Optional[float]]) -> Generator:
        system = self.system
        for i, bit in enumerate(bits):
            yield system.until(schedule.slot_start(i))
            if bit:
                # Leak gadget executed: warms the rail to the AVX2 level.
                yield system.execute(self.thread_id, self.send_loop)
            result = yield system.execute(self.thread_id, self.probe_loop)
            measurements[i] = float(result.elapsed_tsc)
        return None

    def _run_bits(self, bits: Sequence[int]) -> List[float]:
        if not bits:
            raise ProtocolError("bit stream is empty")
        if any(bit not in (0, 1) for bit in bits):
            raise ProtocolError("bits must be 0 or 1")
        schedule = SlotSchedule(self.system.now + self.slot_ns, self.slot_ns)
        measurements: List[Optional[float]] = [None] * len(bits)
        self.system.spawn(self._program(schedule, list(bits), measurements),
                          name="netspectre_gadget")
        self.system.run_until(schedule.slot_start(len(bits)) + self.slot_ns)
        if any(m is None for m in measurements):
            raise ProtocolError("gadget produced no measurement for some slots")
        return [float(m) for m in measurements]

    def calibrate(self) -> Calibrator:
        """Train the two-level (throttled / not throttled) decoder."""
        training = [0, 1] * self.training_rounds
        readings = self._run_bits(training)
        self._calibrator = Calibrator(list(zip(training, readings)),
                                      min_gap=self.min_gap_tsc)
        return self._calibrator

    def transfer_bits(self, bits: Sequence[int]) -> BaselineReport:
        """Send a bit stream through the gadget."""
        if self._calibrator is None:
            self.calibrate()
        assert self._calibrator is not None
        start = self.system.now
        readings = self._run_bits(bits)
        decoded = self._calibrator.decode_all(readings)
        return BaselineReport(
            name="NetSpectre",
            bits_sent=list(bits),
            bits_received=decoded,
            start_ns=start,
            end_ns=self.system.now,
        )
