"""Base-5 payload coding for the five-level channel.

The paper measures *at least five* distinct throttling levels (Figure
10) but its protocol uses only four (two bits).  The fifth symbol is
free: a slot in which the sender executes **no PHI at all** is perfectly
distinguishable on the same-thread channel, because the receiver's probe
then pays the *full* ramp.  Five symbols carry ``log2(5) = 2.32`` bits
per transaction — a 16 % rate gain over the paper's protocol.

Packing bytes into base-5 digits is done with big-integer arithmetic
over fixed-size blocks, most-significant digit first, with the digit
count derived from the block's byte length (so no explicit length
header is needed).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import ProtocolError

BASE = 5

#: Bytes per coding block; 7 bytes (56 bits) fit in 25 digits
#: (5^25 > 2^56) with only ~4 % padding overhead.
BLOCK_BYTES = 7

#: Digits per full block.
BLOCK_DIGITS = math.ceil(BLOCK_BYTES * 8 / math.log2(BASE))


def digits_for_bytes(n_bytes: int) -> int:
    """Digits needed to encode ``n_bytes`` (exact, per block shape)."""
    if n_bytes < 0:
        raise ProtocolError(f"byte count must be >= 0, got {n_bytes}")
    full, rest = divmod(n_bytes, BLOCK_BYTES)
    digits = full * BLOCK_DIGITS
    if rest:
        digits += math.ceil(rest * 8 / math.log2(BASE))
    return digits


def _encode_block(chunk: bytes) -> List[int]:
    n_digits = math.ceil(len(chunk) * 8 / math.log2(BASE))
    value = int.from_bytes(chunk, "big")
    digits = [0] * n_digits
    for i in range(n_digits - 1, -1, -1):
        value, digit = divmod(value, BASE)
        digits[i] = digit
    if value:
        raise ProtocolError("block does not fit its digit budget")
    return digits


def _decode_block(digits: Sequence[int], n_bytes: int) -> bytes:
    value = 0
    for digit in digits:
        if not 0 <= digit < BASE:
            raise ProtocolError(f"digit out of range: {digit}")
        value = value * BASE + digit
    limit = 1 << (n_bytes * 8)
    # A corrupted top digit can overflow the byte range; clamp instead
    # of crashing so the CRC/BER layers above see a wrong-but-decodable
    # payload.
    value %= limit
    return value.to_bytes(n_bytes, "big")


def bytes_to_digits(data: bytes) -> List[int]:
    """Encode a payload into base-5 digits (blockwise, MSD first)."""
    if not data:
        raise ProtocolError("payload is empty")
    digits: List[int] = []
    for i in range(0, len(data), BLOCK_BYTES):
        digits.extend(_encode_block(data[i:i + BLOCK_BYTES]))
    return digits


def digits_to_bytes(digits: Sequence[int], n_bytes: int) -> bytes:
    """Inverse of :func:`bytes_to_digits` for a known payload length."""
    if n_bytes <= 0:
        raise ProtocolError(f"byte count must be positive, got {n_bytes}")
    if len(digits) != digits_for_bytes(n_bytes):
        raise ProtocolError(
            f"{len(digits)} digits cannot encode {n_bytes} bytes "
            f"(expected {digits_for_bytes(n_bytes)})"
        )
    out = bytearray()
    cursor = 0
    remaining = n_bytes
    while remaining > 0:
        chunk_bytes = min(BLOCK_BYTES, remaining)
        chunk_digits = math.ceil(chunk_bytes * 8 / math.log2(BASE))
        out.extend(_decode_block(digits[cursor:cursor + chunk_digits],
                                 chunk_bytes))
        cursor += chunk_digits
        remaining -= chunk_bytes
    return bytes(out)


def bits_per_symbol() -> float:
    """Information per five-level transaction."""
    return math.log2(BASE)
