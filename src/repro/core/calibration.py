"""Receiver calibration: learning the TP decision thresholds.

The receiver decodes each transaction by comparing its measured probe
time against per-level thresholds (Figure 3's nested ``if TP in
RANGE_Lx`` ladder; Figure 13 shows the four level clusters with
>2 K-cycle gaps).  In the paper the ranges are learnt by sending known
training symbols first; :class:`Calibrator` does the same — it takes
(symbol, measurement) training pairs, fits per-symbol clusters, and
places decision thresholds at the midpoints between adjacent cluster
means.

The calibrator is agnostic to the *direction* of the mapping: on the
same-thread channel a higher sender level yields a *shorter* probe time,
across SMT/cores a *longer* one.  Sorting clusters by mean handles both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError


@dataclass(frozen=True)
class LevelStats:
    """Training statistics of one symbol's measurement cluster.

    The ``center`` is the cluster *median*: a single interrupt landing in
    one training transaction inflates that sample by microseconds, and a
    median survives such outliers where a mean does not (the receiver-
    side averaging strategy of Section 6.3).
    """

    symbol: int
    count: int
    mean: float
    center: float
    std: float
    minimum: float
    maximum: float


class Calibrator:
    """Threshold decoder fit on labelled training measurements."""

    def __init__(self, training: Sequence[Tuple[int, float]],
                 min_gap: float = 0.0) -> None:
        """Fit thresholds from (symbol, measurement) pairs.

        Parameters
        ----------
        training:
            Labelled training measurements; every symbol that should be
            decodable must appear at least once.
        min_gap:
            Minimum required distance between adjacent cluster means;
            a smaller separation raises :class:`CalibrationError`
            (channel unusable, e.g. under a mitigation).
        """
        if not training:
            raise CalibrationError("no training measurements")
        by_symbol: Dict[int, List[float]] = {}
        for symbol, value in training:
            by_symbol.setdefault(symbol, []).append(float(value))
        self._stats: Dict[int, LevelStats] = {}
        for symbol, values in by_symbol.items():
            arr = np.asarray(values)
            self._stats[symbol] = LevelStats(
                symbol=symbol,
                count=len(arr),
                mean=float(np.mean(arr)),
                center=float(np.median(arr)),
                std=float(np.std(arr)),
                minimum=float(np.min(arr)),
                maximum=float(np.max(arr)),
            )
        # Order clusters by center; thresholds are midpoints of neighbours.
        self._ordered = sorted(self._stats.values(), key=lambda s: s.center)
        for a, b in zip(self._ordered, self._ordered[1:]):
            if b.center - a.center < min_gap:
                raise CalibrationError(
                    f"levels {a.symbol} and {b.symbol} separated by only "
                    f"{b.center - a.center:.1f} (< {min_gap}); channel unusable"
                )
        self._thresholds = [
            (a.center + b.center) / 2.0
            for a, b in zip(self._ordered, self._ordered[1:])
        ]

    @property
    def stats(self) -> Dict[int, LevelStats]:
        """Per-symbol training statistics."""
        return dict(self._stats)

    @property
    def thresholds(self) -> List[float]:
        """Decision thresholds between mean-ordered clusters."""
        return list(self._thresholds)

    def separations(self) -> List[Tuple[int, int, float]]:
        """(symbol_a, symbol_b, gap) between adjacent cluster extremes.

        The gap is ``min(b) - max(a)`` for mean-adjacent clusters;
        positive everywhere means the training clusters never overlap —
        the Figure 13 condition for a near-zero error rate.
        """
        return [
            (a.symbol, b.symbol, b.minimum - a.maximum)
            for a, b in zip(self._ordered, self._ordered[1:])
        ]

    def decode(self, measurement: float) -> int:
        """Symbol whose cluster the measurement falls into."""
        idx = 0
        for threshold in self._thresholds:
            if measurement >= threshold:
                idx += 1
            else:
                break
        return self._ordered[idx].symbol

    def decode_all(self, measurements: Sequence[float]) -> List[int]:
        """Vector :meth:`decode`."""
        return [self.decode(m) for m in measurements]

    # -- decision-directed tracking ---------------------------------------

    def track(self, symbol: int, measurement: float,
              alpha: float = 0.15) -> None:
        """Nudge ``symbol``'s cluster center toward a decoded reading.

        Decision-directed adaptation: after decoding a symbol, fold the
        measurement into its cluster with EWMA weight ``alpha`` and
        refresh the thresholds.  Keeps the decoder locked when the
        operating point drifts slowly (e.g. a governor frequency change
        rescales every throttling period); a reading further than the
        distance to the nearest neighbouring cluster is ignored as an
        outlier rather than dragged in.
        """
        if not 0.0 < alpha <= 1.0:
            raise CalibrationError(f"alpha must be in (0, 1], got {alpha}")
        stats = self._stats.get(symbol)
        if stats is None:
            raise CalibrationError(f"symbol {symbol} was never trained")
        neighbour_gap = min(
            (abs(other.center - stats.center)
             for other in self._stats.values() if other.symbol != symbol),
            default=float("inf"),
        )
        if abs(measurement - stats.center) > neighbour_gap:
            return  # outlier: do not let one interrupt drag the cluster
        new_center = (1.0 - alpha) * stats.center + alpha * measurement
        self._stats[symbol] = LevelStats(
            symbol=stats.symbol,
            count=stats.count + 1,
            mean=stats.mean,
            center=new_center,
            std=stats.std,
            minimum=min(stats.minimum, measurement),
            maximum=max(stats.maximum, measurement),
        )
        self._ordered = sorted(self._stats.values(), key=lambda s: s.center)
        self._thresholds = [
            (a.center + b.center) / 2.0
            for a, b in zip(self._ordered, self._ordered[1:])
        ]

    def decode_all_tracking(self, measurements: Sequence[float],
                            alpha: float = 0.15) -> List[int]:
        """Decode a stream while adapting cluster centers as it goes."""
        decoded = []
        for measurement in measurements:
            symbol = self.decode(measurement)
            decoded.append(symbol)
            self.track(symbol, measurement, alpha)
        return decoded
