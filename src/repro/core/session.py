"""Reliable sessions over an unreliable covert channel.

Section 6.3 sketches three noise strategies — averaging/retransmission,
error-correcting codes, and transmitting during quiet periods.
:class:`CovertSession` packages the first two into a reusable transport:

* payloads are split into fixed-size **frames** with a sequence number
  and a CRC-8 trailer;
* each frame is optionally protected with forward error correction
  (extended Hamming or a repetition code) behind a block interleaver, so
  a two-bit symbol error cannot defeat a SECDED block;
* frames failing the CRC after decoding are **retransmitted** (stop-and-
  wait ARQ) up to a retry budget; in this covert setting the "ACK" is
  implicit — the simulation executes both sides, and a real deployment
  would run the paper's reverse channel the same way.

With an :class:`AdaptiveConfig` the session additionally *adapts* to a
degrading substrate (the fault models of :mod:`repro.faults`):

* **drift re-calibration** — when the running raw BER over a sliding
  window of attempts exceeds a bound, re-run threshold calibration (a
  drifting receiver clock or operating point makes thresholds stale, and
  retraining fixes exactly that);
* **exponential-backoff retransmission** — wait out transient
  interference (e.g. a neighbour's PHI bursts) between retries instead
  of hammering a disturbed rail;
* **graceful degradation** — when re-calibration stops helping (or the
  four-level ladder no longer calibrates at all), fall back to two-level
  signalling (:meth:`~repro.core.channel.CovertChannel.transfer_robust`)
  and the stronger configured FEC: half the rate, maximal decision
  margins.

The state machine lives in :meth:`CovertSession.send` and is documented
(with a diagram) in ``docs/FAULTS.md``.  The session works over any
:class:`~repro.core.channel.CovertChannel`.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.core.channel import CovertChannel
from repro.core.ecc import CRC8, Hamming74, RepetitionCode, deinterleave, interleave
from repro.core.encoding import bits_to_bytes, bytes_to_bits
from repro.core.levels import ROBUST_SYMBOLS
from repro.errors import CalibrationError, ProtocolError
from repro.obs.tracer import current as _obs
from repro.units import bits_per_second, us_to_ns


@enum.unique
class FecScheme(enum.Enum):
    """Forward-error-correction options for session frames."""

    NONE = "none"
    HAMMING = "hamming"          # extended Hamming(8,4): rate 1/2, SECDED
    REPETITION3 = "repetition3"  # rate 1/3, majority vote


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive (fault-surviving) session behaviour.

    Parameters
    ----------
    ber_window:
        Sliding window of recent transfer attempts whose mean raw BER
        drives the adaptation decisions.
    ber_bound:
        Windowed mean raw BER above which the session intervenes —
        re-calibrating while budget remains, degrading afterwards.
    recalibration_budget:
        Re-calibrations allowed per :meth:`CovertSession.send` before
        the session concludes retraining no longer helps and degrades.
    backoff_base_us / backoff_max_us:
        Exponential backoff between retransmissions of one frame: the
        k-th retry waits ``min(backoff_max_us, backoff_base_us *
        2**(k-1))`` microseconds, letting transient interference pass.
    degraded_fec:
        FEC used after degrading to two-level signalling (the default
        rate-1/3 repetition code trades more rate for margin).
    """

    ber_window: int = 6
    ber_bound: float = 0.08
    recalibration_budget: int = 2
    backoff_base_us: float = 1500.0
    backoff_max_us: float = 25_000.0
    degraded_fec: "FecScheme" = FecScheme.REPETITION3

    def __post_init__(self) -> None:
        if self.ber_window < 1:
            raise ProtocolError("BER window must be >= 1")
        if not 0.0 < self.ber_bound < 1.0:
            raise ProtocolError(f"BER bound must be in (0, 1), got {self.ber_bound}")
        if self.recalibration_budget < 0:
            raise ProtocolError("recalibration budget must be >= 0")
        if self.backoff_base_us < 0 or self.backoff_max_us < self.backoff_base_us:
            raise ProtocolError("backoff must satisfy 0 <= base <= max")


@dataclass(frozen=True)
class SessionConfig:
    """Transport parameters.

    Parameters
    ----------
    frame_bytes:
        Payload bytes per frame (excluding the 2-byte header and the
        CRC trailer).  Smaller frames lose less per retransmission.
    fec:
        Forward error correction applied to each framed payload.
    max_retries:
        Retransmissions allowed per frame before the session fails.
    """

    frame_bytes: int = 8
    fec: FecScheme = FecScheme.HAMMING
    max_retries: int = 4
    #: Section 6.3's third strategy: sense the channel before each frame
    #: and defer while another application's PHIs are perturbing it.
    wait_for_quiet: bool = False
    #: Sense attempts per frame before transmitting anyway.
    quiet_patience: int = 8
    #: Adaptive behaviour (re-calibration, backoff, degradation); None
    #: keeps the session a plain stop-and-wait transport.
    adaptive: Optional[AdaptiveConfig] = None

    def __post_init__(self) -> None:
        if not 1 <= self.frame_bytes <= 250:
            raise ProtocolError(
                f"frame payload must be 1..250 bytes, got {self.frame_bytes}"
            )
        if self.max_retries < 0:
            raise ProtocolError("retry budget must be >= 0")
        if self.quiet_patience < 1:
            raise ProtocolError("quiet patience must be >= 1")

    @property
    def code_rate(self) -> float:
        """Information bits per channel bit of the chosen FEC."""
        if self.fec == FecScheme.HAMMING:
            return 0.5
        if self.fec == FecScheme.REPETITION3:
            return 1.0 / 3.0
        return 1.0


@dataclass
class FrameLog:
    """What happened to one frame."""

    sequence: int
    attempts: int
    delivered: bool
    raw_ber_per_attempt: List[float] = field(default_factory=list)
    quiet_senses: int = 0
    #: Best-effort payload recovered on the last attempt (even when the
    #: CRC failed); feeds :attr:`SessionReport.residual_ber`.
    last_recovered: Optional[bytes] = None
    #: True when at least one attempt of this frame used degraded
    #: two-level signalling.
    degraded: bool = False


@dataclass
class SessionReport:
    """Outcome of one session send."""

    payload: bytes
    delivered: Optional[bytes]
    frames: List[FrameLog]
    start_ns: float
    end_ns: float
    #: Best-effort reassembly: delivered chunks where frames succeeded,
    #: the last recovered (CRC-failing) bytes where they did not.
    best_effort: bytes = b""
    #: Threshold re-calibrations the adaptive machinery ran.
    recalibrations: int = 0
    #: True when the session ended in degraded two-level signalling.
    degraded: bool = False
    #: Simulated time spent in exponential backoff between retries.
    backoff_ns: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the payload arrived intact."""
        return self.delivered == self.payload

    @property
    def residual_ber(self) -> float:
        """Payload bit errors remaining after every mitigation.

        Zero for an intact delivery; otherwise the Hamming distance
        between the payload and the best-effort reassembly, over the
        payload bits — the honest "what the receiver ends up with"
        number the resilience experiment compares across sessions.
        """
        total = len(self.payload) * 8
        if total == 0 or self.ok:
            return 0.0
        wrong = 0
        for i, byte in enumerate(self.payload):
            other = self.best_effort[i] if i < len(self.best_effort) else None
            if other is None:
                wrong += 8
            else:
                wrong += bin(byte ^ other).count("1")
        return wrong / total

    @property
    def total_attempts(self) -> int:
        """Channel transfers used, including retransmissions."""
        return sum(f.attempts for f in self.frames)

    @property
    def retransmissions(self) -> int:
        """Extra transfers beyond one per frame."""
        return self.total_attempts - len(self.frames)

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per second of wall time."""
        if not self.ok or self.end_ns <= self.start_ns:
            return 0.0
        return bits_per_second(len(self.payload) * 8,
                               self.end_ns - self.start_ns)


class CovertSession:
    """Framed, FEC-protected, retransmitting transport over a channel."""

    def __init__(self, channel: CovertChannel,
                 config: SessionConfig = SessionConfig()) -> None:
        self.channel = channel
        self.config = config
        self._crc = CRC8()
        self._hamming: Optional[Hamming74] = None
        self._repetition: Optional[RepetitionCode] = None
        self._set_fec(config.fec)
        self._degraded = False
        self._recalibrations = 0

    def _set_fec(self, scheme: FecScheme) -> None:
        """Select the active FEC (degradation switches it mid-session)."""
        self._fec = scheme
        self._hamming = (Hamming74(extended=True)
                         if scheme == FecScheme.HAMMING else None)
        self._repetition = (RepetitionCode(3)
                            if scheme == FecScheme.REPETITION3 else None)

    # -- framing -----------------------------------------------------------------

    def _frame(self, sequence: int, chunk: bytes) -> bytes:
        """[length][sequence][payload][crc] over everything before it."""
        header = bytes([len(chunk), sequence & 0xFF])
        return self._crc.append(header + chunk)

    def _parse_frame(self, framed: bytes) -> Optional[Tuple[int, bytes]]:
        """(sequence, payload) if the CRC and length check out."""
        if len(framed) < 3 or not self._crc.verify(framed):
            return None
        length, sequence = framed[0], framed[1]
        payload = framed[2:-1]
        if len(payload) != length:
            return None
        return sequence, payload

    # -- FEC ----------------------------------------------------------------------

    def _protect(self, framed: bytes) -> bytes:
        bits = bytes_to_bits(framed)
        if self._hamming is not None:
            coded = self._hamming.encode(bits)
            coded = interleave(coded, depth=self._hamming.block_bits)
            return bits_to_bytes(coded)
        if self._repetition is not None:
            coded = self._repetition.encode(bits)
            pad = (-len(coded)) % 8
            return bits_to_bytes(coded + [0] * pad)
        return framed

    def _unprotect(self, wire: bytes, framed_len: int) -> bytes:
        bits = bytes_to_bits(wire)
        if self._hamming is not None:
            coded_len = framed_len * 8 * 2
            coded = deinterleave(bits[:coded_len],
                                 depth=self._hamming.block_bits)
            return bits_to_bytes(self._hamming.decode(coded))
        if self._repetition is not None:
            coded_len = framed_len * 8 * 3
            return bits_to_bytes(self._repetition.decode(bits[:coded_len]))
        return wire[:framed_len]

    # -- transport ------------------------------------------------------------------

    def _chunks(self, payload: bytes) -> List[bytes]:
        size = self.config.frame_bytes
        return [payload[i:i + size] for i in range(0, len(payload), size)]

    # -- quiet-period sensing --------------------------------------------------------

    def channel_is_quiet(self) -> bool:
        """Probe the channel once and judge whether it is undisturbed.

        Sends a single known training symbol and checks that the reading
        lands where calibration put that level.  A concurrent
        application's PHI activity — a foreign transition in flight, or
        a foreign grant masking the probe — pushes the reading out of
        its cluster.  Costs one slot.
        """
        if self.channel.calibrator is None:
            self.channel.calibrate()
        calibrator = self.channel.calibrator
        assert calibrator is not None
        reading = self.channel.run_symbols([0])[0]
        center = calibrator.stats[0].center
        thresholds = calibrator.thresholds
        if thresholds:
            nearest = min(abs(t - center) for t in thresholds)
        else:
            nearest = abs(center) or 1.0
        return abs(reading - center) <= 0.9 * nearest

    def _await_quiet(self) -> int:
        """Sense until quiet (or patience runs out); returns senses used."""
        senses = 0
        for _ in range(self.config.quiet_patience):
            senses += 1
            if self.channel_is_quiet():
                break
        return senses

    # -- adaptive interventions ------------------------------------------------------

    def _degrade(self, reason: str) -> None:
        """Fall back to two-level signalling and the degraded FEC."""
        adaptive = self.config.adaptive
        assert adaptive is not None
        self._degraded = True
        self._set_fec(adaptive.degraded_fec)
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("session.degradations").inc()
            tracer.instant("session.degrade", "session",
                           self.channel.system.now, track="session",
                           args={"reason": reason})

    def _recalibrate(self) -> None:
        """Re-run threshold calibration in the current signalling mode."""
        try:
            if self._degraded:
                self.channel.calibrate(symbols=ROBUST_SYMBOLS)
            else:
                self.channel.calibrate()
        except CalibrationError:
            # The ladder no longer calibrates at all: the strongest
            # remaining move is two-level signalling (whose wider gaps
            # may still clear min_gap); a second failure there leaves
            # retransmission as the only defence.
            if not self._degraded:
                self._degrade("calibration failed")
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("session.recalibrations").inc()

    def _adapt(self, window: "Deque[float]", raw_ber: float,
               calibration_failed: bool) -> None:
        """One post-attempt step of the adaptive state machine."""
        adaptive = self.config.adaptive
        assert adaptive is not None
        if calibration_failed and not self._degraded:
            self._degrade("calibration failed")
            window.clear()
            return
        window.append(raw_ber)
        mean = sum(window) / len(window)
        if mean <= adaptive.ber_bound:
            return
        if self._recalibrations < adaptive.recalibration_budget:
            self._recalibrations += 1
            window.clear()
            self._recalibrate()
        elif not self._degraded:
            self._degrade(f"windowed BER {mean:.3f} after "
                          f"{self._recalibrations} recalibrations")
            window.clear()

    def _backoff(self, attempt: int) -> float:
        """Exponential wait before retry ``attempt`` (1-based); ns waited."""
        adaptive = self.config.adaptive
        if adaptive is None or attempt < 1 or adaptive.backoff_base_us <= 0:
            return 0.0
        wait_ns = us_to_ns(min(adaptive.backoff_max_us,
                               adaptive.backoff_base_us * (2 ** (attempt - 1))))
        system = self.channel.system
        system.run_until(system.now + wait_ns)
        return wait_ns

    def send(self, payload: bytes) -> SessionReport:
        """Deliver ``payload`` reliably; returns the session record."""
        if not payload:
            raise ProtocolError("payload is empty")
        adaptive = self.config.adaptive
        # A fresh send starts in nominal mode with the configured FEC.
        self._set_fec(self.config.fec)
        self._degraded = False
        self._recalibrations = 0
        backoff_ns = 0.0
        window: Deque[float] = deque(
            maxlen=adaptive.ber_window if adaptive else 1)
        start = self.channel.system.now
        logs: List[FrameLog] = []
        delivered_chunks: List[Optional[bytes]] = []
        chunks = self._chunks(payload)
        for sequence, chunk in enumerate(chunks):
            log = FrameLog(sequence=sequence, attempts=0, delivered=False)
            received_chunk: Optional[bytes] = None
            for attempt in range(1 + self.config.max_retries):
                if attempt:
                    backoff_ns += self._backoff(attempt)
                if self.config.wait_for_quiet:
                    log.quiet_senses += self._await_quiet()
                log.attempts += 1
                # Re-framed every attempt: degradation switches the FEC,
                # so yesterday's wire bytes may no longer apply.
                framed = self._frame(sequence, chunk)
                wire = self._protect(framed)
                attempt_start = self.channel.system.now
                raw_ber = 1.0
                recovered: Optional[bytes] = None
                failure: Optional[str] = None
                try:
                    if self._degraded:
                        report = self.channel.transfer_robust(wire)
                    else:
                        report = self.channel.transfer(wire)
                    raw_ber = report.ber
                    recovered = self._unprotect(report.received, len(framed))
                except CalibrationError as exc:
                    failure = f"calibration: {exc}"
                except ProtocolError as exc:
                    failure = f"protocol: {exc}"
                log.raw_ber_per_attempt.append(raw_ber)
                log.degraded = log.degraded or self._degraded
                parsed = (self._parse_frame(recovered)
                          if recovered is not None else None)
                accepted = parsed is not None and parsed[0] == (sequence & 0xFF)
                if recovered is not None:
                    log.last_recovered = recovered[2:2 + len(chunk)]
                tracer = _obs()
                if tracer.enabled:
                    tracer.metrics.counter("session.attempts").inc()
                    if not accepted:
                        tracer.metrics.counter("session.crc_failures").inc()
                    args = {"sequence": sequence, "attempt": log.attempts,
                            "accepted": accepted,
                            "raw_ber": round(raw_ber, 6),
                            "degraded": self._degraded}
                    if failure is not None:
                        args["failure"] = failure
                    tracer.complete(
                        "session.frame_attempt", "session", attempt_start,
                        self.channel.system.now - attempt_start,
                        track="session", args=args,
                    )
                if adaptive is not None:
                    self._adapt(window, raw_ber, failure is not None
                                and failure.startswith("calibration"))
                if accepted:
                    assert parsed is not None
                    received_chunk = parsed[1]
                    log.delivered = True
                    break
            tracer = _obs()
            if tracer.enabled:
                tracer.metrics.counter("session.frames").inc()
                tracer.metrics.counter(
                    "session.retransmissions").inc(log.attempts - 1)
                tracer.metrics.histogram(
                    "session.attempts_per_frame").observe(log.attempts)
                if not log.delivered:
                    tracer.metrics.counter("session.frames_failed").inc()
                    tracer.instant(
                        "session.retry_exhausted", "session",
                        self.channel.system.now, track="session",
                        args={"sequence": sequence, "attempts": log.attempts},
                    )
            logs.append(log)
            delivered_chunks.append(received_chunk)
        delivered: Optional[bytes]
        if any(chunk is None for chunk in delivered_chunks):
            delivered = None
        else:
            delivered = b"".join(c for c in delivered_chunks if c is not None)
        best_parts: List[bytes] = []
        for i, chunk in enumerate(chunks):
            best = delivered_chunks[i]
            if best is None:
                best = logs[i].last_recovered or b""
            best_parts.append(best[:len(chunk)].ljust(len(chunk), b"\0"))
        return SessionReport(
            payload=payload,
            delivered=delivered,
            frames=logs,
            start_ns=start,
            end_ns=self.channel.system.now,
            best_effort=b"".join(best_parts),
            recalibrations=self._recalibrations,
            degraded=self._degraded,
            backoff_ns=backoff_ns,
        )
