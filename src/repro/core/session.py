"""Reliable sessions over an unreliable covert channel.

Section 6.3 sketches three noise strategies — averaging/retransmission,
error-correcting codes, and transmitting during quiet periods.
:class:`CovertSession` packages the first two into a reusable transport:

* payloads are split into fixed-size **frames** with a sequence number
  and a CRC-8 trailer;
* each frame is optionally protected with forward error correction
  (extended Hamming or a repetition code) behind a block interleaver, so
  a two-bit symbol error cannot defeat a SECDED block;
* frames failing the CRC after decoding are **retransmitted** (stop-and-
  wait ARQ) up to a retry budget; in this covert setting the "ACK" is
  implicit — the simulation executes both sides, and a real deployment
  would run the paper's reverse channel the same way.

The session works over any :class:`~repro.core.channel.CovertChannel`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.channel import CovertChannel
from repro.core.ecc import CRC8, Hamming74, RepetitionCode, deinterleave, interleave
from repro.core.encoding import bits_to_bytes, bytes_to_bits
from repro.errors import ProtocolError
from repro.obs.tracer import current as _obs
from repro.units import bits_per_second


@enum.unique
class FecScheme(enum.Enum):
    """Forward-error-correction options for session frames."""

    NONE = "none"
    HAMMING = "hamming"          # extended Hamming(8,4): rate 1/2, SECDED
    REPETITION3 = "repetition3"  # rate 1/3, majority vote


@dataclass(frozen=True)
class SessionConfig:
    """Transport parameters.

    Parameters
    ----------
    frame_bytes:
        Payload bytes per frame (excluding the 2-byte header and the
        CRC trailer).  Smaller frames lose less per retransmission.
    fec:
        Forward error correction applied to each framed payload.
    max_retries:
        Retransmissions allowed per frame before the session fails.
    """

    frame_bytes: int = 8
    fec: FecScheme = FecScheme.HAMMING
    max_retries: int = 4
    #: Section 6.3's third strategy: sense the channel before each frame
    #: and defer while another application's PHIs are perturbing it.
    wait_for_quiet: bool = False
    #: Sense attempts per frame before transmitting anyway.
    quiet_patience: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.frame_bytes <= 250:
            raise ProtocolError(
                f"frame payload must be 1..250 bytes, got {self.frame_bytes}"
            )
        if self.max_retries < 0:
            raise ProtocolError("retry budget must be >= 0")
        if self.quiet_patience < 1:
            raise ProtocolError("quiet patience must be >= 1")

    @property
    def code_rate(self) -> float:
        """Information bits per channel bit of the chosen FEC."""
        if self.fec == FecScheme.HAMMING:
            return 0.5
        if self.fec == FecScheme.REPETITION3:
            return 1.0 / 3.0
        return 1.0


@dataclass
class FrameLog:
    """What happened to one frame."""

    sequence: int
    attempts: int
    delivered: bool
    raw_ber_per_attempt: List[float] = field(default_factory=list)
    quiet_senses: int = 0


@dataclass
class SessionReport:
    """Outcome of one session send."""

    payload: bytes
    delivered: Optional[bytes]
    frames: List[FrameLog]
    start_ns: float
    end_ns: float

    @property
    def ok(self) -> bool:
        """True when the payload arrived intact."""
        return self.delivered == self.payload

    @property
    def total_attempts(self) -> int:
        """Channel transfers used, including retransmissions."""
        return sum(f.attempts for f in self.frames)

    @property
    def retransmissions(self) -> int:
        """Extra transfers beyond one per frame."""
        return self.total_attempts - len(self.frames)

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per second of wall time."""
        if not self.ok or self.end_ns <= self.start_ns:
            return 0.0
        return bits_per_second(len(self.payload) * 8,
                               self.end_ns - self.start_ns)


class CovertSession:
    """Framed, FEC-protected, retransmitting transport over a channel."""

    def __init__(self, channel: CovertChannel,
                 config: SessionConfig = SessionConfig()) -> None:
        self.channel = channel
        self.config = config
        self._crc = CRC8()
        if config.fec == FecScheme.HAMMING:
            self._hamming: Optional[Hamming74] = Hamming74(extended=True)
        else:
            self._hamming = None
        if config.fec == FecScheme.REPETITION3:
            self._repetition: Optional[RepetitionCode] = RepetitionCode(3)
        else:
            self._repetition = None

    # -- framing -----------------------------------------------------------------

    def _frame(self, sequence: int, chunk: bytes) -> bytes:
        """[length][sequence][payload][crc] over everything before it."""
        header = bytes([len(chunk), sequence & 0xFF])
        return self._crc.append(header + chunk)

    def _parse_frame(self, framed: bytes) -> Optional[Tuple[int, bytes]]:
        """(sequence, payload) if the CRC and length check out."""
        if len(framed) < 3 or not self._crc.verify(framed):
            return None
        length, sequence = framed[0], framed[1]
        payload = framed[2:-1]
        if len(payload) != length:
            return None
        return sequence, payload

    # -- FEC ----------------------------------------------------------------------

    def _protect(self, framed: bytes) -> bytes:
        bits = bytes_to_bits(framed)
        if self._hamming is not None:
            coded = self._hamming.encode(bits)
            coded = interleave(coded, depth=self._hamming.block_bits)
            return bits_to_bytes(coded)
        if self._repetition is not None:
            coded = self._repetition.encode(bits)
            pad = (-len(coded)) % 8
            return bits_to_bytes(coded + [0] * pad)
        return framed

    def _unprotect(self, wire: bytes, framed_len: int) -> bytes:
        bits = bytes_to_bits(wire)
        if self._hamming is not None:
            coded_len = framed_len * 8 * 2
            coded = deinterleave(bits[:coded_len],
                                 depth=self._hamming.block_bits)
            return bits_to_bytes(self._hamming.decode(coded))
        if self._repetition is not None:
            coded_len = framed_len * 8 * 3
            return bits_to_bytes(self._repetition.decode(bits[:coded_len]))
        return wire[:framed_len]

    # -- transport ------------------------------------------------------------------

    def _chunks(self, payload: bytes) -> List[bytes]:
        size = self.config.frame_bytes
        return [payload[i:i + size] for i in range(0, len(payload), size)]

    # -- quiet-period sensing --------------------------------------------------------

    def channel_is_quiet(self) -> bool:
        """Probe the channel once and judge whether it is undisturbed.

        Sends a single known training symbol and checks that the reading
        lands where calibration put that level.  A concurrent
        application's PHI activity — a foreign transition in flight, or
        a foreign grant masking the probe — pushes the reading out of
        its cluster.  Costs one slot.
        """
        if self.channel.calibrator is None:
            self.channel.calibrate()
        calibrator = self.channel.calibrator
        assert calibrator is not None
        reading = self.channel.run_symbols([0])[0]
        center = calibrator.stats[0].center
        thresholds = calibrator.thresholds
        if thresholds:
            nearest = min(abs(t - center) for t in thresholds)
        else:
            nearest = abs(center) or 1.0
        return abs(reading - center) <= 0.9 * nearest

    def _await_quiet(self) -> int:
        """Sense until quiet (or patience runs out); returns senses used."""
        senses = 0
        for _ in range(self.config.quiet_patience):
            senses += 1
            if self.channel_is_quiet():
                break
        return senses

    def send(self, payload: bytes) -> SessionReport:
        """Deliver ``payload`` reliably; returns the session record."""
        if not payload:
            raise ProtocolError("payload is empty")
        start = self.channel.system.now
        logs: List[FrameLog] = []
        delivered_chunks: List[Optional[bytes]] = []
        for sequence, chunk in enumerate(self._chunks(payload)):
            framed = self._frame(sequence, chunk)
            wire = self._protect(framed)
            log = FrameLog(sequence=sequence, attempts=0, delivered=False)
            received_chunk: Optional[bytes] = None
            for _ in range(1 + self.config.max_retries):
                if self.config.wait_for_quiet:
                    log.quiet_senses += self._await_quiet()
                log.attempts += 1
                attempt_start = self.channel.system.now
                report = self.channel.transfer(wire)
                log.raw_ber_per_attempt.append(report.ber)
                recovered = self._unprotect(report.received, len(framed))
                parsed = self._parse_frame(recovered)
                accepted = parsed is not None and parsed[0] == (sequence & 0xFF)
                tracer = _obs()
                if tracer.enabled:
                    tracer.metrics.counter("session.attempts").inc()
                    if not accepted:
                        tracer.metrics.counter("session.crc_failures").inc()
                    tracer.complete(
                        "session.frame_attempt", "session", attempt_start,
                        self.channel.system.now - attempt_start,
                        track="session",
                        args={"sequence": sequence, "attempt": log.attempts,
                              "accepted": accepted,
                              "raw_ber": round(report.ber, 6)},
                    )
                if accepted:
                    assert parsed is not None
                    received_chunk = parsed[1]
                    log.delivered = True
                    break
            tracer = _obs()
            if tracer.enabled:
                tracer.metrics.counter("session.frames").inc()
                tracer.metrics.counter(
                    "session.retransmissions").inc(log.attempts - 1)
                tracer.metrics.histogram(
                    "session.attempts_per_frame").observe(log.attempts)
                if not log.delivered:
                    tracer.metrics.counter("session.frames_failed").inc()
                    tracer.instant(
                        "session.retry_exhausted", "session",
                        self.channel.system.now, track="session",
                        args={"sequence": sequence, "attempts": log.attempts},
                    )
            logs.append(log)
            delivered_chunks.append(received_chunk)
        delivered: Optional[bytes]
        if any(chunk is None for chunk in delivered_chunks):
            delivered = None
        else:
            delivered = b"".join(c for c in delivered_chunks if c is not None)
        return SessionReport(
            payload=payload,
            delivered=delivered,
            frames=logs,
            start_ns=start,
            end_ns=self.channel.system.now,
        )
