"""IccSMTcovert: covert channel across co-located SMT threads (Section 4.2).

When the sender's PHI loop triggers a voltage transition, the core blocks
the shared IDQ-to-back-end interface for three of every four cycles — for
*both* SMT threads (Key Conclusion 5).  The receiver therefore just runs
a scalar 64-bit loop on the sibling hardware thread and times it: the
loop stretches by roughly the sender's throttling period, which encodes
the sender's level (Figure 4b).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.core.channel import ChannelConfig, CovertChannel
from repro.core.levels import ChannelLocation
from repro.core.sync import SlotSchedule
from repro.errors import ConfigError
from repro.soc.system import System


class IccSMTcovert(CovertChannel):
    """Cross-SMT-thread covert channel."""

    location = ChannelLocation.ACROSS_SMT

    def __init__(self, system: System, config: ChannelConfig = ChannelConfig(),
                 core: int = 0) -> None:
        super().__init__(system, config)
        if not system.config.supports_smt:
            raise ConfigError(
                f"{system.config.codename} has no SMT; IccSMTcovert needs "
                f"two hardware threads per core"
            )
        if not 0 <= core < system.config.n_cores:
            raise ConfigError(f"no such core: {core}")
        self.sender_thread = system.thread_on(core, 0)
        self.receiver_thread = system.thread_on(core, 1)

    def _sender_program(self, schedule: SlotSchedule,
                        symbols: Sequence[int]) -> Generator:
        system = self.system
        for i, symbol in enumerate(symbols):
            yield system.until(schedule.slot_start(i))
            yield system.execute(self.sender_thread, self.sender_loop(symbol))
        return None

    def _receiver_program(self, schedule: SlotSchedule, n_symbols: int,
                          measurements: List[Optional[float]]) -> Generator:
        system = self.system
        for i in range(n_symbols):
            yield system.until(schedule.slot_start(i))
            result = yield system.execute(self.receiver_thread, self.probe_loop())
            measurements[i] = float(result.elapsed_tsc)
        return None

    def _spawn_transaction_programs(self, schedule: SlotSchedule,
                                    symbols: Sequence[int],
                                    measurements: List[Optional[float]]) -> None:
        self.system.spawn(
            self._sender_program(self.party_schedule(schedule, "sender"),
                                 symbols),
            name="icc_smt_sender")
        self.system.spawn(
            self._receiver_program(self.party_schedule(schedule, "receiver"),
                                   len(symbols), measurements),
            name="icc_smt_receiver",
        )
