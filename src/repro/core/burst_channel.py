"""Burst extension: two symbols per reset window when levels ascend.

The 650 us reset-time dominates the transaction cycle, but it is only
needed before a *downward* level change: an *upward* transition triggers
its own voltage ramp immediately, because the new class exceeds the
granted guardband regardless of history.  A sender can therefore pack an
ascending symbol pair into one slot — transmit ``s1``, then immediately
``s2 > s1`` — and pay the reset-time once for two symbols.

The receiver (on the SMT sibling, whose scalar probe never disturbs the
grants) measures two sub-slots: the first throttling period encodes
``s1`` as usual, the second encodes the *residual* ramp from ``s1``'s
guardband to ``s2``'s.  A second sub-slot with no throttling means the
slot carried a single symbol — the framing is self-describing because
pairs are only ever formed when the second ramp is non-empty.

For uniformly random payloads ~37 % of slots pair up, giving a ~1.3x
throughput gain over :class:`~repro.core.smt_channel.IccSMTcovert`; the
paper's protocol is the degenerate single-symbol case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.calibration import Calibrator
from repro.core.channel import ChannelConfig
from repro.core.encoding import bytes_to_symbols, symbols_to_bytes
from repro.core.levels import narrow_symbol_classes
from repro.core.sync import SlotSchedule
from repro.errors import CalibrationError, ConfigError, ProtocolError
from repro.isa.instructions import IClass
from repro.isa.workload import Loop
from repro.soc.system import System
from repro.units import bits_per_second, us_to_ns


def pack_pairs(symbols: Sequence[int]) -> List[Tuple[int, Optional[int]]]:
    """Greedy packing of a symbol stream into (first, second|None) slots.

    A slot carries a second symbol only when it is strictly greater than
    the first (an upward guardband transition exists to encode it).
    """
    slots: List[Tuple[int, Optional[int]]] = []
    i = 0
    while i < len(symbols):
        first = symbols[i]
        if i + 1 < len(symbols) and symbols[i + 1] > first:
            slots.append((first, symbols[i + 1]))
            i += 2
        else:
            slots.append((first, None))
            i += 1
    return slots


def unpack_pairs(slots: Sequence[Tuple[int, Optional[int]]]) -> List[int]:
    """Inverse of :func:`pack_pairs`."""
    out: List[int] = []
    for first, second in slots:
        out.append(first)
        if second is not None:
            out.append(second)
    return out


@dataclass
class BurstReport:
    """Outcome of one burst transfer."""

    sent: bytes
    received: bytes
    symbols_sent: List[int]
    symbols_received: List[int]
    slots_used: int
    start_ns: float
    end_ns: float

    @property
    def bits(self) -> int:
        """Payload bits transferred."""
        return 2 * len(self.symbols_sent)

    @property
    def ber(self) -> float:
        """Bit error rate (length mismatches count as full errors)."""
        wrong = sum(
            bin((a ^ b) & 0b11).count("1")
            for a, b in zip(self.symbols_sent, self.symbols_received)
        )
        wrong += 2 * abs(len(self.symbols_sent) - len(self.symbols_received))
        return wrong / self.bits if self.bits else 0.0

    @property
    def throughput_bps(self) -> float:
        """Realised throughput in bit/s."""
        return bits_per_second(self.bits, self.end_ns - self.start_ns)

    @property
    def symbols_per_slot(self) -> float:
        """Packing efficiency (1.0 = the paper's protocol)."""
        return len(self.symbols_sent) / self.slots_used if self.slots_used else 0.0


class IccSMTBurst:
    """Across-SMT channel packing ascending symbol pairs per slot."""

    def __init__(self, system: System,
                 config: ChannelConfig = ChannelConfig(),
                 core: int = 0) -> None:
        if not system.config.supports_smt:
            raise ConfigError("the burst channel runs across SMT threads")
        self.system = system
        self.config = config
        self.sender_thread = system.thread_on(core, 0)
        self.receiver_thread = system.thread_on(core, 1)
        self.symbol_classes = narrow_symbol_classes(
            system.config.max_vector_bits)
        self._first_calibrator: Optional[Calibrator] = None
        self._second_calibrators: Dict[int, Calibrator] = {}
        self._presence_tsc: float = 0.0

    # -- geometry ---------------------------------------------------------------

    def _freq(self) -> float:
        return self.system.pmu.requested_freq_ghz

    def _sender_loop(self, symbol: int) -> Loop:
        iclass = self.symbol_classes[symbol]
        # Constant-wall sizing, as in the base protocol.
        iterations = max(
            self.config.sender_iterations,
            int(self.config.sender_iterations * iclass.ipc))
        return Loop(iclass, iterations, self.config.block_instructions)

    def _probe_loop(self) -> Loop:
        iterations = 2 * self.config.probe_iterations
        return Loop(IClass.SCALAR_64, iterations,
                    self.config.block_instructions)

    @property
    def sub_slot_ns(self) -> float:
        """Offset of the second symbol within a slot.

        Must exceed the first loop's worst wall time (0.75 x the longest
        TP plus the unthrottled loop), so both sides stay aligned no
        matter which level the first symbol used.
        """
        freq = self._freq()
        loop = self._sender_loop(0)
        unthrottled = loop.total_instructions / (loop.iclass.ipc * freq)
        return 4.0 * unthrottled + us_to_ns(8.0)

    @property
    def slot_ns(self) -> float:
        """Slot length: two sub-slots plus the reset-time."""
        reset = us_to_ns(self.system.config.reset_time_us)
        return reset + 2.2 * self.sub_slot_ns + us_to_ns(10.0)

    # -- programs ----------------------------------------------------------------

    def _sender_program(self, schedule: SlotSchedule,
                        slots: Sequence[Tuple[int, Optional[int]]]
                        ) -> Generator:
        system = self.system
        for i, (first, second) in enumerate(slots):
            yield system.until(schedule.slot_start(i))
            yield system.execute(self.sender_thread, self._sender_loop(first))
            if second is not None:
                yield system.until(schedule.slot_start(i) + self.sub_slot_ns)
                yield system.execute(self.sender_thread,
                                     self._sender_loop(second))
        return None

    def _receiver_program(self, schedule: SlotSchedule, n_slots: int,
                          measurements: List[Optional[Tuple[float, float]]]
                          ) -> Generator:
        system = self.system
        for i in range(n_slots):
            yield system.until(schedule.slot_start(i))
            first = yield system.execute(self.receiver_thread,
                                         self._probe_loop())
            yield system.until(schedule.slot_start(i) + self.sub_slot_ns)
            second = yield system.execute(self.receiver_thread,
                                          self._probe_loop())
            measurements[i] = (float(first.elapsed_tsc),
                               float(second.elapsed_tsc))
        return None

    def _run_slots(self, slots: Sequence[Tuple[int, Optional[int]]]
                   ) -> List[Tuple[float, float]]:
        if not slots:
            raise ProtocolError("no slots to transmit")
        schedule = SlotSchedule(self.system.now + self.slot_ns, self.slot_ns)
        measurements: List[Optional[Tuple[float, float]]] = [None] * len(slots)
        self.system.spawn(self._sender_program(schedule, list(slots)),
                          name="burst_sender")
        self.system.spawn(
            self._receiver_program(schedule, len(slots), measurements),
            name="burst_receiver",
        )
        self.system.run_until(schedule.slot_start(len(slots)) + self.slot_ns)
        if any(m is None for m in measurements):
            raise ProtocolError("receiver missed some slots")
        return [m for m in measurements if m is not None]

    # -- calibration ---------------------------------------------------------------

    def calibrate(self) -> None:
        """Train first-symbol, pair-presence and per-first decoders."""
        rounds = self.config.training_rounds
        # Single-symbol slots for the first-position decoder and the
        # quiet second-sub-slot baseline.
        singles: List[Tuple[int, Optional[int]]] = [
            (s, None) for _ in range(rounds) for s in sorted(self.symbol_classes)
        ]
        # Every strictly ascending pair for the second-position decoders.
        pairs: List[Tuple[int, Optional[int]]] = [
            (a, b)
            for _ in range(rounds)
            for a in sorted(self.symbol_classes)
            for b in sorted(self.symbol_classes)
            if b > a
        ]
        readings = self._run_slots(singles + pairs)
        single_readings = readings[:len(singles)]
        pair_readings = readings[len(singles):]

        self._first_calibrator = Calibrator(
            [(slot[0], first) for slot, (first, _) in
             zip(singles, single_readings)],
            min_gap=self.config.min_level_gap_tsc,
        )
        quiet_second = max(second for _, second in single_readings)
        busy_second = min(second for _, second in pair_readings)
        if busy_second - quiet_second < self.config.min_level_gap_tsc:
            raise CalibrationError(
                "pair presence is not separable from quiet sub-slots"
            )
        self._presence_tsc = (quiet_second + busy_second) / 2.0

        by_first: Dict[int, List[Tuple[int, float]]] = {}
        for (first, second), (_, reading) in zip(pairs, pair_readings):
            assert second is not None
            by_first.setdefault(first, []).append((second, reading))
        self._second_calibrators = {
            first: Calibrator(samples)
            for first, samples in by_first.items()
            if len({s for s, _ in samples}) >= 1
        }

    # -- transfer -----------------------------------------------------------------

    def transfer(self, payload: bytes) -> BurstReport:
        """Send ``payload`` with ascending-pair packing."""
        if not payload:
            raise ProtocolError("payload is empty")
        if self._first_calibrator is None:
            self.calibrate()
        assert self._first_calibrator is not None
        symbols = bytes_to_symbols(payload)
        slots = pack_pairs(symbols)
        start = self.system.now
        readings = self._run_slots(slots)
        decoded: List[int] = []
        for first_tsc, second_tsc in readings:
            first = self._first_calibrator.decode(first_tsc)
            decoded.append(first)
            if second_tsc > self._presence_tsc:
                calibrator = self._second_calibrators.get(first)
                if calibrator is not None:
                    decoded.append(calibrator.decode(second_tsc))
                else:
                    # First symbol was decoded as the top level, yet a
                    # second ramp happened: best effort, flag as top.
                    decoded.append(3)
        received = decoded[:len(symbols)]
        # Pad if framing desynchronised (counts as bit errors via ber).
        while len(received) < len(symbols):
            received.append(0)
        return BurstReport(
            sent=payload,
            received=symbols_to_bytes(received),
            symbols_sent=symbols,
            symbols_received=received,
            slots_used=len(slots),
            start_ns=start,
            end_ns=self.system.now,
        )
