"""Wall-clock transaction synchronisation (Section 4.3.3).

Sender and receiver cannot talk, so they agree (out of band, before the
attack) on an epoch and a slot length; each busy-waits on ``rdtsc`` until
the start of its slot.  :class:`SlotSchedule` is that shared agreement.

:class:`JitteredSchedule` extends it with a pseudo-random per-slot
offset derived from a shared seed: both parties compute identical slot
times, but an outside observer sees an aperiodic throttle train — the
attacker's answer to periodicity-based detection
(:class:`~repro.mitigations.detector.ThrottleAnomalyDetector`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ProtocolError

#: Relative boundary tolerance of :meth:`SlotSchedule.slot_index_at`, in
#: units of float64 rounding.  ``(t - epoch) / slot`` accumulates a few
#: ulps of error from the subtraction, the division and the caller's own
#: ``epoch + k * slot`` arithmetic, so a query *exactly on* a slot
#: boundary can land fractionally below it (``0.3 / 0.1 == 2.999…``).
#: Times within this tolerance of the next slot's start are assigned to
#: that slot.  The tolerance scales with ``max(index, epoch/slot)`` —
#: the magnitudes whose ulps dominate the error — and stays far below
#: any physically meaningful fraction of a slot.
_BOUNDARY_EPS = 4e-15


@dataclass(frozen=True)
class SlotSchedule:
    """A shared schedule of fixed-length transaction slots."""

    epoch_ns: float
    slot_ns: float

    def __post_init__(self) -> None:
        if self.slot_ns <= 0:
            raise ProtocolError(f"slot length must be positive, got {self.slot_ns}")
        if self.epoch_ns < 0:
            raise ProtocolError(f"epoch must be >= 0, got {self.epoch_ns}")

    def slot_start(self, index: int) -> float:
        """Absolute start time of slot ``index``."""
        if index < 0:
            raise ProtocolError(f"slot index must be >= 0, got {index}")
        return self.epoch_ns + index * self.slot_ns

    def slot_index_at(self, t_ns: float) -> int:
        """Index of the slot containing time ``t_ns`` (-1 before epoch).

        Boundary rule: a time exactly at (or within a few ulps below) a
        slot's start belongs to *that* slot, never the one before it —
        without the tolerance, float round-off in the division makes
        :meth:`next_slot_after` return a slot that already started.
        """
        if t_ns < self.epoch_ns:
            return -1
        raw = (t_ns - self.epoch_ns) / self.slot_ns
        index = int(raw)
        tolerance = _BOUNDARY_EPS * max(1.0, raw, self.epoch_ns / self.slot_ns)
        if (index + 1) - raw <= tolerance:
            index += 1
        return index

    def next_slot_after(self, t_ns: float) -> int:
        """Index of the first slot starting strictly after ``t_ns``."""
        if t_ns < self.epoch_ns:
            return 0
        return self.slot_index_at(t_ns) + 1


@dataclass(frozen=True)
class JitteredSchedule(SlotSchedule):
    """Slots with shared-seed pseudo-random start offsets.

    Slot ``i`` starts at ``epoch + i*slot + U(0, jitter)`` where the
    uniform draw comes from a deterministic stream both parties seed
    identically.  Slots never overlap because the jitter only delays a
    start within its own slot (``jitter_ns`` must stay below the slack
    the slot leaves after its send window).
    """

    jitter_ns: float = 0.0
    seed: int = 0
    _offsets: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.jitter_ns < 0:
            raise ProtocolError(f"jitter must be >= 0, got {self.jitter_ns}")
        if self.jitter_ns >= self.slot_ns:
            raise ProtocolError(
                f"jitter {self.jitter_ns} must stay below the slot "
                f"length {self.slot_ns}"
            )

    def _offset(self, index: int) -> float:
        cached = self._offsets.get(index)
        if cached is None:
            # Derive each slot's offset independently so lookups need no
            # ordering; (seed, index) gives both parties the same draw.
            rng = np.random.default_rng((self.seed, index))
            cached = float(rng.uniform(0.0, self.jitter_ns))
            self._offsets[index] = cached
        return cached

    def slot_start(self, index: int) -> float:
        """Jittered start of slot ``index``."""
        return super().slot_start(index) + self._offset(index)


@dataclass(frozen=True)
class PerturbedSchedule(SlotSchedule):
    """A schedule whose party sees *uncoordinated* per-slot delays.

    Unlike :class:`JitteredSchedule` — where both parties compute the
    same offsets from a shared seed — a perturbed schedule models what
    an adversary does **not** control: scheduler wake-up latency that
    delays one party's slot entry independently of the other's.  The
    fault-injection layer (:mod:`repro.faults`) wraps each party's view
    of the shared schedule in one of these with a party-specific salt,
    so the sender and the receiver drift apart and symbols smear across
    slot boundaries.

    Delays are half-normal (``|N(0, sigma)|``), capped at ``cap_ns`` and
    always non-negative — the OS can wake a task late, never early.
    Indexing (:meth:`slot_index_at`) follows the unperturbed base
    schedule: the party is late *into* its nominal slot, the slot grid
    itself does not move.
    """

    base: SlotSchedule = None  # type: ignore[assignment]
    sigma_ns: float = 0.0
    cap_ns: float = 0.0
    salt: tuple = ()
    _delays: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base is None:
            raise ProtocolError("PerturbedSchedule needs a base schedule")
        if self.sigma_ns < 0 or self.cap_ns < 0:
            raise ProtocolError("delay sigma and cap must be >= 0")

    @classmethod
    def wrap(cls, base: SlotSchedule, sigma_ns: float, cap_ns: float,
             salt: tuple) -> "PerturbedSchedule":
        """Wrap ``base`` keeping its epoch/slot for shared arithmetic."""
        return cls(epoch_ns=base.epoch_ns, slot_ns=base.slot_ns, base=base,
                   sigma_ns=sigma_ns, cap_ns=cap_ns, salt=tuple(salt))

    def delay(self, index: int) -> float:
        """This party's wake-up delay entering slot ``index``."""
        cached = self._delays.get(index)
        if cached is None:
            rng = np.random.default_rng(self.salt + (index,))
            cached = min(self.cap_ns, abs(float(rng.normal(0.0, self.sigma_ns))))
            self._delays[index] = cached
        return cached

    def slot_start(self, index: int) -> float:
        """Delayed start of slot ``index`` as this party experiences it."""
        return self.base.slot_start(index) + self.delay(index)

    def slot_index_at(self, t_ns: float) -> int:
        """Index on the *unperturbed* grid (the slots themselves don't move)."""
        return self.base.slot_index_at(t_ns)

    def next_slot_after(self, t_ns: float) -> int:
        """First unperturbed slot starting strictly after ``t_ns``."""
        return self.base.next_slot_after(t_ns)
