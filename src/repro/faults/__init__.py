"""Deterministic fault injection for the IChannels simulator.

The covert channels of the paper only matter if they survive a hostile
substrate — OS scheduling jitter, competing DVFS requests, instrument
noise, drifting clocks.  This package perturbs the simulation at
well-defined seams so that robustness is measurable instead of assumed:

* :class:`FaultModel` — one deterministic, seedable perturbation;
* concrete models: :class:`RailVoltageJitter`, :class:`SampleDropout`,
  :class:`GrantQueueInterference`, :class:`ThermalDriftRamp`,
  :class:`ReceiverClockSkew`, :class:`SlotScheduleJitter`;
* :class:`FaultInjector` — composes models and attaches them to a
  :class:`~repro.soc.system.System` (then visible as ``system.faults``);
* :func:`parse_fault_spec` / :func:`default_fault_suite` — the
  ``"name:key=value;..."`` string form used by ``python -m repro
  --faults``, the resilience sweep and the benchmarks.

See ``docs/FAULTS.md`` for every model's parameters and the adaptive
session machinery (:mod:`repro.core.session`) built to survive them.
"""

from repro.faults.base import FaultModel
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    GrantQueueInterference,
    RailVoltageJitter,
    ReceiverClockSkew,
    SampleDropout,
    SlotScheduleJitter,
    StateFlush,
    ThermalDriftRamp,
)
from repro.faults.spec import (
    FAULT_MODELS,
    default_fault_suite,
    fault_model_names,
    parse_fault_spec,
)

__all__ = [
    "FAULT_MODELS",
    "FaultInjector",
    "FaultModel",
    "GrantQueueInterference",
    "RailVoltageJitter",
    "ReceiverClockSkew",
    "SampleDropout",
    "SlotScheduleJitter",
    "StateFlush",
    "ThermalDriftRamp",
    "default_fault_suite",
    "fault_model_names",
    "parse_fault_spec",
]
