"""Fault-spec strings: the picklable, CLI-friendly form of a fault suite.

Grammar (whitespace-insensitive)::

    spec     := clause (";" clause)*
    clause   := name [":" knob ("," knob)*]
    knob     := key "=" value
    name     := "rail-jitter" | "dropout" | "grant-interference"
              | "thermal-drift" | "clock-skew" | "slot-jitter"
              | "state-flush" | "default"

Examples::

    "slot-jitter:sigma_us=40"
    "clock-skew:drift_ppm_per_s=5000;grant-interference:burst_rate_per_s=300"
    "default"                      # the whole suite at nominal intensity
    "default:intensity=1.5,seed=3" # the whole suite, scaled and reseeded

Spec strings are the currency everything else trades in: ``python -m
repro --faults SPEC``, the resilience sweep's worker tasks (strings
pickle; attached injectors don't), and
:meth:`repro.faults.FaultInjector.describe` round-trips back to one.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import ConfigError
from repro.faults.base import FaultModel
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    GrantQueueInterference,
    RailVoltageJitter,
    ReceiverClockSkew,
    SampleDropout,
    SlotScheduleJitter,
    StateFlush,
    ThermalDriftRamp,
)

#: Models the ``default`` suite instantiates: the six *environment*
#: seams.  ``state-flush`` is excluded by design — it models a defender
#: recipe (temporal partitioning), not ambient noise, and adding it
#: here would silently change every experiment pinned against the
#: default suite (the resilience goldens among them).
_DEFAULT_SUITE: tuple = (
    RailVoltageJitter, SampleDropout, GrantQueueInterference,
    ThermalDriftRamp, ReceiverClockSkew, SlotScheduleJitter,
)

#: Registry of spec names to model classes (see :func:`fault_model_names`).
FAULT_MODELS: Dict[str, Type[FaultModel]] = {
    cls.name: cls for cls in _DEFAULT_SUITE + (StateFlush,)
}


def fault_model_names() -> List[str]:
    """All registered model names plus the ``default`` suite alias."""
    return sorted(FAULT_MODELS) + ["default"]


def default_fault_suite(intensity: float = 1.0,
                        seed: int = 0) -> List[FaultModel]:
    """One of every fault model at its nominal parameters.

    The suite EXPERIMENTS.md's resilience numbers are measured under:
    every environment seam perturbed at once, all scaled by one
    ``intensity`` dial (defender-style models such as ``state-flush``
    are opt-in and not included).
    """
    return [cls(intensity=intensity, seed=seed) for cls in _DEFAULT_SUITE]


def _coerce(key: str, raw: str) -> float:
    """Parse one knob value (int-like keys stay ints for constructors)."""
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(f"fault knob {key}={raw!r} is not a number") from None
    if key in ("seed", "core"):
        return int(value)
    return value


def parse_fault_spec(spec: str) -> FaultInjector:
    """Build a :class:`FaultInjector` from a spec string.

    Raises :class:`~repro.errors.ConfigError` on unknown model names or
    knobs, listing the valid alternatives.
    """
    models: List[FaultModel] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, _, knob_text = clause.partition(":")
        name = name.strip()
        knobs: Dict[str, float] = {}
        if knob_text.strip():
            for knob in knob_text.split(","):
                key, sep, raw = knob.partition("=")
                if not sep:
                    raise ConfigError(
                        f"malformed fault knob {knob.strip()!r} in "
                        f"{clause!r}; expected key=value")
                knobs[key.strip()] = _coerce(key.strip(), raw.strip())
        if name == "default":
            extra = set(knobs) - {"intensity", "seed"}
            if extra:
                raise ConfigError(
                    f"'default' accepts only intensity/seed, got {sorted(extra)}")
            models.extend(default_fault_suite(**knobs))  # type: ignore[arg-type]
            continue
        cls = FAULT_MODELS.get(name)
        if cls is None:
            raise ConfigError(
                f"unknown fault model {name!r}; valid names: "
                f"{', '.join(fault_model_names())}")
        try:
            models.append(cls(**knobs))  # type: ignore[arg-type]
        except TypeError as exc:
            raise ConfigError(f"bad knobs for fault {name!r}: {exc}") from None
    if not models:
        raise ConfigError(f"fault spec {spec!r} names no models")
    return FaultInjector(models)
