"""The concrete fault models, one per simulation seam.

Every model perturbs exactly one well-defined seam:

===================  =========================================================
model                seam
===================  =========================================================
``rail-jitter``      DAQ sample values (:meth:`repro.measure.daq.DAQCard.sample`)
``dropout``          DAQ sample values (dropped samples hold their last value)
``grant-interference`` the central PMU's serialized grant queue
``thermal-drift``    the RC thermal model's ambient reference
``clock-skew``       the system TSC the receiver times probes with
``slot-jitter``      each party's view of the shared slot schedule
``state-flush``      the central PMU's grant state, on a scheduling quantum
===================  =========================================================

The first two corrupt *measurements* of the simulation; the middle two
perturb slow *environment* state; ``clock-skew`` and ``slot-jitter``
attack the channel's own *timing assumptions* and are the dominant BER
contributors the adaptive session (:mod:`repro.core.session`) has to
survive.  ``state-flush`` is different in spirit: it models a *defence*
(temporal partitioning of the current-management state, after the
RISC-V prevention literature) with the fault machinery, because a
defender that periodically perturbs PMU state is mechanically identical
to an attacker-facing noise source.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional

import numpy as np

from repro.core.sync import PerturbedSchedule, SlotSchedule
from repro.errors import ConfigError
from repro.faults.base import SEED_SPACE, FaultModel, _salt_int
from repro.isa.instructions import IClass
from repro.microarch.tsc import DriftingTimestampCounter
from repro.units import ms_to_ns, us_to_ns

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.faults.injector import FaultInjector
    from repro.soc.system import System


class RailVoltageJitter(FaultModel):
    """Extra Gaussian noise on every DAQ-sampled rail series.

    Models supply ripple and probe pickup beyond the instrument's own
    noise floor: each :meth:`~repro.measure.daq.DAQCard.sample` call gets
    independent ``N(0, sigma_mv * intensity)`` millivolts added per
    sample.  Affects rail-trace detectors and figure pipelines, not the
    TSC-based channel receivers.
    """

    name = "rail-jitter"
    perturbs_measurements = True

    def __init__(self, sigma_mv: float = 2.0,
                 intensity: float = 1.0, seed: int = 0) -> None:
        super().__init__(intensity, seed)
        if sigma_mv < 0:
            raise ConfigError(f"sigma_mv must be >= 0, got {sigma_mv}")
        self.sigma_mv = float(sigma_mv)
        self._calls = 0

    def params(self) -> Dict[str, float]:
        """Magnitude knobs (``sigma_mv``)."""
        return {"sigma_mv": self.sigma_mv}

    def attach(self, system: "System", injector: "FaultInjector") -> None:
        """No event-driven state; sampling pulls from this model lazily."""

    def perturb_samples(self, name: str, times: np.ndarray,
                        values: np.ndarray) -> np.ndarray:
        """Add per-sample Gaussian jitter to one sampled series."""
        sigma = self.sigma_mv * 1e-3 * self.intensity
        if sigma <= 0 or len(values) == 0:
            return values
        self._calls += 1
        rng = self.rng(name, self._calls)
        self.events += len(values)
        return values + rng.normal(0.0, sigma, len(values))


class SampleDropout(FaultModel):
    """Random DAQ samples replaced by the last good value.

    Models conversion glitches and bus stalls: each sample is dropped
    with probability ``probability * intensity``; a dropped sample
    repeats the previous sample (zero-order hold), as a real acquisition
    pipeline's stale buffer would.
    """

    name = "dropout"
    perturbs_measurements = True

    def __init__(self, probability: float = 0.01,
                 intensity: float = 1.0, seed: int = 0) -> None:
        super().__init__(intensity, seed)
        if not 0.0 <= probability <= 1.0:
            raise ConfigError(f"probability must be in [0, 1], got {probability}")
        self.probability = float(probability)
        self._calls = 0

    def params(self) -> Dict[str, float]:
        """Magnitude knobs (``probability``)."""
        return {"probability": self.probability}

    def attach(self, system: "System", injector: "FaultInjector") -> None:
        """No event-driven state; sampling pulls from this model lazily."""

    def perturb_samples(self, name: str, times: np.ndarray,
                        values: np.ndarray) -> np.ndarray:
        """Drop samples (hold the previous value) at the configured rate."""
        p = min(1.0, self.probability * self.intensity)
        if p <= 0 or len(values) < 2:
            return values
        self._calls += 1
        rng = self.rng(name, self._calls)
        dropped = rng.random(len(values)) < p
        dropped[0] = False  # nothing earlier to hold
        if not dropped.any():
            return values
        self.events += int(dropped.sum())
        out = np.array(values, copy=True)
        # Zero-order hold: each dropped sample takes the most recent kept
        # value; np.maximum.accumulate over kept indices finds it in O(n).
        idx = np.arange(len(out))
        idx[dropped] = 0
        idx = np.maximum.accumulate(idx)
        return out[idx]


class GrantQueueInterference(FaultModel):
    """A phantom co-runner issuing competing guardband transitions.

    Models the paper's dominant practical noise source (Section 6.3): a
    concurrent application whose PHIs enter the central PMU's serialized
    grant queue.  At Poisson times (``burst_rate_per_s * intensity``)
    the model raises a guardband request for a random channel-grade PHI
    class on ``core``, holds it for ``hold_us``, then releases it — each
    burst can delay the covert pair's own transitions and extend their
    throttling periods, exactly like a noisy neighbour.

    ``core`` defaults to the highest-numbered core, which on a two-core
    part is the receiver's core — the worst case for the channel.
    """

    name = "grant-interference"

    #: PHI classes the phantom co-runner draws from (clipped to the
    #: part's vector width at attach time).
    BURST_CLASSES = (IClass.HEAVY_128, IClass.LIGHT_256,
                     IClass.HEAVY_256, IClass.HEAVY_512)

    def __init__(self, burst_rate_per_s: float = 300.0, hold_us: float = 120.0,
                 core: Optional[int] = None, horizon_ms: float = 5000.0,
                 intensity: float = 1.0, seed: int = 0) -> None:
        super().__init__(intensity, seed)
        if burst_rate_per_s < 0:
            raise ConfigError(f"burst rate must be >= 0, got {burst_rate_per_s}")
        if hold_us <= 0:
            raise ConfigError(f"hold time must be positive, got {hold_us}")
        if horizon_ms <= 0:
            raise ConfigError(f"horizon must be positive, got {horizon_ms}")
        self.burst_rate_per_s = float(burst_rate_per_s)
        self.hold_us = float(hold_us)
        self.core = core
        self.horizon_ms = float(horizon_ms)

    def params(self) -> Dict[str, float]:
        """Magnitude knobs (rate, hold time, horizon)."""
        knobs = {"burst_rate_per_s": self.burst_rate_per_s,
                 "hold_us": self.hold_us, "horizon_ms": self.horizon_ms}
        if self.core is not None:
            knobs["core"] = self.core
        return knobs

    def _process(self, system: "System", core: int) -> Generator:
        rng = self.rng("bursts")
        rate = self.burst_rate_per_s * self.intensity
        classes = [c for c in self.BURST_CLASSES
                   if c.width_bits <= system.config.max_vector_bits]
        horizon = ms_to_ns(self.horizon_ms)
        mean_gap_ns = 1e9 / rate
        while system.now < horizon:
            yield system.sleep(float(rng.exponential(mean_gap_ns)))
            if system.now >= horizon:
                break
            iclass = classes[int(rng.integers(len(classes)))]
            system.pmu.request_up(core, iclass)
            self.events += 1
            yield system.sleep(us_to_ns(self.hold_us))
            system.pmu.request_down(core, IClass.SCALAR_64)

    def attach(self, system: "System", injector: "FaultInjector") -> None:
        """Spawn the phantom co-runner process (bounded by the horizon)."""
        if self.intensity <= 0 or self.burst_rate_per_s <= 0:
            return
        core = self.core if self.core is not None else system.config.n_cores - 1
        if not 0 <= core < system.config.n_cores:
            raise ConfigError(f"no such core for interference: {core}")
        system.spawn(self._process(system, core),
                     name=f"fault_grant_interference_c{core}")


class ThermalDriftRamp(FaultModel):
    """A slowly warming enclosure drifting the ambient reference.

    Ramps :attr:`~repro.pmu.thermal.ThermalModel.ambient_offset_c` at
    ``rate_c_per_s * intensity`` until ``max_drift_c`` is reached,
    stepping every ``step_us``.  The junction temperature trace shifts
    accordingly; current-management throttling does **not** (the paper's
    Key Conclusion 2 — the throttles under study are current-driven, not
    thermal), so this model perturbs the observability plane only and
    lets experiments prove that negative under drift.
    """

    name = "thermal-drift"

    def __init__(self, rate_c_per_s: float = 2.0, max_drift_c: float = 10.0,
                 step_us: float = 500.0,
                 intensity: float = 1.0, seed: int = 0) -> None:
        super().__init__(intensity, seed)
        if rate_c_per_s < 0:
            raise ConfigError(f"drift rate must be >= 0, got {rate_c_per_s}")
        if max_drift_c < 0:
            raise ConfigError(f"max drift must be >= 0, got {max_drift_c}")
        if step_us <= 0:
            raise ConfigError(f"step must be positive, got {step_us}")
        self.rate_c_per_s = float(rate_c_per_s)
        self.max_drift_c = float(max_drift_c)
        self.step_us = float(step_us)

    def params(self) -> Dict[str, float]:
        """Magnitude knobs (rate, ceiling, step)."""
        return {"rate_c_per_s": self.rate_c_per_s,
                "max_drift_c": self.max_drift_c, "step_us": self.step_us}

    def _process(self, system: "System") -> Generator:
        rate = self.rate_c_per_s * self.intensity
        step_c = rate * self.step_us * 1e-6
        offset = 0.0
        while offset < self.max_drift_c:
            yield system.sleep(us_to_ns(self.step_us))
            offset = min(self.max_drift_c, offset + step_c)
            system.thermal.set_ambient_offset(system.now, offset)
            self.events += 1

    def attach(self, system: "System", injector: "FaultInjector") -> None:
        """Spawn the ramp process (self-terminates at ``max_drift_c``)."""
        if self.intensity <= 0 or self.rate_c_per_s <= 0 or self.max_drift_c <= 0:
            return
        system.spawn(self._process(system), name="fault_thermal_drift")


class ReceiverClockSkew(FaultModel):
    """TSC frequency error growing over the run.

    Replaces the system's invariant TSC with a
    :class:`~repro.microarch.tsc.DriftingTimestampCounter`: measured
    probe intervals stretch by ``skew_ppm`` parts per million plus
    ``drift_ppm_per_s`` more each second (both scaled by intensity).
    Calibrated decode thresholds therefore go stale mid-transfer — the
    fault the adaptive session's drift re-calibration exists to fix.
    """

    name = "clock-skew"

    def __init__(self, skew_ppm: float = 200.0, drift_ppm_per_s: float = 2000.0,
                 intensity: float = 1.0, seed: int = 0) -> None:
        super().__init__(intensity, seed)
        self.skew_ppm = float(skew_ppm)
        self.drift_ppm_per_s = float(drift_ppm_per_s)

    def params(self) -> Dict[str, float]:
        """Magnitude knobs (initial skew, drift rate, both in ppm)."""
        return {"skew_ppm": self.skew_ppm,
                "drift_ppm_per_s": self.drift_ppm_per_s}

    def attach(self, system: "System", injector: "FaultInjector") -> None:
        """Swap the system TSC for a drifting one."""
        if self.intensity <= 0:
            return
        system.tsc = DriftingTimestampCounter(
            tsc_ghz=system.tsc.tsc_ghz,
            skew=self.skew_ppm * 1e-6 * self.intensity,
            drift_per_s=self.drift_ppm_per_s * 1e-6 * self.intensity,
        )
        self.events += 1


class SlotScheduleJitter(FaultModel):
    """OS wake-up latency desynchronising the two parties.

    Wraps each party's view of the shared slot schedule in a
    :class:`~repro.core.sync.PerturbedSchedule` with a party-specific
    salt: sender and receiver each enter slot ``i`` late by independent
    half-normal delays (``sigma_us * intensity``, capped at ``cap_us``).
    Misaligned entries let the receiver probe before the sender's
    transition, or let a late sender encroach on the reset-time — the
    symbol-smearing errors real schedulers inflict on the attack.
    """

    name = "slot-jitter"
    perturbs_schedule = True

    def __init__(self, sigma_us: float = 1.5, cap_us: float = 10.0,
                 intensity: float = 1.0, seed: int = 0) -> None:
        super().__init__(intensity, seed)
        if sigma_us < 0 or cap_us < 0:
            raise ConfigError("sigma_us and cap_us must be >= 0")
        self.sigma_us = float(sigma_us)
        self.cap_us = float(cap_us)

    def params(self) -> Dict[str, float]:
        """Magnitude knobs (delay sigma and cap, microseconds)."""
        return {"sigma_us": self.sigma_us, "cap_us": self.cap_us}

    def attach(self, system: "System", injector: "FaultInjector") -> None:
        """No event-driven state; channels pull perturbed schedules lazily."""

    @property
    def max_delay_ns(self) -> float:
        """Worst-case per-slot delay, for slot-slack budgeting."""
        return us_to_ns(self.cap_us) if self.intensity > 0 else 0.0

    def perturb_schedule(self, schedule: SlotSchedule,
                         party: str) -> SlotSchedule:
        """One party's delayed view of ``schedule``."""
        sigma_ns = us_to_ns(self.sigma_us * self.intensity)
        if sigma_ns <= 0:
            return schedule
        self.events += 1
        salt = (SEED_SPACE, self.seed, _salt_int(self.name), _salt_int(party),
                int(schedule.epoch_ns))
        return PerturbedSchedule.wrap(schedule, sigma_ns=sigma_ns,
                                      cap_ns=us_to_ns(self.cap_us), salt=salt)


class StateFlush(FaultModel):
    """Temporal partitioning: periodic worst-case state flushes.

    Models the prevention approach from the RISC-V current-management
    literature: on every scheduling quantum the OS (or firmware) flushes
    the PMU's per-core current-management state by raising *every*
    core's guardband to the part's worst-case PHI class, holding it for
    ``hold_us``, then releasing it.  Each flush drags the shared rail
    through a full transition cycle and throttles every waiting core,
    so an attacker's carefully phased transitions are periodically
    overwritten by defender-controlled ones — the covert timing signal
    is partitioned into quanta the receiver cannot correlate across.

    Unlike the other models this one is a *defender* recipe (the
    ``state_flush`` row of the mitigation matrix); it is registered as
    a fault because periodic PMU-state perturbation is mechanically a
    noise source, but it is deliberately **not** part of the
    ``default`` fault suite.

    The flush cadence is deterministic (quantum boundaries, not Poisson
    arrivals): real temporal partitioning is clock-driven, and a fixed
    cadence is also the defender's best case, since the attacker cannot
    hide between irregular gaps.
    """

    name = "state-flush"

    def __init__(self, quantum_us: float = 900.0, hold_us: float = 60.0,
                 horizon_ms: float = 5000.0,
                 intensity: float = 1.0, seed: int = 0) -> None:
        super().__init__(intensity, seed)
        if quantum_us <= 0:
            raise ConfigError(f"quantum must be positive, got {quantum_us}")
        if hold_us <= 0:
            raise ConfigError(f"hold time must be positive, got {hold_us}")
        if horizon_ms <= 0:
            raise ConfigError(f"horizon must be positive, got {horizon_ms}")
        self.quantum_us = float(quantum_us)
        self.hold_us = float(hold_us)
        self.horizon_ms = float(horizon_ms)

    def params(self) -> Dict[str, float]:
        """Magnitude knobs (quantum, hold time, horizon)."""
        return {"quantum_us": self.quantum_us, "hold_us": self.hold_us,
                "horizon_ms": self.horizon_ms}

    def _worst_class(self, system: "System") -> IClass:
        """The heaviest PHI class the part executes (the flush level)."""
        return max(c for c in IClass
                   if c.width_bits <= system.config.max_vector_bits)

    def _process(self, system: "System") -> Generator:
        flush_class = self._worst_class(system)
        cores = range(system.config.n_cores)
        horizon = ms_to_ns(self.horizon_ms)
        # Intensity shortens the quantum: twice the intensity flushes
        # twice as often (the partitioning gets finer-grained).
        quantum_ns = us_to_ns(self.quantum_us) / self.intensity
        while system.now < horizon:
            yield system.sleep(quantum_ns)
            if system.now >= horizon:
                break
            for core in cores:
                system.pmu.request_up(core, flush_class)
            self.events += 1
            yield system.sleep(us_to_ns(self.hold_us))
            for core in cores:
                system.pmu.request_down(core, IClass.SCALAR_64)

    def attach(self, system: "System", injector: "FaultInjector") -> None:
        """Spawn the quantum-boundary flush process (horizon-bounded)."""
        if self.intensity <= 0:
            return
        system.spawn(self._process(system), name="fault_state_flush")
