"""The :class:`FaultInjector`: a composed suite of fault models.

An injector owns any number of :class:`~repro.faults.base.FaultModel`
instances and attaches them all to a system in one call::

    from repro import System, cannon_lake_i3_8121u
    from repro.faults import FaultInjector, default_fault_suite

    system = System(cannon_lake_i3_8121u())
    injector = FaultInjector(default_fault_suite(intensity=1.0))
    injector.attach(system)
    # every channel/session built on `system` now runs under fault

After :meth:`attach`, the injector is reachable as ``system.faults`` and
the lower layers consult it duck-typed: :class:`~repro.measure.daq.DAQCard`
calls :meth:`perturb_samples`, :class:`~repro.core.channel.CovertChannel`
calls :meth:`perturb_schedule` and :meth:`extra_slot_slack_ns`.  An
injector is bound to at most one system — fault processes hold engine
state — but a fresh injector is cheap (:func:`repro.faults.spec.parse_fault_spec`
builds one from a string, which is also the picklable currency sweeps
ship to worker processes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List

import numpy as np

from repro.errors import ConfigError
from repro.faults.base import FaultModel
from repro.core.sync import SlotSchedule
from repro.obs.tracer import current as _obs

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.measure.daq import DAQCard
    from repro.soc.system import System


class FaultInjector:
    """Attaches a composed suite of fault models to one system."""

    def __init__(self, models: Iterable[FaultModel]) -> None:
        self.models: List[FaultModel] = list(models)
        for model in self.models:
            if not isinstance(model, FaultModel):
                raise ConfigError(f"not a FaultModel: {model!r}")
        self.system: "System | None" = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, system: "System") -> "FaultInjector":
        """Install every model on ``system`` and register as ``system.faults``.

        Returns ``self`` so construction and attachment chain.
        """
        if self.system is not None:
            raise ConfigError(
                "this injector is already attached to a system; build a "
                "fresh one (fault processes hold engine state)"
            )
        if getattr(system, "faults", None) is not None:
            raise ConfigError("system already has a fault injector attached")
        self.system = system
        system.faults = self
        tracer = _obs()
        for model in self.models:
            model.attach(system, self)
            if tracer.enabled:
                tracer.instant(f"fault.attach {model.name}", "faults",
                               system.now, track="faults",
                               args={"spec": model.describe()})
        if tracer.enabled:
            tracer.metrics.counter("faults.models_attached").inc(
                len(self.models))
        return self

    def attach_daq(self, daq: "DAQCard") -> "DAQCard":
        """Route ``daq``'s sampled series through the measurement models."""
        daq.faults = self
        return daq

    # -- seam callbacks (duck-typed from lower layers) --------------------------

    def perturb_samples(self, name: str, times: np.ndarray,
                        values: np.ndarray) -> np.ndarray:
        """Corrupt one sampled series through every measurement model."""
        for model in self.models:
            if model.perturbs_measurements:
                values = model.perturb_samples(name, times, values)
        return values

    def perturb_schedule(self, schedule: SlotSchedule,
                         party: str) -> SlotSchedule:
        """One party's (possibly delayed) view of a shared schedule."""
        for model in self.models:
            if model.perturbs_schedule:
                schedule = model.perturb_schedule(schedule, party)
        return schedule

    def extra_slot_slack_ns(self) -> float:
        """Worst-case extra slot time scheduling faults can consume.

        Channels add this to their run deadline so a delayed final probe
        still lands inside the simulated window instead of raising a
        spurious :class:`~repro.errors.ProtocolError`.
        """
        return sum(model.max_delay_ns for model in self.models
                   if model.perturbs_schedule)

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> str:
        """Spec-string form of the whole suite (parseable round trip)."""
        return ";".join(model.describe() for model in self.models)

    def event_counts(self) -> Dict[str, int]:
        """Perturbation events applied so far, per model name."""
        return {model.name: model.events for model in self.models}

    def __repr__(self) -> str:
        """Debug form listing the attached models."""
        state = "attached" if self.system is not None else "detached"
        return f"<FaultInjector {state} [{self.describe()}]>"
