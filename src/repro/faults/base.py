"""Base machinery of the fault-injection subsystem.

A :class:`FaultModel` is a deterministic, seedable perturbation of the
simulation at one well-defined seam (the DAQ sample path, the PMU grant
queue, the RC thermal model, the receiver's TSC, the slot schedule).
Models are *composable*: a :class:`~repro.faults.injector.FaultInjector`
holds any number of them and attaches the whole suite to a
:class:`~repro.soc.system.System` in one call.

Determinism contract: every model draws randomness only from generators
created by :meth:`FaultModel.rng`, which seeds from ``(seed, model name,
salt)``.  Two runs with the same seeds, the same models and the same
workload produce bit-identical simulations — fault injection never makes
an experiment unrepeatable.

Intensity contract: every model scales its magnitude knobs by a single
``intensity`` factor, so sweeps (``analysis.resilience_sweep``) can turn
one dial from "clean" (0.0) through "nominal" (1.0) to "hostile" (>1).
"""

from __future__ import annotations

import abc
import zlib
from typing import TYPE_CHECKING, ClassVar, Dict, Union

import numpy as np

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.faults.injector import FaultInjector
    from repro.soc.system import System

#: Seed-space tag keeping fault RNG streams disjoint from the system's
#: own noise streams even when the user passes the same integer seed.
SEED_SPACE = 0xFA017


def _salt_int(value: Union[int, str]) -> int:
    """A stable integer for seed tuples from an int or short string."""
    if isinstance(value, int):
        return value
    return zlib.crc32(value.encode())


class FaultModel(abc.ABC):
    """One deterministic perturbation of the simulation.

    Parameters
    ----------
    intensity:
        Scales every magnitude knob of the concrete model; ``0`` renders
        the model inert, ``1`` is its nominal strength.
    seed:
        Root of the model's private random streams.
    """

    #: Spec-string identifier of the model (kebab-case, unique).
    name: ClassVar[str] = ""

    #: True when the model perturbs measured sample series (DAQ seam).
    perturbs_measurements: ClassVar[bool] = False

    #: True when the model perturbs slot schedules (sync seam).
    perturbs_schedule: ClassVar[bool] = False

    def __init__(self, intensity: float = 1.0, seed: int = 0) -> None:
        if intensity < 0:
            raise ConfigError(f"fault intensity must be >= 0, got {intensity}")
        self.intensity = float(intensity)
        self.seed = int(seed)
        #: Perturbation events applied so far (for reports and tests).
        self.events = 0

    @abc.abstractmethod
    def attach(self, system: "System", injector: "FaultInjector") -> None:
        """Install the model at its seam of ``system``.

        Called exactly once per (model, system) by
        :meth:`FaultInjector.attach`; event-driven models schedule their
        first event here, passive models (measurement/schedule seams)
        only record the handles they need.
        """

    def params(self) -> Dict[str, float]:
        """The model's magnitude knobs, for specs and ``repr``."""
        return {}

    def rng(self, *salt: Union[int, str]) -> np.random.Generator:
        """A deterministic generator for this model and ``salt``.

        Seeding from ``(SEED_SPACE, seed, name, *salt)`` keeps each
        (model, purpose) stream independent: a schedule fault drawing
        per-slot delays cannot perturb the stream a DAQ fault draws
        sample noise from, whatever the call order.
        """
        parts = (SEED_SPACE, self.seed, _salt_int(self.name))
        return np.random.default_rng(parts + tuple(_salt_int(s) for s in salt))

    def describe(self) -> str:
        """Spec-string form of this model (``name:key=value,...``)."""
        knobs = dict(self.params())
        knobs["intensity"] = self.intensity
        knobs["seed"] = self.seed
        inner = ",".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                         for k, v in knobs.items())
        return f"{self.name}:{inner}" if inner else self.name

    def __repr__(self) -> str:
        """Debug form mirroring the spec string."""
        return f"<{type(self).__name__} {self.describe()}>"
