"""On-disk incremental cache for per-module analysis results.

The full-tree run re-derives the same facts and findings on every
invocation even though almost nothing changed between two runs — the
classic incremental-analysis shape.  This module content-addresses two
kinds of per-module results, following the :class:`repro.runner.cache.
ResultCache` conventions (sha256 keys, two-level ``<key[:2]>/<key>``
sharding, atomic tempfile + ``os.replace`` writes, corrupt entries
unlinked and treated as misses):

* **facts** — the module's :func:`~repro.staticcheck.context.
  module_facts` contribution to the :class:`~repro.staticcheck.context.
  ProjectContext`, keyed on the source hash alone.  A warm run rebuilds
  the whole cross-module table without parsing a single unchanged file.
* **findings** — one entry per ``(module, pass)``, keyed on the source
  hash, the pass name *and version*, and the project digest.  The
  digest term makes per-module caching sound in the presence of
  cross-module checks: an edit that changes any signature or dataclass
  field table invalidates every module's cached findings, while
  body-only edits invalidate only the touched module.

The cache root defaults to ``$REPRO_CACHE_DIR/staticcheck`` (falling
back to ``.repro-cache/staticcheck``), so CI can persist it alongside
the sweep-result cache with one cache key.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.staticcheck.model import CacheUsage, Finding, Severity

#: Environment variable naming the shared cache root (same variable as
#: :class:`repro.runner.cache.ResultCache`).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default shared cache root when the environment does not name one.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory of the shared root holding staticcheck entries.
CACHE_SUBDIR = "staticcheck"

#: Version of the on-disk entry layout; bump on incompatible change.
CACHE_SCHEMA = 1


def default_cache_root() -> Path:
    """The staticcheck cache directory the environment selects."""
    base = Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))
    return base / CACHE_SUBDIR


def source_hash(source: str) -> str:
    """Content hash of one module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _finding_to_dict(finding: Finding) -> Dict[str, Any]:
    """JSON form of one finding for cache entries."""
    return {
        "rule": finding.rule, "path": finding.path, "line": finding.line,
        "message": finding.message, "source": finding.source,
        "severity": finding.severity.value, "fix_hint": finding.fix_hint,
        "col": finding.col,
    }


def _finding_from_dict(payload: Dict[str, Any]) -> Finding:
    """Inverse of :func:`_finding_to_dict`."""
    return Finding(
        rule=payload["rule"], path=payload["path"], line=payload["line"],
        message=payload["message"], source=payload["source"],
        severity=Severity(payload["severity"]),
        fix_hint=payload["fix_hint"], col=payload["col"])


class AnalysisCache:
    """Content-addressed store of per-module facts and findings.

    Thread- and process-safe by construction: entries are immutable
    functions of their key, written atomically, so concurrent writers
    can only race to produce identical files.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        #: Hit/miss counters for the findings side (the CI artifact).
        self.stats = CacheUsage()

    # -- keys ----------------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @staticmethod
    def _key_of(parts: Sequence[str]) -> str:
        digest = hashlib.sha256()
        for part in parts:
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def facts_key(self, path: str, src_hash: str, facts_version: int) -> str:
        """Cache key of one module's project-facts entry."""
        return self._key_of(["facts", str(CACHE_SCHEMA),
                             str(facts_version), path, src_hash])

    def findings_key(self, path: str, src_hash: str, pass_name: str,
                     pass_ver: int, project_digest: str) -> str:
        """Cache key of one ``(module, pass)`` findings entry."""
        return self._key_of(["findings", str(CACHE_SCHEMA), path, src_hash,
                             pass_name, str(pass_ver), project_digest])

    # -- raw entry IO --------------------------------------------------------

    def _read(self, key: str) -> Optional[Dict[str, Any]]:
        """Load one entry; corrupt files are unlinked and miss."""
        entry = self._entry_path(key)
        try:
            return json.loads(entry.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            try:
                entry.unlink()
            except OSError:
                pass
            return None

    def _write(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist one entry (tempfile + ``os.replace``)."""
        entry = self._entry_path(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(payload, sort_keys=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(entry.parent), suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(body)
            os.replace(tmp_name, entry)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    # -- facts ---------------------------------------------------------------

    def get_facts(self, key: str) -> Optional[Dict[str, Any]]:
        """Cached facts dict under ``key``, or None."""
        payload = self._read(key)
        if payload is None or "facts" not in payload:
            return None
        return payload["facts"]

    def put_facts(self, key: str, facts: Dict[str, Any]) -> None:
        """Persist one module's facts dict under ``key``."""
        self._write(key, {"facts": facts})

    # -- findings ------------------------------------------------------------

    def get_findings(self, key: str) -> Optional[List[Finding]]:
        """Cached findings under ``key`` (counts a hit/miss), or None."""
        payload = self._read(key)
        if payload is None or "findings" not in payload:
            self.stats.misses += 1
            return None
        try:
            findings = [_finding_from_dict(f) for f in payload["findings"]]
        except (KeyError, TypeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return findings

    def put_findings(self, key: str, findings: Sequence[Finding]) -> None:
        """Persist one ``(module, pass)`` findings list under ``key``."""
        self._write(key, {"findings": [_finding_to_dict(f)
                                       for f in findings]})
        self.stats.stored += 1
