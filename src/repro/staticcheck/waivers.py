"""Waiver-file parsing and default discovery.

The waiver file records *reviewed, deliberate* exceptions — one
``rule path-glob [substring]`` line each, ``#`` comments allowed.  It is
shared with the legacy ``repro.verify.lint`` front end, so the grammar
and the default location (``tests/lint_waivers.txt``) are unchanged;
only the set of valid rule ids has grown with the new passes.

Waivers that match nothing are reported by the driver so the file
cannot rot.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional

from repro.errors import ConfigError
from repro.staticcheck.model import Waiver
from repro.staticcheck.registry import all_rules


def parse_waivers(text: str,
                  allowed_rules: Optional[Iterable[str]] = None) -> List[Waiver]:
    """Parse waiver-file text into :class:`Waiver` entries.

    Each non-comment line is ``rule path-glob [substring...]``; the
    substring (everything after the second field) must appear in the
    offending source line for the waiver to apply.  Rule ids are
    validated against ``allowed_rules`` (default: every registered rule).
    """
    valid = tuple(allowed_rules) if allowed_rules is not None \
        else tuple(all_rules())
    waivers: List[Waiver] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 2:
            raise ConfigError(
                f"waiver line {lineno}: expected 'rule path-glob "
                f"[substring]', got {raw!r}")
        rule, path_glob = parts[0], parts[1]
        if rule not in valid:
            raise ConfigError(
                f"waiver line {lineno}: unknown rule {rule!r}; valid: "
                f"{', '.join(valid)}")
        substring = parts[2].strip() if len(parts) == 3 else None
        waivers.append(Waiver(rule=rule, path_glob=path_glob,
                              substring=substring))
    return waivers


def default_waivers_path() -> Optional[Path]:
    """The repo's waiver file (``tests/lint_waivers.txt``), if present."""
    import repro

    repo_root = Path(repro.__file__).resolve().parent.parent.parent
    candidate = repo_root / "tests" / "lint_waivers.txt"
    return candidate if candidate.is_file() else None


def load_waivers(path: Optional[Path] = None,
                 allowed_rules: Optional[Iterable[str]] = None) -> List[Waiver]:
    """Waivers from ``path`` (default: the repo waiver file, may be absent)."""
    if path is None:
        path = default_waivers_path()
        if path is None:
            return []
    return parse_waivers(Path(path).read_text(encoding="utf-8"),
                         allowed_rules=allowed_rules)
