"""Per-module and cross-module analysis context.

A :class:`ModuleContext` wraps one parsed source file (path, text, AST)
with the helpers passes keep reaching for.  A :class:`ProjectContext`
holds what a single module cannot know: the *signature table* mapping
function names to their parameter names and inferred unit tags, the
async/sync callable name sets the asyncsafety pass resolves bare calls
against, and the dataclass field table the goldenflow pass checks
mapping round-trips with — all built in a pre-scan over every module of
the run.

Name collisions are handled conservatively: two functions sharing a name
with different parameter lists make that name *ambiguous* and call sites
through it are skipped rather than guessed at; two dataclasses sharing a
name with different field tuples drop out of the field table the same
way.

The pre-scan of one module reduces to a JSON-friendly *facts* dict
(:func:`module_facts`), so the incremental engine can cache facts per
source hash and rebuild the :class:`ProjectContext` — including its
deterministic :meth:`~ProjectContext.digest` used in finding cache
keys — without re-parsing unchanged modules.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError
from repro.staticcheck.dataflow import (
    UnitTag,
    return_tag_of,
    tag_of_identifier,
)

#: Version of the facts-dict layout; bump to invalidate cached facts.
FACTS_VERSION = 1


@dataclass(frozen=True)
class FunctionSig:
    """One callable's externally visible shape for call-site checking."""

    name: str
    #: Parameter names with ``self``/``cls`` stripped.
    params: Tuple[str, ...]
    #: Unit tag inferred from each parameter's name (None = untagged).
    param_tags: Tuple[Optional[UnitTag], ...]
    #: Unit tag of the return value (from the function name), if any.
    return_tag: Optional[UnitTag] = None


def _sig_of(node: ast.AST) -> Optional[FunctionSig]:
    """Build a :class:`FunctionSig` from a def node, or None."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    args = list(node.args.posonlyargs) + list(node.args.args)
    names = [a.arg for a in args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    tags = tuple(tag_of_identifier(n) for n in names)
    return FunctionSig(node.name, tuple(names), tags, return_tag_of(node.name))


@dataclass
class ModuleContext:
    """One parsed module under analysis."""

    #: Repo-relative posix path, e.g. ``repro/pdn/droop.py``.
    path: str
    source: str
    tree: ast.Module
    lines: Sequence[str] = field(default_factory=tuple)

    @classmethod
    def from_source(cls, source: str, path: str) -> "ModuleContext":
        """Parse ``source``; raises :class:`ConfigError` on syntax errors."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise ConfigError(
                f"{path}: cannot parse for analysis: {exc}") from None
        return cls(path=path.replace("\\", "/"), source=source, tree=tree,
                   lines=tuple(source.splitlines()))

    def source_line(self, lineno: int) -> str:
        """The stripped source text of 1-based ``lineno`` (or '')."""
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def package_parts(self) -> Tuple[str, ...]:
        """Path components below the ``repro`` package root."""
        parts = self.path.split("/")
        if "repro" in parts:
            parts = parts[parts.index("repro") + 1:]
        return tuple(parts)

    def in_packages(self, names: Iterable[str]) -> bool:
        """Whether this module lives in one of the named subpackages."""
        parts = self.package_parts()
        return bool(parts) and parts[0] in tuple(names)

    def imported_module_names(self) -> Set[str]:
        """Local names bound to modules by top-level imports.

        Used to tell ``module.function`` references (fine to hand to a
        process pool) apart from bound methods on instances (not fine).
        """
        names: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                # ``from x import y`` may bind a submodule; treating every
                # from-import as module-ish would hide bound methods, so
                # only plain ``import`` counts.
                continue
        return names

    def module_level_names(self) -> Set[str]:
        """Names assigned at module scope (the module's globals)."""
        names: Set[str] = set()
        for node in self.tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        return names


def _tag_to_str(tag: Optional[UnitTag]) -> Optional[str]:
    """Serialise a unit tag as ``group`` / ``group:scale`` / None."""
    if tag is None:
        return None
    return tag.group if tag.scale is None else f"{tag.group}:{tag.scale}"


def _tag_from_str(text: Optional[str]) -> Optional[UnitTag]:
    """Inverse of :func:`_tag_to_str`."""
    if text is None:
        return None
    group, _, scale = text.partition(":")
    return UnitTag(group, scale or None)


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    """Whether a class def carries a ``@dataclass`` decorator."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _dataclass_field_names(node: ast.ClassDef) -> Tuple[str, ...]:
    """The annotated field names of a dataclass body, in order."""
    names: List[str] = []
    for stmt in node.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            names.append(stmt.target.id)
    return tuple(names)


def module_facts(module: ModuleContext) -> Dict[str, Any]:
    """The JSON-friendly cross-module facts one module contributes.

    Facts are everything :class:`ProjectContext` needs from a module:
    its callable signatures (with unit tags), which callable names are
    defined ``async def`` vs plain ``def``, and its dataclass field
    tables.  Because the dict is pure JSON, the incremental engine can
    persist it keyed on the module's source hash and skip re-parsing
    unchanged modules entirely.
    """
    signatures: List[List[Any]] = []
    async_names: Set[str] = set()
    sync_names: Set[str] = set()
    dataclasses: Dict[str, List[str]] = {}
    for node in ast.walk(module.tree):
        sig = _sig_of(node)
        if sig is not None:
            signatures.append([
                sig.name, list(sig.params),
                [_tag_to_str(tag) for tag in sig.param_tags],
                _tag_to_str(sig.return_tag),
            ])
            if isinstance(node, ast.AsyncFunctionDef):
                async_names.add(sig.name)
            else:
                sync_names.add(sig.name)
        elif isinstance(node, ast.ClassDef) and _is_dataclass_def(node):
            dataclasses[node.name] = list(_dataclass_field_names(node))
    return {
        "version": FACTS_VERSION,
        "signatures": signatures,
        "async_names": sorted(async_names),
        "sync_names": sorted(sync_names),
        "dataclasses": dataclasses,
    }


class ProjectContext:
    """Cross-module knowledge shared by every pass of one run."""

    def __init__(self) -> None:
        self._signatures: Dict[str, FunctionSig] = {}
        self._ambiguous: Set[str] = set()
        #: Callable names defined ``async def`` somewhere in the run.
        self.async_names: Set[str] = set()
        #: Callable names defined as plain ``def`` somewhere in the run.
        self.sync_names: Set[str] = set()
        self._dataclass_fields: Dict[str, Tuple[str, ...]] = {}
        self._ambiguous_dataclasses: Set[str] = set()
        self._digest: Optional[str] = None

    @classmethod
    def build(cls, modules: Iterable[ModuleContext]) -> "ProjectContext":
        """Pre-scan ``modules`` into the cross-module tables."""
        return cls.from_facts(module_facts(m) for m in modules)

    @classmethod
    def from_facts(cls, facts: Iterable[Dict[str, Any]]) -> "ProjectContext":
        """Merge per-module facts dicts (see :func:`module_facts`)."""
        project = cls()
        canonical: List[Dict[str, Any]] = []
        for entry in facts:
            canonical.append(entry)
            for name, params, tags, return_tag in entry["signatures"]:
                project.add_signature(FunctionSig(
                    name, tuple(params),
                    tuple(_tag_from_str(t) for t in tags),
                    _tag_from_str(return_tag)))
            project.async_names.update(entry["async_names"])
            project.sync_names.update(entry["sync_names"])
            for cls_name, fields_list in entry["dataclasses"].items():
                project.add_dataclass(cls_name, tuple(fields_list))
        payload = json.dumps(canonical, sort_keys=True, ensure_ascii=True)
        project._digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return project

    def add_signature(self, sig: FunctionSig) -> None:
        """Record one callable; colliding shapes mark the name ambiguous."""
        if sig.name in self._ambiguous:
            return
        existing = self._signatures.get(sig.name)
        if existing is not None and existing.params != sig.params:
            del self._signatures[sig.name]
            self._ambiguous.add(sig.name)
            return
        self._signatures[sig.name] = sig

    def signature(self, name: str) -> Optional[FunctionSig]:
        """The unambiguous signature registered under ``name``, if any."""
        return self._signatures.get(name)

    @property
    def signature_count(self) -> int:
        """How many unambiguous callables the table holds."""
        return len(self._signatures)

    def add_dataclass(self, name: str, fields_tuple: Tuple[str, ...]) -> None:
        """Record one dataclass; colliding field sets make it ambiguous."""
        if name in self._ambiguous_dataclasses:
            return
        existing = self._dataclass_fields.get(name)
        if existing is not None and existing != fields_tuple:
            del self._dataclass_fields[name]
            self._ambiguous_dataclasses.add(name)
            return
        self._dataclass_fields[name] = fields_tuple

    def dataclass_fields(self, name: str) -> Optional[Tuple[str, ...]]:
        """Field names of the unambiguous dataclass ``name``, if known."""
        return self._dataclass_fields.get(name)

    def is_async_name(self, name: str) -> bool:
        """Whether ``name`` is *only* ever defined ``async def``.

        Names defined both ways anywhere in the run are conservatively
        treated as not-async, so the asyncsafety pass never flags a
        call that might resolve to a synchronous implementation.
        """
        return name in self.async_names and name not in self.sync_names

    def digest(self) -> str:
        """Deterministic content hash of the cross-module tables.

        Part of every finding-cache key: a module's cached findings are
        only valid while the project facts every pass may consult are
        byte-identical.  Built from the canonical facts stream, so
        body-only edits that leave signatures/field tables unchanged do
        not invalidate other modules' cached findings.
        """
        if self._digest is None:
            # Built incrementally via add_signature (legacy path): hash
            # the merged tables instead of the per-module facts stream.
            payload = json.dumps({
                "signatures": sorted(
                    [s.name, list(s.params),
                     [_tag_to_str(t) for t in s.param_tags],
                     _tag_to_str(s.return_tag)]
                    for s in self._signatures.values()),
                "async": sorted(self.async_names),
                "sync": sorted(self.sync_names),
                "dataclasses": {k: list(v) for k, v in
                                sorted(self._dataclass_fields.items())},
            }, sort_keys=True)
            self._digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return self._digest
