"""Per-module and cross-module analysis context.

A :class:`ModuleContext` wraps one parsed source file (path, text, AST)
with the helpers passes keep reaching for.  A :class:`ProjectContext`
holds what a single module cannot know: the *signature table* mapping
function names to their parameter names and inferred unit tags, built in
a pre-scan over every module of the run so the dimensional pass can
check call sites against callees defined elsewhere.

Name collisions are handled conservatively: two functions sharing a name
with different parameter lists make that name *ambiguous* and call sites
through it are skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError
from repro.staticcheck.dataflow import (
    UnitTag,
    return_tag_of,
    tag_of_identifier,
)


@dataclass(frozen=True)
class FunctionSig:
    """One callable's externally visible shape for call-site checking."""

    name: str
    #: Parameter names with ``self``/``cls`` stripped.
    params: Tuple[str, ...]
    #: Unit tag inferred from each parameter's name (None = untagged).
    param_tags: Tuple[Optional[UnitTag], ...]
    #: Unit tag of the return value (from the function name), if any.
    return_tag: Optional[UnitTag] = None


def _sig_of(node: ast.AST) -> Optional[FunctionSig]:
    """Build a :class:`FunctionSig` from a def node, or None."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    args = list(node.args.posonlyargs) + list(node.args.args)
    names = [a.arg for a in args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    tags = tuple(tag_of_identifier(n) for n in names)
    return FunctionSig(node.name, tuple(names), tags, return_tag_of(node.name))


@dataclass
class ModuleContext:
    """One parsed module under analysis."""

    #: Repo-relative posix path, e.g. ``repro/pdn/droop.py``.
    path: str
    source: str
    tree: ast.Module
    lines: Sequence[str] = field(default_factory=tuple)

    @classmethod
    def from_source(cls, source: str, path: str) -> "ModuleContext":
        """Parse ``source``; raises :class:`ConfigError` on syntax errors."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise ConfigError(
                f"{path}: cannot parse for analysis: {exc}") from None
        return cls(path=path.replace("\\", "/"), source=source, tree=tree,
                   lines=tuple(source.splitlines()))

    def source_line(self, lineno: int) -> str:
        """The stripped source text of 1-based ``lineno`` (or '')."""
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def package_parts(self) -> Tuple[str, ...]:
        """Path components below the ``repro`` package root."""
        parts = self.path.split("/")
        if "repro" in parts:
            parts = parts[parts.index("repro") + 1:]
        return tuple(parts)

    def in_packages(self, names: Iterable[str]) -> bool:
        """Whether this module lives in one of the named subpackages."""
        parts = self.package_parts()
        return bool(parts) and parts[0] in tuple(names)

    def imported_module_names(self) -> Set[str]:
        """Local names bound to modules by top-level imports.

        Used to tell ``module.function`` references (fine to hand to a
        process pool) apart from bound methods on instances (not fine).
        """
        names: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                # ``from x import y`` may bind a submodule; treating every
                # from-import as module-ish would hide bound methods, so
                # only plain ``import`` counts.
                continue
        return names

    def module_level_names(self) -> Set[str]:
        """Names assigned at module scope (the module's globals)."""
        names: Set[str] = set()
        for node in self.tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        return names


class ProjectContext:
    """Cross-module knowledge shared by every pass of one run."""

    def __init__(self) -> None:
        self._signatures: Dict[str, FunctionSig] = {}
        self._ambiguous: Set[str] = set()

    @classmethod
    def build(cls, modules: Iterable[ModuleContext]) -> "ProjectContext":
        """Pre-scan ``modules`` into a signature table."""
        project = cls()
        for module in modules:
            for node in ast.walk(module.tree):
                sig = _sig_of(node)
                if sig is not None:
                    project.add_signature(sig)
        return project

    def add_signature(self, sig: FunctionSig) -> None:
        """Record one callable; colliding shapes mark the name ambiguous."""
        if sig.name in self._ambiguous:
            return
        existing = self._signatures.get(sig.name)
        if existing is not None and existing.params != sig.params:
            del self._signatures[sig.name]
            self._ambiguous.add(sig.name)
            return
        self._signatures[sig.name] = sig

    def signature(self, name: str) -> Optional[FunctionSig]:
        """The unambiguous signature registered under ``name``, if any."""
        return self._signatures.get(name)

    @property
    def signature_count(self) -> int:
        """How many unambiguous callables the table holds."""
        return len(self._signatures)
