"""The analysis driver: files in, :class:`Report` out.

Orchestration order:

1. collect every ``*.py`` under the requested paths (source text only —
   parsing is deferred until a pass actually needs the AST);
2. build the :class:`ProjectContext` from per-module *facts* (signature
   table, async/sync name sets, dataclass fields), reading them from
   the incremental cache where the source hash matches;
3. run the selected passes over every module — per ``(module, pass)``
   results come from the findings cache when the source hash, pass
   version and project digest all match, from a process pool when
   ``jobs > 1``, inline otherwise;
4. filter to the selected rules, sort, then apply waivers and baseline.

``analyze_source`` is the single-snippet entry the fixture tests and
the ``repro.verify.lint`` shim use; ``analyze_paths`` is the full-tree
entry behind the CLI and CI gate.  ``--changed`` mode narrows step 3
to git-touched modules plus their name-level dependents while still
building the project tables from the whole tree.
"""

from __future__ import annotations

import re
import subprocess
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple)

from repro.staticcheck.baseline import apply_baseline, load_baseline
from repro.staticcheck.cache import AnalysisCache, source_hash
from repro.staticcheck.context import (
    FACTS_VERSION,
    ModuleContext,
    ProjectContext,
    module_facts,
)
from repro.staticcheck.model import Finding, PassTiming, Report, Waiver
from repro.staticcheck.registry import (
    expand_selection,
    pass_version,
    passes_for,
)
from repro.staticcheck.waivers import load_waivers


def default_root() -> Path:
    """The package source tree analysed by default (``src/repro``)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _sort_key(finding: Finding):
    return (finding.path, finding.line, finding.rule)


@dataclass
class _SourceRecord:
    """One collected module: identity and lazily parsed context."""

    rel: str
    abs_path: Optional[Path]
    source: str
    _ctx: Optional[ModuleContext] = None
    _hash: Optional[str] = None

    @property
    def ctx(self) -> ModuleContext:
        """The parsed :class:`ModuleContext` (parsed on first access)."""
        if self._ctx is None:
            self._ctx = ModuleContext.from_source(self.source, self.rel)
        return self._ctx

    @property
    def src_hash(self) -> str:
        """Content hash of the module source (memoised)."""
        if self._hash is None:
            self._hash = source_hash(self.source)
        return self._hash


def _collect_sources(paths: Sequence[Path]) -> List[_SourceRecord]:
    """Read every ``*.py`` reachable from ``paths`` without parsing.

    Module paths are reported relative to each argument's parent for
    directories (so ``src/repro`` reports ``repro/...``) and to the
    file's own parent directory for single files.
    """
    records: List[_SourceRecord] = []
    for base in paths:
        base = Path(base)
        if base.is_dir():
            for path in sorted(base.rglob("*.py")):
                rel = path.relative_to(base.parent).as_posix()
                records.append(_SourceRecord(
                    rel, path.resolve(),
                    path.read_text(encoding="utf-8")))
        else:
            records.append(_SourceRecord(
                base.name, base.resolve(),
                base.read_text(encoding="utf-8")))
    return records


def _collect_modules(paths: Sequence[Path]) -> List[ModuleContext]:
    """Parse every ``*.py`` reachable from ``paths`` (legacy entry)."""
    return [record.ctx for record in _collect_sources(paths)]


def run_passes(modules: Sequence[ModuleContext],
               rules: Optional[Iterable[str]] = None,
               project: Optional[ProjectContext] = None) -> List[Finding]:
    """Run the selected passes over parsed modules; sorted findings.

    ``rules`` may mix rule ids and pass names (a pass name selects all
    of its rules).
    """
    if project is None:
        project = ProjectContext.build(modules)
    selected = tuple(rules) if rules is not None else None
    findings: List[Finding] = []
    for pass_obj in passes_for(selected):
        for module in modules:
            findings.extend(pass_obj.run(module, project))
    if selected is not None:
        wanted = set(expand_selection(selected))
        findings = [f for f in findings if f.rule in wanted]
    return sorted(findings, key=_sort_key)


def analyze_source(source: str, path: str = "<string>",
                   rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Analyse one source text under a virtual ``path``.

    The project context contains just this module, so cross-module
    signature checks see only what the snippet itself defines (plus the
    built-in ``repro.units`` conventions).
    """
    module = ModuleContext.from_source(source, path)
    return run_passes([module], rules=rules)


# -- project facts ------------------------------------------------------------

def _project_for(records: Sequence[_SourceRecord],
                 cache: Optional[AnalysisCache]) -> ProjectContext:
    """Build the cross-module context, reading cached facts when valid."""
    facts_list: List[Dict[str, Any]] = []
    for record in records:
        facts = None
        key = None
        if cache is not None:
            key = cache.facts_key(record.rel, record.src_hash, FACTS_VERSION)
            facts = cache.get_facts(key)
        if facts is None:
            facts = module_facts(record.ctx)
            if cache is not None and key is not None:
                cache.put_facts(key, facts)
        facts_list.append(facts)
    return ProjectContext.from_facts(facts_list)


# -- changed-module selection -------------------------------------------------

def _git_changed_files(anchor: Path) -> Optional[Set[Path]]:
    """Absolute paths git reports as modified or untracked, or None.

    Returns None when ``anchor`` is not inside a git work tree (the
    caller then falls back to analysing everything).
    """
    cwd = anchor if anchor.is_dir() else anchor.parent
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"], cwd=cwd,
            capture_output=True, text=True, check=True,
            timeout=30).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd,
            capture_output=True, text=True, check=True, timeout=30).stdout
    except (OSError, subprocess.SubprocessError):
        return None
    root = Path(top)
    changed: Set[Path] = set()
    for line in status.splitlines():
        if len(line) < 4:
            continue
        rel = line[3:]
        if " -> " in rel:  # rename: analyse the new location
            rel = rel.split(" -> ", 1)[1]
        changed.add((root / rel.strip().strip('"')).resolve())
    return changed


def _defined_names(record: _SourceRecord) -> Set[str]:
    """Top-level def/class names a changed module exports."""
    names: Set[str] = set()
    for node in record.ctx.tree.body:
        name = getattr(node, "name", None)
        if name:
            names.add(name)
    return names


_IDENTIFIER_RE = re.compile(r"\w+")


def _select_changed(records: Sequence[_SourceRecord]
                    ) -> Optional[List[_SourceRecord]]:
    """The records ``--changed`` mode analyses, or None for all.

    A module is selected when git reports its file as touched, or when
    it mentions (by identifier) a top-level name a touched module
    defines — the one-hop signature-table dependents.
    """
    anchor = next((r.abs_path for r in records if r.abs_path is not None),
                  None)
    if anchor is None:
        return None
    changed_files = _git_changed_files(anchor)
    if changed_files is None:
        return None
    touched = [r for r in records if r.abs_path in changed_files]
    if not touched:
        return []
    exported: Set[str] = set()
    for record in touched:
        exported |= _defined_names(record)
    selected: Dict[str, _SourceRecord] = {r.rel: r for r in touched}
    for record in records:
        if record.rel in selected or not exported:
            continue
        identifiers = set(_IDENTIFIER_RE.findall(record.source))
        if identifiers & exported:
            selected[record.rel] = record
    return [r for r in records if r.rel in selected]


# -- pass execution -----------------------------------------------------------

def _run_pass_on_module(pass_name: str, rel: str, source: str
                        ) -> Tuple[List[Finding], float]:
    """Execute one pass over one module; ``(findings, wall_ms)``.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it; the
    worker re-parses from source (ASTs don't travel well) and reuses
    the globally shared project context installed by
    :func:`_pool_init`.
    """
    from repro.staticcheck.registry import get_pass

    module = ModuleContext.from_source(source, rel)
    started = time.perf_counter()
    findings = get_pass(pass_name).run(module, _worker_project())
    wall_ms = (time.perf_counter() - started) * 1e3
    return findings, wall_ms


#: Worker-side project context installed by the pool initialiser.
_WORKER_PROJECT: List[ProjectContext] = []


def _pool_init(project: ProjectContext) -> None:
    """Process-pool initialiser: share one pickled project per worker."""
    _WORKER_PROJECT.clear()
    _WORKER_PROJECT.append(project)


def _worker_project() -> ProjectContext:
    """The project context for this process (worker or parent)."""
    return _WORKER_PROJECT[0]


def _analyze_chunk(chunk: Sequence[Tuple[str, str, Tuple[str, ...]]]
                   ) -> List[Tuple[str, Dict[str, List[Finding]],
                                   Dict[str, float]]]:
    """Worker task: run the named passes over a chunk of modules.

    Each chunk item is ``(rel, source, pass_names)``; the return value
    mirrors it as ``(rel, {pass: findings}, {pass: wall_ms})``.
    """
    results = []
    for rel, source, pass_names in chunk:
        per_pass: Dict[str, List[Finding]] = {}
        times: Dict[str, float] = {}
        for pass_name in pass_names:
            findings, wall_ms = _run_pass_on_module(pass_name, rel, source)
            per_pass[pass_name] = findings
            times[pass_name] = wall_ms
        results.append((rel, per_pass, times))
    return results


def _execute_misses(misses: Dict[str, List[str]],
                    records_by_rel: Dict[str, _SourceRecord],
                    jobs: int,
                    ) -> Tuple[Dict[Tuple[str, str], List[Finding]],
                               Dict[str, float], Dict[str, int]]:
    """Run every cache-missed ``(module, pass)`` pair, pooled or inline.

    Returns findings per pair plus per-pass wall-time and executed
    module counts for the timing report.
    """
    produced: Dict[Tuple[str, str], List[Finding]] = {}
    wall_ms: Dict[str, float] = {}
    executed: Dict[str, int] = {}

    def absorb(rel: str, per_pass: Dict[str, List[Finding]],
               times: Dict[str, float]) -> None:
        for pass_name, findings in per_pass.items():
            produced[(rel, pass_name)] = findings
            wall_ms[pass_name] = wall_ms.get(pass_name, 0.0) \
                + times[pass_name]
            executed[pass_name] = executed.get(pass_name, 0) + 1

    items = [(rel, records_by_rel[rel].source, tuple(pass_names))
             for rel, pass_names in misses.items()]
    if jobs > 1 and len(items) > 1:
        workers = min(jobs, len(items))
        chunks = [items[i::workers] for i in range(workers)]
        project = _worker_project()
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_pool_init,
                initargs=(project,)) as executor:
            for chunk_result in executor.map(_analyze_chunk, chunks):
                for rel, per_pass, times in chunk_result:
                    absorb(rel, per_pass, times)
    else:
        for rel, source, pass_names in items:
            per_pass = {}
            times = {}
            for pass_name in pass_names:
                findings, elapsed_ms = _run_pass_on_module(
                    pass_name, rel, source)
                per_pass[pass_name] = findings
                times[pass_name] = elapsed_ms
            absorb(rel, per_pass, times)
    return produced, wall_ms, executed


def run_passes_incremental(records: Sequence[_SourceRecord],
                           selected: Optional[Tuple[str, ...]],
                           project: ProjectContext,
                           cache: Optional[AnalysisCache],
                           jobs: int,
                           report: Report) -> List[Finding]:
    """Cache-aware pass execution over collected modules.

    Fills ``report.timings`` (and ``report.cache`` when caching is on)
    as a side effect; returns the sorted, rule-filtered findings.
    """
    active = passes_for(selected)
    records_by_rel = {r.rel: r for r in records}
    digest = project.digest()
    _pool_init(project)  # install for inline execution and pool workers

    cached: Dict[Tuple[str, str], List[Finding]] = {}
    keys: Dict[Tuple[str, str], str] = {}
    misses: Dict[str, List[str]] = {}
    for record in records:
        for pass_obj in active:
            pair = (record.rel, pass_obj.name)
            if cache is not None:
                key = cache.findings_key(
                    record.rel, record.src_hash, pass_obj.name,
                    pass_version(pass_obj), digest)
                keys[pair] = key
                hit = cache.get_findings(key)
                if hit is not None:
                    cached[pair] = hit
                    continue
            misses.setdefault(record.rel, []).append(pass_obj.name)

    produced, wall_ms, executed = _execute_misses(
        misses, records_by_rel, jobs)
    if cache is not None:
        for pair, findings in produced.items():
            cache.put_findings(keys[pair], findings)
        report.cache = cache.stats

    findings: List[Finding] = []
    per_pass_total: Dict[str, int] = {}
    for pair, pair_findings in list(cached.items()) + list(produced.items()):
        findings.extend(pair_findings)
        pass_name = pair[1]
        per_pass_total[pass_name] = per_pass_total.get(pass_name, 0) \
            + len(pair_findings)
    report.timings = [
        PassTiming(pass_name=pass_obj.name,
                   wall_ms=round(wall_ms.get(pass_obj.name, 0.0), 3),
                   modules=executed.get(pass_obj.name, 0),
                   findings=per_pass_total.get(pass_obj.name, 0))
        for pass_obj in active
    ]

    if selected is not None:
        wanted = set(expand_selection(selected))
        findings = [f for f in findings if f.rule in wanted]
    return sorted(findings, key=_sort_key)


def analyze_paths(paths: Optional[Sequence[Path]] = None,
                  rules: Optional[Iterable[str]] = None,
                  waivers: Optional[Iterable[Waiver]] = None,
                  waivers_path: Optional[Path] = None,
                  baseline_path: Optional[Path] = None,
                  cache_dir: Optional[Path] = None,
                  jobs: int = 1,
                  changed_only: bool = False) -> Report:
    """Full analysis of source trees with waivers and baseline applied.

    ``paths`` defaults to the installed ``repro`` package sources.
    ``waivers`` wins over ``waivers_path``; with neither given the repo
    waiver file (``tests/lint_waivers.txt``) is used when present.
    ``rules`` may mix rule ids and pass names.

    ``cache_dir`` enables the incremental findings cache rooted there;
    ``jobs > 1`` fans cache-missed modules out over a process pool;
    ``changed_only`` narrows analysis to git-touched modules plus their
    name-level dependents (project tables still cover the whole tree,
    and stale-baseline / unused-waiver detection is restricted to the
    analysed subset, since unanalysed modules can't prove staleness).
    """
    roots = [Path(p) for p in paths] if paths else [default_root()]
    records = _collect_sources(roots)
    cache = AnalysisCache(cache_dir) if cache_dir is not None else None
    selected = tuple(rules) if rules is not None else None
    if selected is not None:
        selected = expand_selection(selected)

    project = _project_for(records, cache)
    analyzed = records
    if changed_only:
        subset = _select_changed(records)
        if subset is not None:
            analyzed = subset

    report = Report(files_analyzed=len(analyzed),
                    baseline_path=(str(baseline_path)
                                   if baseline_path is not None else None),
                    roots=tuple(str(p) for p in roots),
                    changed_only=changed_only)
    findings = run_passes_incremental(
        analyzed, selected, project, cache, jobs, report)

    if waivers is not None:
        waiver_list = list(waivers)
    else:
        waiver_list = load_waivers(waivers_path)
    if selected is not None:
        wanted = set(selected)
        waiver_list = [w for w in waiver_list if w.rule in wanted]

    used: Dict[int, bool] = {}
    unwaived: List[Finding] = []
    for finding in findings:
        matched = False
        for index, waiver in enumerate(waiver_list):
            if waiver.matches(finding):
                used[index] = True
                matched = True
                break
        (report.waived if matched else unwaived).append(finding)
    report.unused_waivers = [
        waiver for index, waiver in enumerate(waiver_list)
        if index not in used
    ]

    entries = load_baseline(baseline_path)
    new, covered, unused = apply_baseline(unwaived, entries)
    if changed_only:
        # A module outside the analysed subset produced no findings this
        # run, so its baseline entries and waivers can't be proven stale.
        analyzed_paths = {record.rel for record in analyzed}
        unused = [e for e in unused if e["path"] in analyzed_paths]
        report.unused_waivers = []
    report.findings = new
    report.baselined = covered
    report.unused_baseline = unused
    return report
