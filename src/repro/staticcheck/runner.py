"""The analysis driver: files in, :class:`Report` out.

Orchestration order:

1. parse every ``*.py`` under the requested paths into
   :class:`ModuleContext` s;
2. pre-scan them into a :class:`ProjectContext` (the signature table the
   dimensional pass checks call sites against);
3. run the selected passes over every module;
4. filter to the selected rules, sort, then apply waivers and baseline.

``analyze_source`` is the single-snippet entry the fixture tests and
the ``repro.verify.lint`` shim use; ``analyze_paths`` is the full-tree
entry behind the CLI and CI gate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.staticcheck.baseline import apply_baseline, load_baseline
from repro.staticcheck.context import ModuleContext, ProjectContext
from repro.staticcheck.model import Finding, Report, Waiver
from repro.staticcheck.registry import passes_for
from repro.staticcheck.waivers import load_waivers


def default_root() -> Path:
    """The package source tree analysed by default (``src/repro``)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _sort_key(finding: Finding):
    return (finding.path, finding.line, finding.rule)


def _collect_modules(paths: Sequence[Path]) -> List[ModuleContext]:
    """Parse every ``*.py`` reachable from ``paths``.

    Module paths are reported relative to the deepest directory named
    like a source root parent — concretely, relative to each argument's
    parent for directories (so ``src/repro`` reports ``repro/...``) and
    to the file's own parent directory for single files.
    """
    modules: List[ModuleContext] = []
    for base in paths:
        base = Path(base)
        if base.is_dir():
            for path in sorted(base.rglob("*.py")):
                rel = path.relative_to(base.parent).as_posix()
                modules.append(ModuleContext.from_source(
                    path.read_text(encoding="utf-8"), rel))
        else:
            modules.append(ModuleContext.from_source(
                base.read_text(encoding="utf-8"), base.name))
    return modules


def run_passes(modules: Sequence[ModuleContext],
               rules: Optional[Iterable[str]] = None,
               project: Optional[ProjectContext] = None) -> List[Finding]:
    """Run the selected passes over parsed modules; sorted findings."""
    if project is None:
        project = ProjectContext.build(modules)
    selected = tuple(rules) if rules is not None else None
    findings: List[Finding] = []
    for pass_obj in passes_for(selected):
        for module in modules:
            findings.extend(pass_obj.run(module, project))
    if selected is not None:
        wanted = set(selected)
        findings = [f for f in findings if f.rule in wanted]
    return sorted(findings, key=_sort_key)


def analyze_source(source: str, path: str = "<string>",
                   rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Analyse one source text under a virtual ``path``.

    The project context contains just this module, so cross-module
    signature checks see only what the snippet itself defines (plus the
    built-in ``repro.units`` conventions).
    """
    module = ModuleContext.from_source(source, path)
    return run_passes([module], rules=rules)


def analyze_paths(paths: Optional[Sequence[Path]] = None,
                  rules: Optional[Iterable[str]] = None,
                  waivers: Optional[Iterable[Waiver]] = None,
                  waivers_path: Optional[Path] = None,
                  baseline_path: Optional[Path] = None) -> Report:
    """Full analysis of source trees with waivers and baseline applied.

    ``paths`` defaults to the installed ``repro`` package sources.
    ``waivers`` wins over ``waivers_path``; with neither given the repo
    waiver file (``tests/lint_waivers.txt``) is used when present.
    """
    roots = [Path(p) for p in paths] if paths else [default_root()]
    modules = _collect_modules(roots)
    findings = run_passes(modules, rules=rules)

    if waivers is not None:
        waiver_list = list(waivers)
    else:
        waiver_list = load_waivers(waivers_path)
    if rules is not None:
        wanted = set(rules)
        waiver_list = [w for w in waiver_list if w.rule in wanted]

    report = Report(files_analyzed=len(modules))
    used: Dict[int, bool] = {}
    unwaived: List[Finding] = []
    for finding in findings:
        matched = False
        for index, waiver in enumerate(waiver_list):
            if waiver.matches(finding):
                used[index] = True
                matched = True
                break
        (report.waived if matched else unwaived).append(finding)
    report.unused_waivers = [
        waiver for index, waiver in enumerate(waiver_list)
        if index not in used
    ]

    entries = load_baseline(baseline_path)
    new, covered, unused = apply_baseline(unwaived, entries)
    report.findings = new
    report.baselined = covered
    report.unused_baseline = unused
    return report
