"""Unit-tag algebra and the lightweight intra-function dataflow layer.

The simulator's unit system (``repro.units``) is coherent — ns, GHz, V,
A, nF — precisely so that the physics needs no conversion factors.  The
flip side is that nothing in the type system distinguishes a ``float``
of nanoseconds from a ``float`` of microseconds; a dropped ``us_to_ns``
is silent until a guardband is 1000x too long.

This module gives identifiers back their units:

* :func:`tag_of_identifier` infers a :class:`UnitTag` from naming
  conventions (``_ns``/``_us``/``_ghz``/``vcc``/``icc``/... suffix
  components; names containing ``per`` are compound units and stay
  untagged);
* :func:`scan_function` runs a single forward pass over one function
  body, propagating tags through assignments, calls (via the project
  signature table and the ``<src>_to_<dst>`` converter convention) and
  returns, and records :class:`Event` s — unit-mixing arithmetic,
  mismatched call arguments, conversions dropped on assignment — for
  the dimensional pass to turn into findings.

The dataflow is deliberately conservative: an unknown tag on either
side of an operation silences the check, so only provably-conflicting
code is reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.context import ProjectContext

#: Scale keyword -> dimension group.
_SCALE_GROUP: Dict[str, str] = {
    "ns": "time", "us": "time", "ms": "time", "s": "time",
    "ghz": "freq", "mhz": "freq", "khz": "freq", "hz": "freq",
    "v": "volt", "mv": "volt",
    "a": "current", "ma": "current",
    "nf": "capacitance", "pf": "capacitance",
    "ohm": "resistance", "mohm": "resistance",
    "w": "power", "mw": "power",
    "c": "temp", "degc": "temp",
    "cycles": "cycles",
    "bits": "bits",
}

#: Scales that are a single letter: matched only in constrained
#: positions (first or last component of a multi-part name) because a
#: lone ``s`` or ``v`` component is too easy to collide with.
_SINGLE_LETTER = frozenset({"s", "v", "a", "w", "c"})

#: Word components that imply a group (and sometimes the coherent
#: scale) without being a unit suffix themselves.
_WORD_TAGS: Dict[str, "UnitTag"] = {}


@dataclass(frozen=True)
class UnitTag:
    """A dimension group plus an optional concrete scale within it."""

    group: str
    scale: Optional[str] = None

    @classmethod
    def from_scale(cls, scale: str) -> "UnitTag":
        """The tag for one scale keyword (``ns`` -> time/ns)."""
        return cls(_SCALE_GROUP[scale], scale)

    def conflicts(self, other: "UnitTag") -> bool:
        """True when mixing the two tags is dimensionally wrong.

        Different groups always conflict; within a group, two *known*
        scales conflict when they differ (adding us to ns is exactly the
        dropped-conversion bug this layer exists to catch).
        """
        if self.group != other.group:
            return True
        return (self.scale is not None and other.scale is not None
                and self.scale != other.scale)

    def label(self) -> str:
        """Human-readable rendering, e.g. ``ns`` or ``time``."""
        return self.scale if self.scale is not None else self.group


_WORD_TAGS.update({
    "vcc": UnitTag("volt", "v"),
    "vdd": UnitTag("volt", "v"),
    "volt": UnitTag("volt", "v"),
    "volts": UnitTag("volt", "v"),
    "voltage": UnitTag("volt", "v"),
    "icc": UnitTag("current", "a"),
    "amp": UnitTag("current", "a"),
    "amps": UnitTag("current", "a"),
    "watts": UnitTag("power", "w"),
    "cdyn": UnitTag("capacitance", "nf"),
    "freq": UnitTag("freq", None),
    "frequency": UnitTag("freq", None),
    "temp": UnitTag("temp", "degc"),
    "temperature": UnitTag("temp", "degc"),
})

#: Bare names treated as generic simulated-time values (group known,
#: scale unknown, so they never conflict with a concrete time scale).
_GENERIC_TIME_NAMES = frozenset({"t", "t0", "t1", "dt"})

#: :mod:`repro.units` helpers whose return scale is not derivable from
#: the name by suffix scanning (``ns_for_cycles`` returns ns, but the
#: reverse component scan would read ``cycles``).
BUILTIN_RETURN_SCALES: Dict[str, Optional[str]] = {
    "dynamic_current": "a",
    "dynamic_power": "w",
    "cycles_at": "cycles",
    "ns_for_cycles": "ns",
    "bits_per_second": None,
}


def return_tag_of(name: str) -> Optional["UnitTag"]:
    """The unit tag a function named ``name`` is declared to return."""
    if name in BUILTIN_RETURN_SCALES:
        scale = BUILTIN_RETURN_SCALES[name]
        return UnitTag.from_scale(scale) if scale else None
    return tag_of_identifier(name)


def tag_of_identifier(name: str) -> Optional[UnitTag]:
    """Infer a unit tag from an identifier's naming convention.

    Components are the lowercased ``_``-separated parts; they are
    scanned from the end so ``idle_close_us`` reads as microseconds.
    Names containing a ``per`` component (``slew_mv_per_us``,
    ``r_th_c_per_w``) are compound units and stay untagged.
    """
    if not name:
        return None
    components = [c for c in name.lower().split("_") if c]
    if not components or "per" in components:
        return None
    if len(components) == 1 and components[0] in _GENERIC_TIME_NAMES:
        return UnitTag("time", None)
    for index in range(len(components) - 1, -1, -1):
        component = components[index]
        if component in _SCALE_GROUP:
            if component in _SINGLE_LETTER:
                # Single letters only bind as a clear prefix or suffix
                # of a multi-part name (``rail_v``, ``tau_s``, ``v_now``).
                if len(components) < 2 or index not in (0, len(components) - 1):
                    continue
            return UnitTag.from_scale(component)
        if component in _WORD_TAGS:
            return _WORD_TAGS[component]
    return None


@dataclass(frozen=True)
class Event:
    """One dataflow observation the dimensional pass reports on.

    ``kind`` is one of ``mix-arith``, ``mix-compare``, ``freq-div``,
    ``arg-mismatch``, ``assign-mismatch`` and ``return-mismatch``.
    """

    kind: str
    node: ast.AST
    left: Optional[UnitTag] = None
    right: Optional[UnitTag] = None
    #: Callee / target / function name, depending on kind.
    name: str = ""
    #: Parameter name for ``arg-mismatch`` events.
    param: str = ""


def _converter_tags(name: str) -> Optional[tuple]:
    """(arg_tag, return_tag) for ``<src>_to_<dst>`` converter names."""
    if "_to_" not in name:
        return None
    src, _, dst = name.partition("_to_")
    if src in _SCALE_GROUP and dst in _SCALE_GROUP:
        return UnitTag.from_scale(src), UnitTag.from_scale(dst)
    return None


def _is_constant_number(node: ast.AST) -> bool:
    """Whether a node is a bare numeric literal (possibly signed)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value,
                                                         (int, float))


class _Scanner:
    """Expression/statement walker maintaining one unit environment."""

    _BARRIER = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

    def __init__(self, project: "ProjectContext") -> None:
        self.project = project
        self.env: Dict[str, Optional[UnitTag]] = {}
        self.events: List[Event] = []

    # -- expression tagging -------------------------------------------------

    def tag(self, node: Optional[ast.AST]) -> Optional[UnitTag]:
        """The unit tag of an expression, recording events on the way."""
        if node is None or isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return tag_of_identifier(node.id)
        if isinstance(node, ast.Attribute):
            self.tag(node.value)
            return tag_of_identifier(node.attr)
        if isinstance(node, ast.Subscript):
            self.tag(node.slice)
            base = node.value
            if isinstance(base, ast.Name):
                return tag_of_identifier(base.id)
            if isinstance(base, ast.Attribute):
                return tag_of_identifier(base.attr)
            return self.tag(base)
        if isinstance(node, ast.UnaryOp):
            return self.tag(node.operand)
        if isinstance(node, ast.BinOp):
            return self._tag_binop(node)
        if isinstance(node, ast.Compare):
            self._tag_compare(node)
            return None
        if isinstance(node, ast.Call):
            return self._tag_call(node)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.tag(value)
            return None
        if isinstance(node, ast.IfExp):
            self.tag(node.test)
            body = self.tag(node.body)
            orelse = self.tag(node.orelse)
            return body if body is not None else orelse
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for elt in node.elts:
                self.tag(elt)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                self.tag(key)
            for value in node.values:
                self.tag(value)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                self.tag(gen.iter)
                for cond in gen.ifs:
                    self.tag(cond)
            self.tag(node.elt)
            return None
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                self.tag(gen.iter)
            self.tag(node.key)
            self.tag(node.value)
            return None
        if isinstance(node, ast.Starred):
            return self.tag(node.value)
        # Lambdas, f-strings, awaits, etc: no unit information.
        return None

    def _tag_binop(self, node: ast.BinOp) -> Optional[UnitTag]:
        left = self.tag(node.left)
        right = self.tag(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                if left.conflicts(right):
                    self.events.append(Event("mix-arith", node, left, right))
                    return None
                return UnitTag(left.group,
                               left.scale if left.scale is not None
                               else right.scale)
            return left if left is not None else right
        if isinstance(node.op, ast.Mult):
            if _is_constant_number(node.left) or _is_constant_number(node.right):
                return None  # explicit scaling changes the unit
            tags = {left, right}
            if UnitTag("time", "ns") in tags and UnitTag("freq", "ghz") in tags:
                return UnitTag("cycles", "cycles")
            return None
        if isinstance(node.op, ast.Div):
            if left is not None and right is not None:
                if left == UnitTag("cycles", "cycles") and right.group == "freq":
                    return UnitTag("time", "ns") if right.scale == "ghz" else None
                if left.group == "time" and right.group == "freq":
                    self.events.append(Event("freq-div", node, left, right))
                    return None
            return None
        return None

    def _tag_compare(self, node: ast.Compare) -> None:
        sides = [node.left] + list(node.comparators)
        tags = [self.tag(side) for side in sides]
        for (a, b) in zip(tags, tags[1:]):
            if a is not None and b is not None and a.conflicts(b):
                self.events.append(Event("mix-compare", node, a, b))

    def _tag_call(self, node: ast.Call) -> Optional[UnitTag]:
        for arg in node.args:
            self.tag(arg)
        for kw in node.keywords:
            self.tag(kw.value)
        func = node.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            self.tag(func.value)
            name = func.attr
        if not name:
            return None
        if name in ("abs", "min", "max", "round", "float"):
            tags = [self.tag(arg) for arg in node.args]
            known = [t for t in tags if t is not None]
            for (a, b) in zip(known, known[1:]):
                if a.conflicts(b):
                    self.events.append(Event("mix-arith", node, a, b,
                                             name=name))
            return known[0] if known else None
        converter = _converter_tags(name)
        if converter is not None:
            expected, returned = converter
            if len(node.args) == 1:
                actual = self.tag(node.args[0])
                if actual is not None and actual.conflicts(expected):
                    self.events.append(Event(
                        "arg-mismatch", node, expected, actual,
                        name=name, param=name.partition("_to_")[0]))
            return returned
        sig = self.project.signature(name)
        if sig is None:
            return None
        for position, arg in enumerate(node.args):
            if position >= len(sig.params) or isinstance(arg, ast.Starred):
                break
            expected = sig.param_tags[position]
            actual = self.tag(arg)
            if (expected is not None and actual is not None
                    and actual.conflicts(expected)):
                self.events.append(Event(
                    "arg-mismatch", node, expected, actual,
                    name=name, param=sig.params[position]))
        for kw in node.keywords:
            if kw.arg is None or kw.arg not in sig.params:
                continue
            expected = sig.param_tags[sig.params.index(kw.arg)]
            actual = self.tag(kw.value)
            if (expected is not None and actual is not None
                    and actual.conflicts(expected)):
                self.events.append(Event(
                    "arg-mismatch", node, expected, actual,
                    name=name, param=kw.arg))
        return sig.return_tag

    # -- statement transfer -------------------------------------------------

    def run(self, fn: ast.AST) -> List[Event]:
        """Scan one function body; returns the recorded events."""
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = list(fn.args.posonlyargs) + list(fn.args.args) + \
            list(fn.args.kwonlyargs)
        for arg in args:
            if arg.arg in ("self", "cls"):
                continue
            self.env[arg.arg] = tag_of_identifier(arg.arg)
        return_tag = return_tag_of(fn.name)
        self._walk_body(fn.body, fn.name, return_tag)
        return self.events

    def _walk_body(self, body: Sequence[ast.stmt], fn_name: str,
                   return_tag: Optional[UnitTag]) -> None:
        for stmt in body:
            self._walk_stmt(stmt, fn_name, return_tag)

    def _walk_stmt(self, stmt: ast.stmt, fn_name: str,
                   return_tag: Optional[UnitTag]) -> None:
        if isinstance(stmt, self._BARRIER):
            return  # nested scopes are scanned independently
        if isinstance(stmt, ast.Assign):
            value_tag = self.tag(stmt.value)
            if len(stmt.targets) == 1:
                self._bind(stmt.targets[0], value_tag, stmt)
            else:
                for target in stmt.targets:
                    self._bind(target, value_tag, stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            value_tag = self.tag(stmt.value) if stmt.value is not None else None
            self._bind(stmt.target, value_tag, stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            value_tag = self.tag(stmt.value)
            target_tag = self.tag(stmt.target)
            if (isinstance(stmt.op, (ast.Add, ast.Sub))
                    and target_tag is not None and value_tag is not None
                    and target_tag.conflicts(value_tag)):
                self.events.append(Event("mix-arith", stmt, target_tag,
                                         value_tag))
            return
        if isinstance(stmt, ast.Return):
            value_tag = self.tag(stmt.value)
            if (return_tag is not None and value_tag is not None
                    and value_tag.conflicts(return_tag)):
                self.events.append(Event("return-mismatch", stmt, return_tag,
                                         value_tag, name=fn_name))
            return
        if isinstance(stmt, ast.Expr):
            self.tag(stmt.value)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self.tag(stmt.test)
            self._walk_body(stmt.body, fn_name, return_tag)
            self._walk_body(stmt.orelse, fn_name, return_tag)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.tag(stmt.iter)
            for leaf in ast.walk(stmt.target):
                if isinstance(leaf, ast.Name):
                    self.env[leaf.id] = None
            self._walk_body(stmt.body, fn_name, return_tag)
            self._walk_body(stmt.orelse, fn_name, return_tag)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.tag(item.context_expr)
            self._walk_body(stmt.body, fn_name, return_tag)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, fn_name, return_tag)
            for handler in stmt.handlers:
                self._walk_body(handler.body, fn_name, return_tag)
            self._walk_body(stmt.orelse, fn_name, return_tag)
            self._walk_body(stmt.finalbody, fn_name, return_tag)
            return
        if isinstance(stmt, ast.Assert):
            self.tag(stmt.test)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.tag(stmt.exc)
            return
        # pass/break/continue/import/global/nonlocal/delete: nothing to do.

    def _bind(self, target: ast.expr, value_tag: Optional[UnitTag],
              stmt: ast.stmt) -> None:
        """Bind one assignment target, checking declared-vs-value units."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None, stmt)
            return
        name = ""
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Subscript):
            self.tag(target)
            return
        if not name:
            return
        declared = tag_of_identifier(name)
        if (declared is not None and value_tag is not None
                and declared.scale is not None
                and declared.conflicts(value_tag)):
            self.events.append(Event("assign-mismatch", stmt, declared,
                                     value_tag, name=name))
        if isinstance(target, ast.Name):
            self.env[name] = declared if declared is not None else value_tag


def scan_function(fn: ast.AST, project: "ProjectContext") -> List[Event]:
    """Run the unit dataflow over one function definition."""
    scanner = _Scanner(project)
    return scanner.run(fn)


@dataclass
class LocalBindings:
    """Per-function name classification used by the pool-safety pass.

    A second, much simpler dataflow: which local names are bound to
    lambdas, to nested function definitions, or to freshly-built sets
    (for the unordered-iteration rule).
    """

    lambdas: Dict[str, ast.AST] = field(default_factory=dict)
    local_functions: Dict[str, ast.AST] = field(default_factory=dict)
    sets: Dict[str, ast.AST] = field(default_factory=dict)


def local_bindings(fn: ast.AST) -> LocalBindings:
    """Classify the local bindings of one function body."""
    bindings = LocalBindings()
    body = getattr(fn, "body", [])
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bindings.local_functions[stmt.name] = stmt
            continue
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(stmt.value, ast.Lambda):
                bindings.lambdas[target.id] = stmt.value
            elif _is_set_expr(stmt.value):
                bindings.sets[target.id] = stmt.value
    return bindings


def _is_set_expr(node: ast.AST) -> bool:
    """Whether an expression clearly builds an (unordered) set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))
