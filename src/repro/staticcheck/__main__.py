"""Command-line front end: ``python -m repro.staticcheck``.

Exit status is 0 when the tree is clean (waived and baselined findings
allowed, every baseline entry used), 1 when live findings or stale
baseline entries remain, 2 on configuration errors (unknown rules,
unreadable baseline, unparsable sources).

Incremental mode: ``--cache-dir`` (or ``--cache`` for the shared
``$REPRO_CACHE_DIR`` root) reuses per-module findings across runs,
``--jobs`` fans cache misses out over a process pool, ``--changed``
narrows analysis to git-touched modules plus their dependents, and
``--stats-json`` records the cache-hit/timing statistics CI uploads.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigError
from repro.staticcheck.baseline import save_baseline
from repro.staticcheck.cache import default_cache_root
from repro.staticcheck.registry import all_rules, expand_selection
from repro.staticcheck.reporters import render
from repro.staticcheck.runner import analyze_paths, default_root
from repro.staticcheck.waivers import default_waivers_path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Project-invariant static analysis "
                    "(dimensional, determinism, pool-safety, async-safety, "
                    "golden-flow, hygiene).")
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyse "
             "(default: the installed repro package)")
    parser.add_argument(
        "--format", dest="fmt", choices=("text", "json", "sarif"),
        default="text", help="report format (default: text)")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="restrict to one rule id or pass name (repeatable; a pass "
             "name selects every rule it owns)")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="baseline JSON of accepted findings; new findings still fail")
    parser.add_argument(
        "--write-baseline", type=Path, default=None, metavar="FILE",
        help="write the current unwaived findings as a baseline and exit 0")
    parser.add_argument(
        "--waivers", type=Path, default=None, metavar="FILE",
        help="waiver file (default: tests/lint_waivers.txt when present)")
    parser.add_argument(
        "--no-waivers", action="store_true",
        help="ignore the default waiver file")
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="enable the incremental findings cache rooted at DIR")
    parser.add_argument(
        "--cache", action="store_true",
        help="enable the incremental cache at the shared root "
             "($REPRO_CACHE_DIR/staticcheck, default "
             ".repro-cache/staticcheck)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width for cache-missed modules (default: 1)")
    parser.add_argument(
        "--changed", action="store_true",
        help="analyse only git-touched modules plus their name-level "
             "dependents (falls back to everything outside a git tree)")
    parser.add_argument(
        "--stats-json", type=Path, default=None, metavar="FILE",
        help="write cache-hit and per-pass timing statistics to FILE")
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="write the report to FILE instead of stdout")
    parser.add_argument(
        "--verbose", action="store_true",
        help="multi-line findings with source and fix hints (text format)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules().values():
        lines.append(f"{rule.id:18s} {rule.default_severity.value:8s} "
                     f"{rule.summary}")
    return "\n".join(lines)


def _stats_payload(report) -> dict:
    """The ``--stats-json`` document (the CI cache-stats artifact)."""
    return {
        "files_analyzed": report.files_analyzed,
        "changed_only": report.changed_only,
        "cache": None if report.cache is None else report.cache.as_dict(),
        "timings": [
            {"pass": t.pass_name, "wall_ms": t.wall_ms,
             "modules": t.modules, "findings": t.findings}
            for t in report.timings
        ],
        "ok": report.ok,
    }


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    rules = None
    if args.rule:
        rules = expand_selection(args.rule)
    if args.jobs < 1:
        raise ConfigError(f"--jobs must be >= 1, got {args.jobs}")

    paths = args.paths if args.paths else [default_root()]
    waivers_path = args.waivers
    waivers = [] if args.no_waivers and waivers_path is None else None
    if waivers_path is None and waivers is None:
        waivers_path = default_waivers_path()
    cache_dir = args.cache_dir
    if cache_dir is None and args.cache:
        cache_dir = default_cache_root()

    report = analyze_paths(paths=paths, rules=rules, waivers=waivers,
                           waivers_path=waivers_path,
                           baseline_path=args.baseline,
                           cache_dir=cache_dir, jobs=args.jobs,
                           changed_only=args.changed)

    if args.stats_json is not None:
        args.stats_json.write_text(
            json.dumps(_stats_payload(report), indent=2) + "\n",
            encoding="utf-8")

    if args.write_baseline is not None:
        count = save_baseline(report.findings + report.baselined,
                              args.write_baseline)
        print(f"wrote {count} baseline entr"
              f"{'y' if count == 1 else 'ies'} to {args.write_baseline}")
        return 0

    text = render(report, args.fmt, verbose=args.verbose)
    if args.output is not None:
        args.output.write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    return 0 if report.ok else 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ConfigError as exc:
        print(f"staticcheck: {exc}", file=sys.stderr)
        sys.exit(2)
