"""Built-in analysis passes.

Importing this package registers every first-class pass with the
framework registry.  Adding a pass is: write the module, import it
here — nothing else to wire up.
"""

from repro.staticcheck.passes import asyncsafety  # noqa: F401
from repro.staticcheck.passes import determinism  # noqa: F401
from repro.staticcheck.passes import dimensional  # noqa: F401
from repro.staticcheck.passes import goldenflow  # noqa: F401
from repro.staticcheck.passes import hygiene  # noqa: F401
from repro.staticcheck.passes import kernelsafety  # noqa: F401
from repro.staticcheck.passes import poolsafety  # noqa: F401

__all__ = ["asyncsafety", "determinism", "dimensional", "goldenflow",
           "hygiene", "kernelsafety", "poolsafety"]
