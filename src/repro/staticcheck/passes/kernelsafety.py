"""Kernel hot-path safety pass.

The batch kernel (:mod:`repro.soc.kernel`) and the array-valued PDN /
microarch helpers it calls are the only code in the tree where per-item
Python overhead is a measured cost and where float evaluation *order* is
a correctness contract (bit-identity with the scalar engine, see
``docs/KERNEL.md``).  This pass watches exactly those modules for the
three constructs that erode either property:

``kernel-callback``
    A Python-level callable dispatched once per item inside a loop — a
    hoisted bound method (``record = trace.record`` then ``record(...)``
    in the loop) or an indexed callable table (``records[core](...)``).
    Each call re-enters the interpreter per event and blocks any future
    vectorization of that loop.  The replay loop in ``KernelBatch.flush``
    does this *deliberately* (bit-identity requires replaying through
    the exact scalar entry points), so its occurrences live in the
    ratchet baseline: accepted, counted, and not allowed to grow.
``kernel-float-accum``
    Sequential float accumulation in a loop (``total += x``) or via
    builtin ``sum()``.  The result depends on summation order, so any
    reordering — including a later "optimisation" to ``np.sum`` or
    pairwise summation — silently changes the float trajectory the
    verify goldens pin.  Existing sites are baselined for the same
    reason: they intentionally mirror the scalar engine's order.
``kernel-object-dtype``
    An explicit ``dtype=object`` array.  Object arrays are pointer
    tables: every element access boxes, no lane arithmetic happens, and
    ``astype``/ufunc behaviour stops being IEEE-754.  Never correct on
    the hot path.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from repro.staticcheck.context import ModuleContext, ProjectContext
from repro.staticcheck.model import Finding, Severity
from repro.staticcheck.registry import Rule, register

#: The modules this pass analyses: the batch kernel itself plus the
#: array-valued helpers on its flush path.  Everything else in the tree
#: is free to use per-item Python — that's what the scalar engine is.
HOT_PATHS = frozenset({
    "repro/soc/kernel.py",
    "repro/pdn/regulator.py",
    "repro/pdn/loadline.py",
    "repro/pdn/droop.py",
    "repro/microarch/tsc.py",
    "repro/microarch/counters.py",
})


def _is_object_dtype(node: ast.expr) -> bool:
    """Whether an expression names the object dtype."""
    if isinstance(node, ast.Constant) and node.value == "object":
        return True
    if isinstance(node, ast.Name) and node.id == "object":
        return True
    if isinstance(node, ast.Attribute) and node.attr == "object_":
        return True
    return False


@register
class KernelSafetyPass:
    """Flags vectorization and float-order hazards on the kernel path."""

    name = "kernelsafety"
    rules: Tuple[Rule, ...] = (
        Rule("kernel-callback",
             "per-item Python callable dispatched inside a hot-path loop",
             Severity.WARNING,
             "batch the work into one array operation, or baseline the "
             "site if per-item replay is the bit-identity contract"),
        Rule("kernel-float-accum",
             "order-dependent float accumulation in a hot-path loop",
             Severity.WARNING,
             "keep the scalar engine's summation order (and baseline the "
             "site), or prove the reference path reorders with it"),
        Rule("kernel-object-dtype",
             "object-dtype array on the kernel hot path",
             Severity.ERROR,
             "use a numeric dtype; object arrays box every element and "
             "break IEEE-754 lane arithmetic"),
    )

    def run(self, ctx: ModuleContext,
            project: ProjectContext) -> List[Finding]:
        """Analyse one module if it lies on the kernel hot path."""
        if ctx.path not in HOT_PATHS:
            return []
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        return visitor.findings


class _Visitor(ast.NodeVisitor):
    """Collects kernel-safety findings for one hot-path module."""

    def __init__(self, owner: KernelSafetyPass, ctx: ModuleContext) -> None:
        self.owner = owner
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._rules = {rule.id: rule for rule in owner.rules}
        #: Names bound to a hoisted bound method (``rec = trace.record``).
        self._hoisted: Set[str] = set()
        #: Names bound to a table of callables (list/dict of attributes).
        self._tables: Set[str] = set()
        #: Loop-nesting depth (for/while, not comprehensions).
        self._loop_depth = 0

    def _add(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = self._rules[rule_id]
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            rule=rule_id, path=self.ctx.path, line=line, message=message,
            source=self.ctx.source_line(line),
            severity=rule.default_severity,
            fix_hint=rule.default_fix_hint))

    # -- binding tracking ----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        """Track hoisted bound methods and callable tables."""
        value = node.value
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Attribute):
                self._hoisted.add(target.id)
            elif (isinstance(value, (ast.ListComp, ast.List))
                  and self._elements_are_attributes(value)):
                self._tables.add(target.id)
        self.generic_visit(node)

    @staticmethod
    def _elements_are_attributes(value: ast.expr) -> bool:
        """Whether a list literal/comprehension yields attribute lookups."""
        if isinstance(value, ast.ListComp):
            return isinstance(value.elt, ast.Attribute)
        if isinstance(value, ast.List):
            return bool(value.elts) and all(
                isinstance(elt, ast.Attribute) for elt in value.elts)
        return False

    # -- loops ---------------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        """Descend with the loop-nesting depth bumped."""
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_While = visit_For  # same handling for while loops

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Flag ``x += <non-integer>`` inside a loop."""
        if (self._loop_depth > 0 and isinstance(node.op, ast.Add)
                and not self._is_integer_step(node.value)):
            target = node.target
            name = target.id if isinstance(target, ast.Name) else "<target>"
            self._add("kernel-float-accum", node,
                      f"'{name} +=' accumulates sequentially in a loop; "
                      f"the result depends on summation order")
        self.generic_visit(node)

    @staticmethod
    def _is_integer_step(value: ast.expr) -> bool:
        """Whether an increment is provably an int (counter bump)."""
        if isinstance(value, ast.Constant):
            return isinstance(value.value, int)
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in ("int", "len")
        return False

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        """Flag per-item callable dispatch, ``sum()`` and object dtypes."""
        func = node.func
        if self._loop_depth > 0:
            if isinstance(func, ast.Name) and func.id in self._hoisted:
                self._add("kernel-callback", node,
                          f"'{func.id}(...)' dispatches a hoisted bound "
                          f"method once per loop item")
            elif (isinstance(func, ast.Subscript)
                  and isinstance(func.value, ast.Name)
                  and func.value.id in self._tables):
                self._add("kernel-callback", node,
                          f"'{func.value.id}[...](...)' dispatches through "
                          f"a callable table once per loop item")
        if isinstance(func, ast.Name) and func.id == "sum" and node.args:
            self._add("kernel-float-accum", node,
                      "builtin sum() accumulates left to right; the result "
                      "depends on operand order")
        for keyword in node.keywords:
            if keyword.arg == "dtype" and _is_object_dtype(keyword.value):
                self._add("kernel-object-dtype", keyword.value,
                          "dtype=object defeats lane arithmetic on the "
                          "kernel hot path")
        self.generic_visit(node)
