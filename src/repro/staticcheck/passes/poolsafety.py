"""Process-pool safety pass.

:class:`repro.runner.sweep.SweepRunner` fans trials out to worker
*processes*.  Everything crossing that boundary is pickled, and the
worker gets a fresh module state — two facts that break three common
idioms silently or with opaque ``PicklingError`` s:

``pool-callable``
    A lambda, a locally-defined function, or a bound method handed to a
    pool dispatch call (``runner.map(...)``, ``pool.submit(...)``).
    Lambdas and local defs don't pickle at all; bound methods drag
    their whole instance through the pickle layer.  Task functions must
    be module-level.
``pool-global``
    A task function that mutates module-global state (``global``
    statements, ``SOME_CACHE.append(...)``, ``TABLE[k] = v``).  The
    mutation lands in the *worker's* copy of the module and is lost
    when the worker exits — the parent never sees it.
``pool-unpicklable``
    A lambda nested inside the *arguments* of a pool dispatch call
    (e.g. a lambda inside a kwargs dict).  It will fail to pickle at
    dispatch time.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.staticcheck.context import ModuleContext, ProjectContext
from repro.staticcheck.dataflow import LocalBindings, local_bindings
from repro.staticcheck.model import Finding, Severity
from repro.staticcheck.registry import Pass, Rule, register

#: Method names that dispatch work to a pool.
_DISPATCH_METHODS = frozenset({"map", "call", "submit", "apply_async",
                               "map_async", "starmap"})

#: Methods that always mean "pool" regardless of the receiver's name.
_ALWAYS_POOL_METHODS = frozenset({"submit", "apply_async", "map_async",
                                  "starmap"})

#: Receiver-name components that mark an object as a pool/runner.
_POOL_RECEIVERS = ("runner", "pool", "executor")

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
})


def _receiver_name(func: ast.Attribute) -> str:
    """The identifier the dispatch receiver 'is about'."""
    base = func.value
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return ""


def _is_pool_dispatch(node: ast.Call) -> bool:
    """Whether a call looks like a pool/runner dispatch."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr not in _DISPATCH_METHODS:
        return False
    if func.attr in _ALWAYS_POOL_METHODS:
        return True
    receiver = _receiver_name(func).lower()
    return any(part in receiver for part in _POOL_RECEIVERS)


@register
class PoolSafetyPass:
    """Flags constructs that break under process-pool dispatch."""

    name = "poolsafety"
    rules: Tuple[Rule, ...] = (
        Rule("pool-callable",
             "non-module-level callable handed to a process pool",
             Severity.ERROR,
             "define the task as a module-level function and pass "
             "parameters through kwargs"),
        Rule("pool-global",
             "pool task function mutates module-global state",
             Severity.ERROR,
             "return the data instead; worker-side module state is "
             "discarded when the worker exits"),
        Rule("pool-unpicklable",
             "lambda inside the arguments of a pool dispatch",
             Severity.ERROR,
             "replace the lambda with a module-level function or a "
             "picklable value"),
    )

    def run(self, ctx: ModuleContext,
            project: ProjectContext) -> List[Finding]:
        """Scan the module for unsafe pool dispatches and task bodies."""
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        visitor.check_task_functions()
        return visitor.findings


class _Visitor(ast.NodeVisitor):
    """Collects pool-safety findings for one module."""

    def __init__(self, owner: PoolSafetyPass, ctx: ModuleContext) -> None:
        self.owner = owner
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._rules = {rule.id: rule for rule in owner.rules}
        self._imported_modules = ctx.imported_module_names()
        self._module_globals = ctx.module_level_names()
        #: Module-level function defs, by name.
        self._module_functions: Dict[str, ast.AST] = {
            node.name: node for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        #: Names of module-level functions referenced as pool tasks.
        self._task_names: Set[str] = set()
        #: Stack of per-function local binding tables.
        self._bindings: List[LocalBindings] = []

    def _add(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = self._rules[rule_id]
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            rule=rule_id, path=self.ctx.path, line=line, message=message,
            source=self.ctx.source_line(line),
            severity=rule.default_severity,
            fix_hint=rule.default_fix_hint))

    # -- dispatch sites ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Push this function's local bindings, then descend."""
        self._bindings.append(local_bindings(node))
        self.generic_visit(node)
        self._bindings.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        """Check one call if it is a pool dispatch."""
        if _is_pool_dispatch(node) and node.args:
            self._check_dispatch(node)
        self.generic_visit(node)

    def _check_dispatch(self, node: ast.Call) -> None:
        task = node.args[0]
        local = self._bindings[-1] if self._bindings else LocalBindings()
        if isinstance(task, ast.Lambda):
            self._add("pool-callable", task,
                      "lambda passed to a process pool; lambdas cannot "
                      "be pickled")
        elif isinstance(task, ast.Name):
            if task.id in local.lambdas:
                self._add("pool-callable", task,
                          f"'{task.id}' is a lambda; lambdas cannot be "
                          f"pickled across processes")
            elif task.id in local.local_functions:
                self._add("pool-callable", task,
                          f"'{task.id}' is defined inside a function; "
                          f"only module-level functions pickle")
            elif task.id in self._module_functions:
                self._task_names.add(task.id)
        elif isinstance(task, ast.Attribute):
            base = task.value
            if not (isinstance(base, ast.Name)
                    and base.id in self._imported_modules):
                self._add("pool-callable", task,
                          f"bound method '.{task.attr}' passed to a "
                          f"process pool; it pickles its whole instance")
        # Lambdas anywhere in the remaining arguments fail at pickle time.
        rest = list(node.args[1:]) + [kw.value for kw in node.keywords]
        for arg in rest:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    self._add("pool-unpicklable", sub,
                              "lambda inside pool-dispatch arguments "
                              "cannot be pickled")

    # -- task-function bodies ------------------------------------------------

    def check_task_functions(self) -> None:
        """Scan the body of every in-module task for global mutation."""
        for name in sorted(self._task_names):
            self._check_task_body(name, self._module_functions[name])

    def _check_task_body(self, name: str, fn: ast.AST) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                self._add("pool-global", node,
                          f"task {name}() declares global "
                          f"{', '.join(node.names)}; worker-side state "
                          f"is lost")
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATING_METHODS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in self._module_globals):
                    self._add("pool-global", node,
                              f"task {name}() mutates module global "
                              f"'{func.value.id}' via .{func.attr}(); "
                              f"the mutation never reaches the parent")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in self._module_globals):
                        self._add("pool-global", node,
                                  f"task {name}() stores into module "
                                  f"global '{target.value.id}'; the "
                                  f"write never reaches the parent")
