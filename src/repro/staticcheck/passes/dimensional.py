"""Dimensional-analysis pass: the unit system, statically enforced.

The simulator's unit conventions (``repro.units``: ns, GHz, V, A, nF —
``I[A] = C[nF]·V[V]·f[GHz]`` exactly) are load-bearing but invisible to
the type system.  This pass seeds unit tags from identifier naming
conventions and the ``<src>_to_<dst>`` converter functions, propagates
them through each function with the dataflow layer, and reports:

``unit-mix``
    Adding, subtracting, or ``min``/``max``-combining values of
    different dimensions or scales (V + A, ns + us), and assignments
    where the target's declared unit contradicts the value (``dt_s =
    ... - last_ns`` — a dropped ``ns_to_s``).
``unit-compare``
    Ordering or equality comparisons across units (``now_ns >
    idle_close_us`` — a dropped ``us_to_ns``).
``unit-arg``
    Passing a value whose unit contradicts the callee parameter's
    declared unit (``engine.schedule(timeout_us, ...)`` where the
    parameter is ``delay_ns``), resolved through the cross-module
    signature table.
``unit-return``
    Returning a value whose unit contradicts the function's own name
    (``def wake_latency_ns(...): return ..._us``).
``unit-freq-div``
    Dividing a time by a frequency.  In the GHz↔cycles/ns convention
    ``cycles = ns * f`` and ``ns = cycles / f``; ``ns / f`` yields
    time², which is never what was meant.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.staticcheck.context import ModuleContext, ProjectContext
from repro.staticcheck.dataflow import Event, scan_function
from repro.staticcheck.model import Finding, Severity
from repro.staticcheck.registry import Pass, Rule, register


def _label(event: Event) -> Tuple[str, str]:
    """The (left, right) unit labels of an event."""
    left = event.left.label() if event.left is not None else "?"
    right = event.right.label() if event.right is not None else "?"
    return left, right


@register
class DimensionalPass:
    """Flags unit-mixing arithmetic, comparisons, calls and returns."""

    name = "dimensional"
    rules: Tuple[Rule, ...] = (
        Rule("unit-mix",
             "arithmetic or assignment mixing incompatible units",
             Severity.ERROR,
             "convert explicitly with the repro.units helpers "
             "(us_to_ns, mv_to_v, ...) before combining"),
        Rule("unit-compare",
             "comparison between values of incompatible units",
             Severity.ERROR,
             "convert both sides to the same unit before comparing"),
        Rule("unit-arg",
             "argument unit contradicts the callee parameter's unit",
             Severity.ERROR,
             "convert the argument to the parameter's unit at the "
             "call site"),
        Rule("unit-return",
             "returned unit contradicts the function name's unit suffix",
             Severity.ERROR,
             "convert the return value or rename the function to "
             "match what it returns"),
        Rule("unit-freq-div",
             "time divided by frequency (yields time^2)",
             Severity.ERROR,
             "with f in GHz and t in ns: cycles = t * f and "
             "t = cycles / f; never t / f"),
    )

    def run(self, ctx: ModuleContext,
            project: ProjectContext) -> List[Finding]:
        """Scan every function in the module through the unit dataflow."""
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for event in scan_function(node, project):
                finding = self._finding_of(event, ctx)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _finding_of(self, event: Event, ctx: ModuleContext):
        line = getattr(event.node, "lineno", 0)
        source = ctx.source_line(line)
        left, right = _label(event)
        rule_by_id = {rule.id: rule for rule in self.rules}

        def build(rule_id: str, message: str) -> Finding:
            rule = rule_by_id[rule_id]
            return Finding(rule=rule_id, path=ctx.path, line=line,
                           message=message, source=source,
                           severity=rule.default_severity,
                           fix_hint=rule.default_fix_hint)

        if event.kind == "mix-arith":
            if isinstance(event.node, (ast.Assign, ast.AnnAssign,
                                       ast.AugAssign)):
                return build("unit-mix",
                             f"augmented assignment mixes {left} with {right}")
            return build("unit-mix", f"arithmetic mixes {left} with {right}")
        if event.kind == "assign-mismatch":
            return build(
                "unit-mix",
                f"assignment to '{event.name}' ({left}) from a {right} "
                f"value; a unit conversion is missing")
        if event.kind == "mix-compare":
            return build("unit-compare", f"comparison of {left} with {right}")
        if event.kind == "arg-mismatch":
            return build(
                "unit-arg",
                f"call to {event.name}() passes {right} where parameter "
                f"'{event.param}' expects {left}")
        if event.kind == "return-mismatch":
            return build(
                "unit-return",
                f"{event.name}() returns {right} but its name declares "
                f"{left}")
        if event.kind == "freq-div":
            return build(
                "unit-freq-div",
                f"dividing {left} by {right}: cycles/f gives time, "
                f"time*f gives cycles — time/f is neither")
        return None
