"""Async-safety pass over coroutine bodies.

The channel-lab service (:mod:`repro.service`) is single-loop asyncio:
one blocked event loop stalls every queue, stream and HTTP response at
once, and a dropped coroutine silently swallows its exceptions.  Covert-
channel measurements live and die on scheduling determinism, so these
are correctness bugs, not style nits:

``async-blocking-call``
    A blocking call executed directly on the event loop inside an
    ``async def`` body: ``time.sleep``, ``subprocess`` calls, sync file
    I/O (``open``, ``Path.read_text``/``write_text``), a synchronous
    ``queue.Queue.get()``, or a ``SweepRunner`` dispatch
    (``runner.map/call/run``).  All of these belong behind
    ``loop.run_in_executor`` (where only the function *reference* is
    mentioned, which this rule does not flag).
``async-unawaited``
    A statement-expression call to a function the project only ever
    defines ``async def``, with the returned coroutine discarded — it
    never runs.  Names also defined synchronously somewhere are
    skipped, as are coroutines handed to another call (the callee is
    assumed to schedule them) and ``async for`` iterables.
``async-dropped-task``
    A fire-and-forget ``asyncio.create_task``/``ensure_future`` whose
    handle is dropped: the task can be garbage-collected mid-flight and
    its exceptions vanish.  Keep the handle and await it at shutdown.
``async-held-handle``
    A synchronous ``with`` over a file handle (``open(...)``) or a
    lock/store-named resource whose body awaits: the resource stays
    held across every suspension point inside the block.
``async-shared-state``
    Module-global state mutated from a coroutine body.  Coroutines of
    one loop interleave at every ``await``, so unsynchronised shared
    mutations are ordering-dependent — exactly the nondeterminism the
    reproduction's goldens exist to rule out.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.staticcheck.context import ModuleContext, ProjectContext
from repro.staticcheck.model import Finding, Severity
from repro.staticcheck.registry import Pass, Rule, register

#: ``subprocess`` attributes that block until the child exits (or, for
#: ``Popen``, at least block on fork/exec and invite ``.wait()``).
_SUBPROCESS_CALLS = frozenset({"run", "call", "check_call", "check_output",
                               "Popen", "getoutput", "getstatusoutput"})

#: Attribute calls that do sync file I/O regardless of the receiver.
_SYNC_IO_ATTRS = frozenset({"read_text", "write_text", "read_bytes",
                            "write_bytes"})

#: ``SweepRunner``-style dispatch attributes that block on a pool.
_RUNNER_DISPATCH = frozenset({"map", "call", "run"})

#: Attribute calls that spawn a task whose handle must be kept.
_SPAWN_ATTRS = frozenset({"create_task", "ensure_future"})

#: Receiver-name fragments marking a held resource (with ``open`` calls
#: handled separately) for the held-handle rule.
_RESOURCE_FRAGMENTS = ("lock", "store")

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
})

#: Method names that are synchronous on asyncio's own objects (Task,
#: Future, Handle), so a same-named ``async def`` elsewhere in the
#: analysed subset must not make bare calls look like dropped
#: coroutines (``task.cancel()`` is the canonical case).
_STDLIB_SYNC_METHODS = frozenset({
    "cancel", "close", "done", "result", "exception",
    "set_result", "set_exception", "add_done_callback",
})


def _attr_tail(func: ast.expr) -> str:
    """The final attribute/identifier of a call target ('' if exotic)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _receiver_name(func: ast.expr) -> str:
    """The identifier an attribute call's receiver 'is about'."""
    if not isinstance(func, ast.Attribute):
        return ""
    base = func.value
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return ""


def _body_walk(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk an async function's own body, skipping nested scopes.

    Nested defs (sync or async) run in their own context — a blocking
    call inside a nested sync helper is not on this coroutine's hot
    path — so context-sensitive rules stop at scope boundaries.
    """
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _from_imports(tree: ast.Module) -> Dict[str, str]:
    """Bare name -> source module for top-level ``from x import y``."""
    table: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                table[alias.asname or alias.name] = node.module
    return table


@register
class AsyncSafetyPass:
    """Flags event-loop hazards inside ``async def`` bodies."""

    name = "asyncsafety"
    #: Cache version; bump when any rule's behaviour changes.
    version = 1
    rules: Tuple[Rule, ...] = (
        Rule("async-blocking-call",
             "blocking call executed directly on the event loop",
             Severity.ERROR,
             "wrap the call in loop.run_in_executor (or use the asyncio "
             "equivalent, e.g. asyncio.sleep)"),
        Rule("async-unawaited",
             "coroutine created but never awaited or scheduled",
             Severity.ERROR,
             "await the call, or schedule it with asyncio.create_task "
             "and keep the handle"),
        Rule("async-dropped-task",
             "fire-and-forget task handle dropped",
             Severity.WARNING,
             "assign the task handle and await it at shutdown so "
             "exceptions surface"),
        Rule("async-held-handle",
             "file handle or lock held across an await",
             Severity.WARNING,
             "do the blocking I/O via run_in_executor, or close the "
             "resource before awaiting"),
        Rule("async-shared-state",
             "module-global state mutated from a coroutine",
             Severity.WARNING,
             "confine the state to the owning object, or guard the "
             "mutation with a lock"),
    )

    def run(self, ctx: ModuleContext,
            project: ProjectContext) -> List[Finding]:
        """Scan every ``async def`` in the module."""
        collector = _Collector(self, ctx, project)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                collector.check_async_def(node)
        return sorted(collector.findings,
                      key=lambda f: (f.line, f.rule))


class _Collector:
    """Accumulates asyncsafety findings for one module."""

    def __init__(self, owner: AsyncSafetyPass, ctx: ModuleContext,
                 project: ProjectContext) -> None:
        self.ctx = ctx
        self.project = project
        self.findings: List[Finding] = []
        self._rules = {rule.id: rule for rule in owner.rules}
        self._module_globals = ctx.module_level_names()
        self._from_imports = _from_imports(ctx.tree)

    def _add(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = self._rules[rule_id]
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            rule=rule_id, path=self.ctx.path, line=line, message=message,
            source=self.ctx.source_line(line),
            severity=rule.default_severity,
            fix_hint=rule.default_fix_hint))

    # -- per-coroutine scan --------------------------------------------------

    def check_async_def(self, fn: ast.AsyncFunctionDef) -> None:
        """Apply every rule to one coroutine body."""
        awaited: Set[int] = set()
        body = list(_body_walk(fn))
        for node in body:
            if isinstance(node, ast.Await):
                awaited.add(id(node.value))
        for node in body:
            if isinstance(node, ast.Call) and id(node) not in awaited:
                self._check_blocking(node)
            if isinstance(node, ast.Expr) \
                    and isinstance(node.value, ast.Call):
                self._check_dropped_task(node.value)
                self._check_unawaited_in(fn, node.value)
            elif isinstance(node, ast.With):
                self._check_held_handle(node)
            self._check_shared_state(node)

    # -- rules ---------------------------------------------------------------

    def _check_blocking(self, node: ast.Call) -> None:
        """One non-awaited call: is it a known blocking primitive?"""
        tail = _attr_tail(node.func)
        receiver = _receiver_name(node.func)
        origin = self._from_imports.get(tail, "")
        if tail == "sleep" and (receiver == "time" or origin == "time"):
            self._add("async-blocking-call", node,
                      "time.sleep() blocks the event loop; "
                      "use 'await asyncio.sleep(...)'")
        elif (receiver == "subprocess"
              or (origin == "subprocess" and tail in _SUBPROCESS_CALLS)):
            self._add("async-blocking-call", node,
                      f"subprocess call '{tail}' blocks the event loop; "
                      f"use asyncio.create_subprocess_exec or an executor")
        elif isinstance(node.func, ast.Name) and node.func.id == "open":
            self._add("async-blocking-call", node,
                      "sync file I/O (open) on the event loop; do the "
                      "I/O in an executor")
        elif tail in _SYNC_IO_ATTRS and isinstance(node.func, ast.Attribute):
            self._add("async-blocking-call", node,
                      f"sync file I/O (.{tail}) on the event loop; do "
                      f"the I/O in an executor")
        elif (tail == "get" and not node.args
              and "queue" in receiver.lower()
              and not any(k.arg == "block" for k in node.keywords)):
            self._add("async-blocking-call", node,
                      f"'{receiver}.get()' is an unbounded blocking wait "
                      f"when {receiver} is a queue.Queue; use an "
                      f"asyncio.Queue and await it")
        elif tail in _RUNNER_DISPATCH and "runner" in receiver.lower():
            self._add("async-blocking-call", node,
                      f"'{receiver}.{tail}(...)' drives a process pool "
                      f"synchronously on the event loop; dispatch it via "
                      f"loop.run_in_executor")

    def _check_unawaited_in(self, fn: ast.AsyncFunctionDef,
                            node: ast.Call) -> None:
        """A discarded call to a name only ever defined ``async def``."""
        tail = _attr_tail(node.func)
        if not tail or tail in _STDLIB_SYNC_METHODS \
                or not self.project.is_async_name(tail):
            return
        self._add("async-unawaited", node,
                  f"'{tail}(...)' is a coroutine function but the result "
                  f"is neither awaited nor scheduled inside "
                  f"'{fn.name}'; the coroutine never runs")

    def _check_dropped_task(self, call: ast.Call) -> None:
        """A statement-level create_task whose handle is discarded."""
        if _attr_tail(call.func) in _SPAWN_ATTRS:
            self._add("async-dropped-task", call,
                      f"task handle from {_attr_tail(call.func)}(...) is "
                      f"dropped; the task may be garbage-collected and "
                      f"its exceptions are lost")

    def _check_held_handle(self, node: ast.With) -> None:
        """A sync ``with`` over a handle whose body awaits."""
        has_await = any(isinstance(sub, ast.Await)
                        for stmt in node.body
                        for sub in ast.walk(stmt))
        if not has_await:
            return
        for item in node.items:
            expr = item.context_expr
            held = None
            if isinstance(expr, ast.Call) \
                    and isinstance(expr.func, ast.Name) \
                    and expr.func.id == "open":
                held = "file handle from open(...)"
            else:
                name = _attr_tail(expr) if not isinstance(expr, ast.Call) \
                    else _attr_tail(expr.func)
                if any(part in name.lower()
                       for part in _RESOURCE_FRAGMENTS):
                    held = f"resource '{name}'"
            if held is not None:
                self._add("async-held-handle", node,
                          f"{held} is held across an await; every "
                          f"suspension point inside the block keeps it "
                          f"pinned")

    def _check_shared_state(self, node: ast.AST) -> None:
        """Module-global mutation from inside the coroutine body."""
        if isinstance(node, ast.Global):
            self._add("async-shared-state", node,
                      f"coroutine declares global "
                      f"{', '.join(node.names)}; interleaved coroutines "
                      f"race on it")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self._module_globals):
                self._add("async-shared-state", node,
                          f"coroutine mutates module global "
                          f"'{func.value.id}' via .{func.attr}(); "
                          f"interleaved coroutines race on it")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in self._module_globals):
                    self._add("async-shared-state", node,
                              f"coroutine stores into module global "
                              f"'{target.value.id}'; interleaved "
                              f"coroutines race on it")
