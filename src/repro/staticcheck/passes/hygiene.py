"""API-hygiene pass.

Two rules ported unchanged from the original ``repro.verify.lint``
(same ids, same messages, so existing waivers keep working):

``float-eq``
    Bare ``==``/``!=`` between physical quantities (voltages, times,
    frequencies, temperatures — identified by name components), or
    between a physical quantity and a float literal.  Exact float
    comparison on derived physics is how silent guardband drift hides.
``mutable-default``
    Mutable default arguments (``def f(x=[])``) — shared state across
    calls is both a bug magnet and a determinism leak.

Two advisory rules new to the framework (severity *note*: reported,
never gating, and baselined for the existing tree):

``missing-hints``
    A public function or method with unannotated parameters or return.
``missing-doc``
    A public module, class, function or method without a docstring.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.staticcheck.context import ModuleContext, ProjectContext
from repro.staticcheck.model import Finding, Severity
from repro.staticcheck.registry import Pass, Rule, register

#: Identifier components marking a value as a physical quantity for the
#: float-eq rule.  Identifiers are split on underscores and lowercased,
#: so ``vcc_start_mv`` has components {vcc, start, mv}.
PHYSICAL_COMPONENTS = frozenset({
    "vcc", "vdd", "volt", "volts", "voltage", "mv", "icc", "amp", "amps",
    "current", "temp", "temperature", "time", "times", "t", "t0", "t1",
    "ns", "us", "ms", "ghz", "mhz", "hz", "freq", "frequency",
})


def _identifier_of(node: ast.AST) -> str:
    """The identifier a comparison side 'is about', or empty string."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _identifier_of(node.value)
    if isinstance(node, ast.Call):
        return _identifier_of(node.func)
    if isinstance(node, ast.UnaryOp):
        return _identifier_of(node.operand)
    return ""


def _is_physical(node: ast.AST) -> bool:
    """Whether a comparison side names a physical quantity."""
    identifier = _identifier_of(node)
    if not identifier:
        return False
    components = identifier.lower().split("_")
    return any(component in PHYSICAL_COMPONENTS for component in components)


def _is_float_literal(node: ast.AST) -> bool:
    """Whether a node is a float constant (possibly negated)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_public(name: str) -> bool:
    """Public = no leading underscore.

    Dunder methods (``__init__``, ``__len__``) are exempt: their
    contract is defined by the language, not the docstring.
    """
    return not name.startswith("_")


@register
class HygienePass:
    """Flags API-hygiene problems: float equality, mutable defaults,
    missing annotations and docstrings."""

    name = "hygiene"
    rules: Tuple[Rule, ...] = (
        Rule("float-eq",
             "bare float equality on a physical quantity",
             Severity.WARNING,
             "compare with an epsilon (math.isclose) or restructure to "
             "avoid exact comparison"),
        Rule("mutable-default",
             "mutable default argument",
             Severity.WARNING,
             "default to None and create the object inside the "
             "function body"),
        Rule("missing-hints",
             "public callable without complete type hints",
             Severity.NOTE,
             "annotate every parameter and the return type"),
        Rule("missing-doc",
             "public API without a docstring",
             Severity.NOTE,
             "add a one-line docstring saying what it does"),
    )

    def run(self, ctx: ModuleContext,
            project: ProjectContext) -> List[Finding]:
        """Visit the module tree with every hygiene rule armed."""
        visitor = _Visitor(self, ctx)
        if ast.get_docstring(ctx.tree) is None and ctx.tree.body:
            visitor.add("missing-doc", ctx.tree.body[0],
                        "module has no docstring")
        visitor.visit(ctx.tree)
        return visitor.findings


class _Visitor(ast.NodeVisitor):
    """Collects hygiene findings for one module."""

    def __init__(self, owner: HygienePass, ctx: ModuleContext) -> None:
        self.owner = owner
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._rules = {rule.id: rule for rule in owner.rules}
        #: How many function definitions we are currently inside; a def
        #: nested in another def is a local helper, not public API.
        self._function_depth = 0

    def add(self, rule_id: str, node: ast.AST, message: str) -> None:
        """Record one finding at ``node``'s line."""
        rule = self._rules[rule_id]
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            rule=rule_id, path=self.ctx.path, line=line, message=message,
            source=self.ctx.source_line(line),
            severity=rule.default_severity,
            fix_hint=rule.default_fix_hint))

    # -- comparisons: float-eq ----------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        """Apply the float-eq rule to one comparison."""
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            sides = [node.left] + list(node.comparators)
            physical = [side for side in sides if _is_physical(side)]
            floats = [side for side in sides if _is_float_literal(side)]
            if physical and (floats or len(physical) >= 2):
                identifier = _identifier_of(physical[0]) or "quantity"
                self.add("float-eq", node,
                         f"bare float equality on physical quantity "
                         f"'{identifier}'; compare with an epsilon")
        self.generic_visit(node)

    # -- classes: missing-doc -----------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Apply the docstring rule to one class definition."""
        if _is_public(node.name) and ast.get_docstring(node) is None:
            self.add("missing-doc", node,
                     f"public class {node.name} has no docstring")
        self.generic_visit(node)

    # -- function definitions -----------------------------------------------

    def _check_defaults(self, node) -> None:
        """Apply the mutable-default rule to one function signature."""
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp,
                                           ast.SetComp))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set",
                                            "bytearray")):
                mutable = True
            if mutable:
                self.add("mutable-default", default,
                         f"mutable default argument in {node.name}()")

    def _check_hints_and_doc(self, node) -> None:
        """Apply missing-hints/missing-doc to one public callable."""
        if not _is_public(node.name) or self._function_depth > 0:
            return
        if ast.get_docstring(node) is None:
            self.add("missing-doc", node,
                     f"public function {node.name}() has no docstring")
        args = (list(node.args.posonlyargs) + list(node.args.args)
                + list(node.args.kwonlyargs))
        if args and args[0].arg in ("self", "cls"):
            args = args[1:]
        missing = [a.arg for a in args if a.annotation is None]
        if node.returns is None:
            missing.append("return")
        if missing:
            self.add("missing-hints", node,
                     f"{node.name}() is missing annotations for: "
                     f"{', '.join(missing)}")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check one function definition's defaults, hints and doc."""
        self._check_defaults(node)
        self._check_hints_and_doc(node)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._check_defaults(node)
        self._check_hints_and_doc(node)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1
