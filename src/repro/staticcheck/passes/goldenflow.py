"""Golden-flow pass: mapping round-trips and digest-stable emission.

Every committed golden digest in this reproduction is a hash over the
canonical mapping form of a scenario run document, and the mapping form
is produced by the ``to_mapping``/``from_mapping`` layer in
:mod:`repro.scenarios.spec`.  That layer carries two easy-to-break
contracts that no unit test states explicitly:

``golden-roundtrip``
    Every field of a mapping dataclass must flow through *both*
    directions: emitted by ``to_mapping`` and consumed by
    ``from_mapping``.  A field missing on either side silently drops
    scenario configuration on the file/HTTP path while direct
    construction still works — the worst kind of skew.
``golden-emit``
    The set of keys ``to_mapping`` emits *unconditionally* is pinned
    per class in :data:`GOLDEN_UNCONDITIONAL`.  Adding a dataclass
    field to a pinned class re-digests every committed golden unless
    its emission is conditional (absent-means-default, the
    ``turbo_license_limit`` pattern); conversely, making a pinned key
    conditional changes existing digests too.  Classes outside the
    table are strict by default: conditional emission without a pinned
    contract is flagged, because absent-means-default is a deliberate,
    reviewed exception — never an accident.
``golden-forward``
    At a spec-forwarding construction site of ``SystemOptions`` (one
    passing ``self.<spec>.<field>`` keywords), every ``SystemOptions``
    field outside :data:`FORWARD_EXEMPT` must be forwarded, and every
    field of each spec dataclass drawn from must be forwarded too.  A
    knob that validates, round-trips and digests but never reaches the
    simulator silently measures the wrong system.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.staticcheck.context import (
    ModuleContext,
    ProjectContext,
    _dataclass_field_names,
    _is_dataclass_def,
)
from repro.staticcheck.model import Finding, Severity
from repro.staticcheck.registry import Pass, Rule, register

#: Pinned unconditional-emission contracts: exactly the keys each
#: class's ``to_mapping`` emits on *every* call.  These sets are part
#: of the committed golden digests — change them only together with a
#: deliberate golden regeneration.
GOLDEN_UNCONDITIONAL: Dict[str, frozenset] = {
    "PMUSpec": frozenset({"queue_depth", "grant_policy"}),
    # turbo_license_limit is the reviewed absent-means-default exception.
    "OptionsSpec": frozenset({
        "per_core_vr", "ldo_rails", "improved_throttling", "secure_mode"}),
    "NoiseSpec": frozenset({
        "interrupt_rate_per_s", "interrupt_mean_us", "ctx_switch_rate_per_s",
        "ctx_switch_mean_us", "horizon_ms", "seed"}),
    "WorkloadSpec": frozenset({
        "kind", "core", "smt_slot", "duration_ms", "seed", "rate_per_s",
        "phases"}),
    "TenantSpec": frozenset({
        "channel", "sender_core", "receiver_core", "offset_fraction"}),
    "ScenarioSpec": frozenset({
        "name", "description", "preset", "overrides", "options", "pmu",
        "protocol", "tenants", "noise", "faults", "background",
        "payload_hex", "seed"}),
}

#: ``SystemOptions`` fields a forwarding site may legitimately omit:
#: ``disable_throttling`` is ablation-only and ``kernel`` stays at its
#: environment-driven default so scenarios digest identically under
#: both ``REPRO_KERNEL`` settings.
FORWARD_EXEMPT = frozenset({"disable_throttling", "kernel"})


def _call_tail(func: ast.expr) -> str:
    """The final identifier of a call target ('' if exotic)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _iterates_all_fields(node: ast.expr) -> bool:
    """Whether an expression derives from ``fields(...)``/``asdict(...)``.

    Both spell "every dataclass field, whatever they are" — the generic
    emission/consumption idiom that stays correct as fields are added.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) \
                and _call_tail(sub.func) in ("fields", "asdict"):
            return True
    return False


def _string_constants(node: ast.AST) -> Set[str]:
    """Every string literal appearing anywhere under ``node``."""
    return {sub.value for sub in ast.walk(node)
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str)}


def _dict_literal_keys(node: ast.expr) -> Set[str]:
    """Direct string keys of a dict literal (nested dicts excluded)."""
    if not isinstance(node, ast.Dict):
        return set()
    return {key.value for key in node.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)}


def _subscript_key(target: ast.expr) -> Optional[str]:
    """The constant string key of a ``name[key]`` target, if that shape."""
    if (isinstance(target, ast.Subscript)
            and isinstance(target.slice, ast.Constant)
            and isinstance(target.slice.value, str)):
        return target.slice.value
    return None


def _emission_of(fn: ast.FunctionDef,
                 all_fields: Tuple[str, ...],
                 ) -> Tuple[Set[str], Set[str]]:
    """Split the keys ``fn`` emits into (unconditional, conditional).

    A dataflow-free approximation that covers the repo's emission
    idioms: literal dict returns, ``fields()``/``asdict()`` generic
    emission (standing for every dataclass field), top-level subscript
    stores, and ``del``/branch-guarded stores as the conditional forms.
    """
    unconditional: Set[str] = set()
    conditional: Set[str] = set()

    def emitted_by(expr: ast.expr) -> Set[str]:
        if _iterates_all_fields(expr):
            return set(all_fields) | _dict_literal_keys(expr)
        return _dict_literal_keys(expr)

    def visit(statements: List[ast.stmt], branch: bool) -> None:
        sink = conditional if branch else unconditional
        for stmt in statements:
            if isinstance(stmt, ast.Assign):
                sink.update(emitted_by(stmt.value))
                for target in stmt.targets:
                    key = _subscript_key(target)
                    if key is not None:
                        sink.add(key)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                sink.update(emitted_by(stmt.value))
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    key = _subscript_key(target)
                    if key is not None:
                        unconditional.discard(key)
                        if branch:
                            conditional.add(key)
            elif isinstance(stmt, (ast.If,)):
                visit(stmt.body, True)
                visit(stmt.orelse, True)
            elif isinstance(stmt, (ast.For, ast.While)):
                visit(stmt.body, True)
                visit(stmt.orelse, True)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body, True)
                visit(stmt.orelse, True)
                visit(stmt.finalbody, branch)
                for handler in stmt.handlers:
                    visit(handler.body, True)
            elif isinstance(stmt, ast.With):
                visit(stmt.body, branch)

    visit(fn.body, False)
    return unconditional, conditional - unconditional


def _self_chain(value: ast.expr) -> Optional[Tuple[str, str]]:
    """Decompose a ``self.<attr>.<field>`` expression, or None."""
    if (isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Attribute)
            and isinstance(value.value.value, ast.Name)
            and value.value.value.id == "self"):
        return value.value.attr, value.attr
    return None


@register
class GoldenFlowPass:
    """Checks the mapping layer's round-trip and digest contracts."""

    name = "goldenflow"
    #: Cache version; bump when rules or the pinned table change.
    version = 1
    rules: Tuple[Rule, ...] = (
        Rule("golden-roundtrip",
             "mapping dataclass field missing from the round-trip",
             Severity.ERROR,
             "emit the field in to_mapping and consume it in "
             "from_mapping (or drop the field)"),
        Rule("golden-emit",
             "unconditional emission set deviates from the pinned "
             "golden contract",
             Severity.ERROR,
             "emit new fields conditionally (absent-means-default), or "
             "update GOLDEN_UNCONDITIONAL together with a deliberate "
             "golden regeneration"),
        Rule("golden-forward",
             "spec knob not forwarded to SystemOptions",
             Severity.ERROR,
             "forward every spec field at the SystemOptions "
             "construction site (or add a reviewed exemption)"),
    )

    def run(self, ctx: ModuleContext,
            project: ProjectContext) -> List[Finding]:
        """Scan mapping classes and SystemOptions forwarding sites."""
        collector = _Collector(self, ctx, project)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                collector.check_class(node)
        return sorted(collector.findings,
                      key=lambda f: (f.line, f.rule, f.message))


class _Collector:
    """Accumulates goldenflow findings for one module."""

    def __init__(self, owner: GoldenFlowPass, ctx: ModuleContext,
                 project: ProjectContext) -> None:
        self.ctx = ctx
        self.project = project
        self.findings: List[Finding] = []
        self._rules = {rule.id: rule for rule in owner.rules}

    def _add(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = self._rules[rule_id]
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            rule=rule_id, path=self.ctx.path, line=line, message=message,
            source=self.ctx.source_line(line),
            severity=rule.default_severity,
            fix_hint=rule.default_fix_hint))

    # -- per-class checks ----------------------------------------------------

    def check_class(self, node: ast.ClassDef) -> None:
        """Apply the mapping and forwarding rules to one class."""
        methods = {stmt.name: stmt for stmt in node.body
                   if isinstance(stmt, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))}
        to_mapping = methods.get("to_mapping")
        from_mapping = methods.get("from_mapping")
        is_dataclass = _is_dataclass_def(node)
        local_fields = _dataclass_field_names(node) if is_dataclass else ()
        if to_mapping is not None and from_mapping is not None \
                and is_dataclass:
            self._check_roundtrip(node, to_mapping, from_mapping,
                                  local_fields)
        if to_mapping is not None \
                and isinstance(to_mapping, ast.FunctionDef):
            self._check_emission(node, to_mapping, local_fields)
        self._check_forwarding(node, methods)

    def _check_roundtrip(self, cls: ast.ClassDef, to_fn: ast.stmt,
                         from_fn: ast.stmt,
                         fields_tuple: Tuple[str, ...]) -> None:
        """Every field must appear on both sides of the round-trip."""
        for direction, fn in (("emitted by to_mapping", to_fn),
                              ("consumed by from_mapping", from_fn)):
            if _iterates_all_fields(fn):
                continue
            mentioned = _string_constants(fn)
            for field_name in fields_tuple:
                if field_name not in mentioned:
                    self._add("golden-roundtrip", fn,
                              f"field '{field_name}' of {cls.name} is "
                              f"never {direction}; it is silently "
                              f"dropped on the mapping path")

    def _check_emission(self, cls: ast.ClassDef, to_fn: ast.FunctionDef,
                        fields_tuple: Tuple[str, ...]) -> None:
        """The unconditional key set must match the pinned contract."""
        unconditional, conditional = _emission_of(to_fn, fields_tuple)
        pinned = GOLDEN_UNCONDITIONAL.get(cls.name)
        if pinned is None:
            for key in sorted(conditional):
                self._add("golden-emit", to_fn,
                          f"{cls.name}.to_mapping emits '{key}' "
                          f"conditionally without a pinned golden "
                          f"contract; absent-means-default emission "
                          f"must be a reviewed GOLDEN_UNCONDITIONAL "
                          f"entry")
            return
        for key in sorted(unconditional - pinned):
            self._add("golden-emit", to_fn,
                      f"{cls.name}.to_mapping unconditionally emits "
                      f"'{key}', which is outside the pinned golden "
                      f"contract; every committed golden digest "
                      f"embedding this mapping would change")
        for key in sorted(pinned - unconditional):
            self._add("golden-emit", to_fn,
                      f"pinned golden key '{key}' of {cls.name} is no "
                      f"longer unconditionally emitted; committed "
                      f"digests relying on it would change")

    # -- forwarding ----------------------------------------------------------

    def _check_forwarding(self, cls: ast.ClassDef,
                          methods: Dict[str, ast.stmt]) -> None:
        """Check every SystemOptions forwarding site in the class."""
        attr_types: Dict[str, str] = {}
        for stmt in cls.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                tail = stmt.annotation
                if isinstance(tail, ast.Name):
                    attr_types[stmt.target.id] = tail.id
                elif isinstance(tail, ast.Attribute):
                    attr_types[stmt.target.id] = tail.attr
        for fn in methods.values():
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) \
                        and _call_tail(node.func) == "SystemOptions":
                    self._check_forward_call(node, attr_types)

    def _check_forward_call(self, call: ast.Call,
                            attr_types: Dict[str, str]) -> None:
        """One SystemOptions(...) site forwarding spec attributes."""
        if any(kw.arg is None for kw in call.keywords):
            return  # **kwargs: opaque, nothing to prove
        forwarded: Dict[str, Set[str]] = {}
        for kw in call.keywords:
            chain = _self_chain(kw.value)
            if chain is not None:
                forwarded.setdefault(chain[0], set()).add(chain[1])
        if not forwarded:
            return  # not a spec-forwarding site (defaults are fine)
        passed = {kw.arg for kw in call.keywords}
        sys_fields = self.project.dataclass_fields("SystemOptions") or ()
        for field_name in sys_fields:
            if field_name not in passed and field_name not in FORWARD_EXEMPT:
                self._add("golden-forward", call,
                          f"SystemOptions(...) does not forward "
                          f"'{field_name}'; the spec-configured system "
                          f"silently falls back to its default")
        for attr, seen in sorted(forwarded.items()):
            spec_cls = attr_types.get(attr)
            if spec_cls is None:
                continue
            spec_fields = self.project.dataclass_fields(spec_cls)
            if spec_fields is None:
                continue
            for field_name in spec_fields:
                if field_name not in seen:
                    self._add("golden-forward", call,
                              f"field '{field_name}' of {spec_cls} "
                              f"(self.{attr}) is never forwarded to "
                              f"SystemOptions; the knob validates and "
                              f"digests but never reaches the "
                              f"simulator")
