"""Simulated-time determinism pass.

The golden-trace harness (:mod:`repro.verify`) certifies that canonical
runs are bit-reproducible; this pass certifies the *source* obeys the
rules that make those runs reproducible in the first place.  It subsumes
the determinism rules of the original ``repro.verify.lint`` (which is
now a shim over this framework) and adds two event-engine rules:

``unseeded-rng``
    ``np.random.default_rng()`` / ``random.Random()`` constructed
    without an explicit seed — nondeterminism by construction.
``global-rng``
    Calls through numpy's legacy global generator (``np.random.
    uniform``, ``np.random.seed``, ...).  Global RNG state leaks across
    call sites and breaks the "every trial's seed derives from its
    coordinates" contract the parallel sweeps rely on.
``wall-clock``
    Wall-clock reads (``time.time``, ``perf_counter``, ``datetime.now``)
    inside the simulator core packages; the simulation must advance only
    on its own event clock.  Host time belongs to the side-car layers
    (``runner``, ``obs``) only.
``heap-tiebreak``
    ``heapq.heappush`` of a bare ``(time, payload)`` pair.  Two events at
    the same timestamp then compare on the payload — falling back to
    object identity order (or raising) — so same-time events pop in an
    unreproducible order.  The engine's contract is ``(time, seq,
    payload)`` with a monotone sequence number.
``unordered-iter``
    Iterating directly over a set (literal, ``set(...)``, or a local
    bound to one).  Set iteration order depends on insertion history and
    hash seeding; anything accumulated from it — float sums, digests,
    event schedules — is run-to-run unstable.  Iterate ``sorted(...)``
    instead.
"""

from __future__ import annotations

import ast
from typing import List, Sequence, Set, Tuple

from repro.staticcheck.context import ModuleContext, ProjectContext
from repro.staticcheck.dataflow import local_bindings
from repro.staticcheck.model import Finding, Severity
from repro.staticcheck.registry import Pass, Rule, register

#: Top-level ``repro`` subpackages that form the simulator core — the
#: only places the wall-clock rule applies (runner/obs are host-side).
WALL_CLOCK_PACKAGES: Tuple[str, ...] = ("soc", "pdn", "pmu", "microarch")

#: Wall-clock attribute names on the ``time`` module.
_TIME_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})

#: Wall-clock attribute names on ``datetime``/``datetime.datetime``.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register
class DeterminismPass:
    """Flags sources of run-to-run nondeterminism."""

    name = "determinism"
    rules: Tuple[Rule, ...] = (
        Rule("unseeded-rng",
             "RNG constructed without an explicit seed",
             Severity.ERROR,
             "derive the seed from the trial's coordinates and pass it "
             "explicitly"),
        Rule("global-rng",
             "call through numpy's legacy global RNG",
             Severity.ERROR,
             "construct a local np.random.default_rng(seed) and call "
             "methods on it"),
        Rule("wall-clock",
             "wall-clock read inside the simulator core",
             Severity.WARNING,
             "advance on the engine's simulated clock; host time "
             "belongs to runner/obs only"),
        Rule("heap-tiebreak",
             "heap entry without a monotone tiebreak key",
             Severity.ERROR,
             "push (time, next(seq), payload) so same-timestamp events "
             "pop in schedule order"),
        Rule("unordered-iter",
             "iteration directly over an unordered set",
             Severity.WARNING,
             "iterate sorted(the_set) so downstream accumulation is "
             "order-stable"),
    )

    def run(self, ctx: ModuleContext,
            project: ProjectContext) -> List[Finding]:
        """Visit the module tree with every determinism rule armed."""
        visitor = _Visitor(self, ctx,
                           ctx.in_packages(WALL_CLOCK_PACKAGES))
        visitor.visit(ctx.tree)
        return visitor.findings


class _Visitor(ast.NodeVisitor):
    """Collects determinism findings for one module."""

    def __init__(self, owner: DeterminismPass, ctx: ModuleContext,
                 check_wall_clock: bool) -> None:
        self.owner = owner
        self.ctx = ctx
        self.check_wall_clock = check_wall_clock
        self.findings: List[Finding] = []
        self._rules = {rule.id: rule for rule in owner.rules}
        #: Names imported from ``time`` that read the wall clock.
        self._wall_clock_names: Set[str] = set()
        #: Local names currently known to be bound to sets.
        self._set_names: Set[str] = set()

    def _add(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = self._rules[rule_id]
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            rule=rule_id, path=self.ctx.path, line=line, message=message,
            source=self.ctx.source_line(line),
            severity=rule.default_severity,
            fix_hint=rule.default_fix_hint))

    # -- imports feeding the wall-clock rule --------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Track wall-clock names imported from ``time``."""
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_ATTRS:
                    self._wall_clock_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls: RNG rules, wall-clock, heap pushes --------------------------

    def visit_Call(self, node: ast.Call) -> None:
        """Apply the RNG and heap-tiebreak rules to one call."""
        func = node.func
        tail = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        if tail == "default_rng" and not node.args and not node.keywords:
            self._add("unseeded-rng", node,
                      "np.random.default_rng() without an explicit seed")
        if tail == "Random" and not node.args and not node.keywords:
            base = func.value if isinstance(func, ast.Attribute) else None
            if base is None or (isinstance(base, ast.Name)
                                and base.id == "random"):
                self._add("unseeded-rng", node,
                          "random.Random() without an explicit seed")
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in ("np", "numpy")
                and func.attr not in ("default_rng", "Generator",
                                      "SeedSequence", "PCG64", "Philox")):
            self._add("global-rng", node,
                      f"legacy global-state RNG np.random.{func.attr}(...)")
        if tail == "heappush" and len(node.args) == 2:
            item = node.args[1]
            if isinstance(item, ast.Tuple) and len(item.elts) == 2:
                self._add(
                    "heap-tiebreak", node,
                    "heappush of a (time, payload) pair: same-timestamp "
                    "entries fall through to comparing payloads")
        self.generic_visit(node)

    # -- attribute/name reads: wall clock -----------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        """Apply the wall-clock rule to attribute reads."""
        if self.check_wall_clock:
            value = node.value
            if (isinstance(value, ast.Name) and value.id == "time"
                    and node.attr in _TIME_ATTRS):
                self._add("wall-clock", node,
                          f"wall-clock read time.{node.attr} in "
                          f"simulator core")
            if node.attr in _DATETIME_ATTRS:
                base = value
                if (isinstance(base, ast.Name) and base.id == "datetime") or (
                        isinstance(base, ast.Attribute)
                        and base.attr == "datetime"):
                    self._add("wall-clock", node,
                              f"wall-clock read datetime.{node.attr} "
                              f"in simulator core")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        """Flag uses of names imported from the wall clock."""
        if (self.check_wall_clock and isinstance(node.ctx, ast.Load)
                and node.id in self._wall_clock_names):
            self._add("wall-clock", node,
                      f"wall-clock read {node.id} (imported from time) "
                      f"in simulator core")
        self.generic_visit(node)

    # -- set iteration -------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Track this function's set-valued locals, then descend."""
        self._with_set_names(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._with_set_names(node)

    def _with_set_names(self, node) -> None:
        previous = self._set_names
        self._set_names = previous | set(local_bindings(node).sets)
        self.generic_visit(node)
        self._set_names = previous

    def _check_iterable(self, iterable: ast.AST) -> None:
        if _is_set_expr(iterable):
            self._add("unordered-iter", iterable,
                      "iterating directly over a set; order depends on "
                      "hashing")
        elif (isinstance(iterable, ast.Name)
              and iterable.id in self._set_names):
            self._add("unordered-iter", iterable,
                      f"iterating over set-valued local '{iterable.id}'; "
                      f"order depends on hashing")

    def visit_For(self, node: ast.For) -> None:
        """Apply the unordered-iter rule to for-loops."""
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
