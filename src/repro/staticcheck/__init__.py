"""Plugin-based static analysis for the simulator's own invariants.

Generic linters cannot know that ``idle_close_us`` must be converted
before comparison with ``now_ns``, that every heap entry needs a
monotone tiebreak, or that a ``SweepRunner`` task must be a picklable
module-level function.  This package encodes those project invariants
as *passes* over per-module ASTs plus a lightweight intra-function
dataflow layer, behind one driver with waivers, a ratchet baseline, and
text/JSON/SARIF reporters:

* :mod:`repro.staticcheck.passes.dimensional` — unit-tag dataflow
  (mixing ns with us, passing us where ns is expected, time/frequency
  division);
* :mod:`repro.staticcheck.passes.determinism` — simulated-time
  determinism (unseeded RNGs, wall-clock reads, heap tiebreaks,
  unordered-set iteration);
* :mod:`repro.staticcheck.passes.poolsafety` — process-pool safety
  (unpicklable callables, worker-side global mutation);
* :mod:`repro.staticcheck.passes.asyncsafety` — event-loop safety in
  the service layer (blocking calls in coroutines, unawaited
  coroutines, dropped task handles, resources held across awaits,
  shared-state mutation);
* :mod:`repro.staticcheck.passes.goldenflow` — mapping-layer golden
  contracts (round-trip completeness, digest-stable emission,
  SystemOptions forwarding coverage);
* :mod:`repro.staticcheck.passes.hygiene` — API hygiene (float
  equality on physics, mutable defaults, hints/docstrings).

Run it with ``python -m repro.staticcheck [paths] [--format text|json|
sarif] [--rule ID] [--baseline FILE]``.  ``--cache-dir``/``--jobs``/
``--changed`` enable the incremental parallel engine (per-module
findings cached on source hash, pass version and project digest).  The
legacy ``repro.verify.lint`` module is a thin shim over this package.
"""

from repro.staticcheck.baseline import (  # noqa: F401
    describe_stale_entry,
    load_baseline,
    refresh_command,
    save_baseline,
)
from repro.staticcheck.cache import (  # noqa: F401
    AnalysisCache,
    default_cache_root,
    source_hash,
)
from repro.staticcheck.context import (  # noqa: F401
    FunctionSig,
    ModuleContext,
    ProjectContext,
    module_facts,
)
from repro.staticcheck.dataflow import (  # noqa: F401
    UnitTag,
    scan_function,
    tag_of_identifier,
)
from repro.staticcheck.model import (  # noqa: F401
    CacheUsage,
    Finding,
    PassTiming,
    Report,
    Severity,
    Waiver,
)
from repro.staticcheck.registry import (  # noqa: F401
    Pass,
    Rule,
    all_passes,
    all_rules,
    expand_selection,
    get_pass,
    pass_version,
    register,
    rule_ids,
    rule_owners,
)
from repro.staticcheck.reporters import render, to_json, to_sarif  # noqa: F401
from repro.staticcheck.runner import (  # noqa: F401
    analyze_paths,
    analyze_source,
    default_root,
)
from repro.staticcheck.waivers import (  # noqa: F401
    default_waivers_path,
    load_waivers,
    parse_waivers,
)

__all__ = [
    "AnalysisCache", "CacheUsage", "Finding", "FunctionSig",
    "ModuleContext", "Pass", "PassTiming", "ProjectContext", "Report",
    "Rule", "Severity", "UnitTag", "Waiver",
    "all_passes", "all_rules", "analyze_paths", "analyze_source",
    "default_cache_root", "default_root", "default_waivers_path",
    "describe_stale_entry", "expand_selection", "get_pass",
    "load_baseline", "load_waivers", "module_facts", "parse_waivers",
    "pass_version", "refresh_command", "register", "render",
    "rule_ids", "rule_owners", "save_baseline", "scan_function",
    "source_hash", "tag_of_identifier", "to_json", "to_sarif",
]
