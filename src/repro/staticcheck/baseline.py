"""Baseline mechanism: accept today's findings, gate tomorrow's.

A baseline is a committed JSON file of *known* findings.  A run with a
baseline reports only findings that are not in it — so a new rule can
land with its existing debt recorded, while any regression fails CI
immediately.  Entries match on ``(rule, path, source line)`` rather
than line numbers, so unrelated edits above a finding don't invalidate
the baseline.

Stale entries (matching nothing) are reported and fail the run: a
baseline may only shrink silently, never rot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.staticcheck.model import Finding

#: Schema version of the baseline file format.
BASELINE_VERSION = 1


def _key(rule: str, path: str, source: str) -> Tuple[str, str, str]:
    """The identity a baseline entry matches findings on."""
    return (rule, path, source.strip())


def entry_of(finding: Finding) -> Dict[str, str]:
    """The JSON entry recording one finding in a baseline."""
    return {"rule": finding.rule, "path": finding.path,
            "source": finding.source.strip()}


def save_baseline(findings: Sequence[Finding], path: Path) -> int:
    """Write a baseline covering ``findings``; returns the entry count.

    Duplicate (rule, path, source) triples collapse to one entry — the
    matcher treats an entry as covering every identical occurrence.
    """
    entries = sorted(
        {_key(f.rule, f.path, f.source) for f in findings})
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {"rule": rule, "path": file_path, "source": source}
            for rule, file_path, source in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)


def load_baseline(path: Optional[Path]) -> List[Dict[str, str]]:
    """The entries of a baseline file ([] when ``path`` is None)."""
    if path is None:
        return []
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from None
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ConfigError(f"baseline {path}: expected an object with 'entries'")
    entries = payload["entries"]
    for entry in entries:
        if not all(key in entry for key in ("rule", "path", "source")):
            raise ConfigError(
                f"baseline {path}: entry missing rule/path/source: {entry}")
    return list(entries)


def apply_baseline(findings: Sequence[Finding],
                   entries: Sequence[Dict[str, str]],
                   ) -> Tuple[List[Finding], List[Finding],
                              List[Dict[str, str]]]:
    """Split findings by baseline coverage.

    Returns ``(new, baselined, unused)``: findings not covered by any
    entry, findings covered, and the entries that covered nothing
    (stale debt that must be deleted), each as its original
    ``{"rule", "path", "source"}`` dict so reporters can name the rule
    and file instead of dumping a raw JSON key.
    """
    table = {_key(e["rule"], e["path"], e["source"]) for e in entries}
    used: set = set()
    new: List[Finding] = []
    covered: List[Finding] = []
    for finding in findings:
        key = _key(finding.rule, finding.path, finding.source)
        if key in table:
            used.add(key)
            covered.append(finding)
        else:
            new.append(finding)
    unused = [
        {"rule": rule, "path": path, "source": source}
        for rule, path, source in sorted(table - used)
    ]
    return new, covered, unused


def describe_stale_entry(entry: Dict[str, str]) -> str:
    """Human-readable description of one stale baseline entry."""
    return (f"rule '{entry['rule']}' no longer fires in {entry['path']} "
            f"(recorded source: {entry['source']!r})")


def refresh_command(roots: Sequence[str],
                    baseline_path: Optional[str]) -> str:
    """The exact command that re-records the baseline for a run."""
    target = baseline_path or "tests/staticcheck_baseline.json"
    paths = " ".join(str(root) for root in roots)
    prefix = f"python -m repro.staticcheck {paths} " if paths \
        else "python -m repro.staticcheck "
    return (f"{prefix}--baseline {target} "
            f"--write-baseline {target}")
