"""Report renderers: terminal text, machine JSON, and SARIF 2.1.0.

The SARIF output targets the subset GitHub code scanning consumes: one
run, a driver with a rule catalog, and one result per live finding with
a physical location and a content-based partial fingerprint (so moving
a finding between lines doesn't open a duplicate alert).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from repro.staticcheck.baseline import describe_stale_entry, refresh_command
from repro.staticcheck.model import Report
from repro.staticcheck.registry import all_rules, rule_owners

#: The schema URI GitHub's SARIF ingestion validates against.
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"
TOOL_NAME = "repro.staticcheck"


def render_text(report: Report, verbose: bool = False) -> str:
    """Human-readable multi-line report."""
    lines = []
    for finding in report.findings:
        lines.append(finding.render_long() if verbose else finding.render())
    for waiver in report.unused_waivers:
        lines.append(f"warning: unused waiver '{waiver.render()}'")
    for entry in report.unused_baseline:
        lines.append(
            f"error: stale baseline entry: {describe_stale_entry(entry)}")
    if report.unused_baseline:
        lines.append(
            f"hint: delete the stale entries, or re-record the baseline "
            f"with: {refresh_command(report.roots, report.baseline_path)}")
    counts = report.counts_by_rule()
    summary = (", ".join(f"{rule}: {count}" for rule, count in counts.items())
               if counts else "clean")
    lines.append(
        f"{len(report.findings)} finding(s) in {report.files_analyzed} "
        f"file(s) [{summary}] "
        f"({len(report.waived)} waived, {len(report.baselined)} baselined)")
    return "\n".join(lines)


def to_json(report: Report) -> Dict[str, Any]:
    """JSON-serialisable dict of the full report."""
    def finding_dict(finding):
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "source": finding.source,
            "severity": finding.severity.value,
            "fix_hint": finding.fix_hint,
        }

    return {
        "tool": TOOL_NAME,
        "files_analyzed": report.files_analyzed,
        "findings": [finding_dict(f) for f in report.findings],
        "waived": [finding_dict(f) for f in report.waived],
        "baselined": [finding_dict(f) for f in report.baselined],
        "unused_waivers": [w.render() for w in report.unused_waivers],
        "unused_baseline": list(report.unused_baseline),
        "timings": [
            {"pass": t.pass_name, "wall_ms": t.wall_ms,
             "modules": t.modules, "findings": t.findings}
            for t in report.timings
        ],
        "cache": None if report.cache is None else report.cache.as_dict(),
        "baseline_path": report.baseline_path,
        "changed_only": report.changed_only,
        "ok": report.ok,
    }


def _fingerprint(finding) -> str:
    """Stable content hash of a finding (line-number independent)."""
    digest = hashlib.sha256()
    digest.update(
        f"{finding.rule}|{finding.path}|{finding.source.strip()}".encode())
    return digest.hexdigest()[:32]


def to_sarif(report: Report) -> Dict[str, Any]:
    """SARIF 2.1.0 log of the report's live findings.

    Beyond the code-scanning core (driver + rules + results), the run
    carries an ``invocations`` record with ``executionSuccessful`` and
    property bags: run-level cache/timing statistics, plus a per-rule
    bag naming the owning pass and its wall-clock share.
    """
    owners = rule_owners()
    pass_wall_ms = {t.pass_name: t.wall_ms for t in report.timings}
    rules_meta = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {
                "level": rule.default_severity.sarif_level,
            },
            **({"help": {"text": rule.default_fix_hint}}
               if rule.default_fix_hint else {}),
            "properties": {
                "pass": owners.get(rule.id, ""),
                "passWallMs": pass_wall_ms.get(owners.get(rule.id, ""), 0.0),
            },
        }
        for rule in all_rules().values()
    ]
    rule_index = {meta["id"]: i for i, meta in enumerate(rules_meta)}
    results = []
    for finding in report.findings:
        message = finding.message
        if finding.fix_hint:
            message = f"{message} (fix: {finding.fix_hint})"
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": finding.severity.sarif_level,
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "snippet": {"text": finding.source},
                    },
                },
            }],
            "partialFingerprints": {
                "repro/staticcheck/v1": _fingerprint(finding),
            },
        })
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri":
                        "https://example.invalid/repro/docs/STATICCHECK.md",
                    "rules": rules_meta,
                },
            },
            "invocations": [{
                "executionSuccessful": report.ok,
            }],
            "results": results,
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "repository source root (src/)"}},
            },
            "properties": {
                "filesAnalyzed": report.files_analyzed,
                "changedOnly": report.changed_only,
                "cache": (None if report.cache is None
                          else report.cache.as_dict()),
                "timings": [
                    {"pass": t.pass_name, "wallMs": t.wall_ms,
                     "modules": t.modules, "findings": t.findings}
                    for t in report.timings
                ],
            },
        }],
    }


def render(report: Report, fmt: str, verbose: bool = False) -> str:
    """Render ``report`` in one of ``text``/``json``/``sarif``."""
    if fmt == "text":
        return render_text(report, verbose=verbose)
    if fmt == "json":
        return json.dumps(to_json(report), indent=2)
    if fmt == "sarif":
        return json.dumps(to_sarif(report), indent=2)
    raise ValueError(f"unknown report format: {fmt!r}")
