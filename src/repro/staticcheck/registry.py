"""Pass protocol and the process-wide pass registry.

A *pass* is one analysis plugin: it owns a set of rule ids and, given a
parsed module plus the cross-module :class:`~repro.staticcheck.context.
ProjectContext`, returns findings.  Passes register themselves at import
time via the :func:`register` decorator; the driver asks the registry
which passes cover the rules a run selected.

Keeping the registry dumb (a dict, no entry points, no dynamic import
magic) means a new pass is exactly: one module under
``repro/staticcheck/passes/`` plus one import in that package's
``__init__``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Protocol, Tuple

from repro.errors import ConfigError
from repro.staticcheck.model import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.context import ModuleContext, ProjectContext


@dataclass(frozen=True)
class Rule:
    """Metadata of one rule id a pass can emit.

    ``default_severity`` and ``default_fix_hint`` seed the findings;
    ``summary`` feeds the SARIF rule catalog and ``--list-rules``.
    """

    id: str
    summary: str
    default_severity: Severity = Severity.WARNING
    default_fix_hint: str = ""


class Pass(Protocol):
    """The plugin interface every analysis pass implements.

    A pass may also carry an integer ``version`` class attribute
    (default 1, read via :func:`pass_version`).  The incremental engine
    keys cached findings on it, so bumping the version after a rule
    change invalidates stale cached results everywhere at once.
    """

    #: Unique pass name (``dimensional``, ``determinism``, ...).
    name: str
    #: The rules this pass can emit, in reporting order.
    rules: Tuple[Rule, ...]

    def run(self, ctx: "ModuleContext",
            project: "ProjectContext") -> List[Finding]:
        """Analyse one module and return its findings."""
        ...  # pragma: no cover - protocol body


def pass_version(pass_obj: Pass) -> int:
    """The pass's declared cache version (1 when undeclared)."""
    return int(getattr(pass_obj, "version", 1))


#: Registered passes by name, in registration order.
_PASSES: Dict[str, Pass] = {}
#: Rule id -> owning pass name (uniqueness enforced at registration).
_RULE_OWNERS: Dict[str, str] = {}


def register(pass_cls: type) -> type:
    """Class decorator: instantiate and register an analysis pass."""
    instance: Pass = pass_cls()
    if instance.name in _PASSES:
        raise ConfigError(f"duplicate pass name: {instance.name!r}")
    for rule in instance.rules:
        owner = _RULE_OWNERS.get(rule.id)
        if owner is not None:
            raise ConfigError(
                f"rule {rule.id!r} registered by both {owner!r} "
                f"and {instance.name!r}")
        _RULE_OWNERS[rule.id] = instance.name
    _PASSES[instance.name] = instance
    return pass_cls


def all_passes() -> List[Pass]:
    """Every registered pass, in registration order."""
    _ensure_loaded()
    return list(_PASSES.values())


def get_pass(name: str) -> Pass:
    """The registered pass called ``name``."""
    _ensure_loaded()
    if name not in _PASSES:
        raise ConfigError(
            f"unknown pass {name!r}; registered: {', '.join(_PASSES)}")
    return _PASSES[name]


def all_rules() -> Dict[str, Rule]:
    """Every registered rule by id, in pass registration order."""
    _ensure_loaded()
    rules: Dict[str, Rule] = {}
    for pass_obj in _PASSES.values():
        for rule in pass_obj.rules:
            rules[rule.id] = rule
    return rules


def rule_ids() -> Tuple[str, ...]:
    """All registered rule ids, in reporting order."""
    return tuple(all_rules())


def validate_rules(selected: Iterable[str]) -> Tuple[str, ...]:
    """Check every selected rule id exists; returns them as a tuple."""
    known = all_rules()
    chosen = tuple(selected)
    for rule_id in chosen:
        if rule_id not in known:
            raise ConfigError(
                f"unknown rule {rule_id!r}; valid: {', '.join(known)}")
    return chosen


def expand_selection(selected: Iterable[str]) -> Tuple[str, ...]:
    """Resolve a mixed rule-id / pass-name selection to rule ids.

    ``--rule asyncsafety`` selects every rule the asyncsafety pass
    owns; ``--rule async-unawaited`` selects exactly that rule.  A name
    that is neither raises :class:`~repro.errors.ConfigError` listing
    both namespaces.
    """
    _ensure_loaded()
    known = all_rules()
    expanded: List[str] = []
    for item in selected:
        if item in known:
            expanded.append(item)
        elif item in _PASSES:
            expanded.extend(rule.id for rule in _PASSES[item].rules)
        else:
            raise ConfigError(
                f"unknown rule or pass {item!r}; valid rules: "
                f"{', '.join(known)}; valid passes: {', '.join(_PASSES)}")
    return tuple(dict.fromkeys(expanded))


def rule_owners() -> Dict[str, str]:
    """Rule id -> owning pass name, for reporters and cache keys."""
    _ensure_loaded()
    return dict(_RULE_OWNERS)


def passes_for(selected: Optional[Iterable[str]]) -> List[Pass]:
    """The passes needed to evaluate ``selected`` (None = all).

    ``selected`` may mix rule ids and pass names; see
    :func:`expand_selection`.
    """
    _ensure_loaded()
    if selected is None:
        return all_passes()
    wanted = set(expand_selection(selected))
    chosen: List[Pass] = []
    for pass_obj in _PASSES.values():
        if any(rule.id in wanted for rule in pass_obj.rules):
            chosen.append(pass_obj)
    return chosen


def _ensure_loaded() -> None:
    """Import the built-in passes so registration has happened."""
    import repro.staticcheck.passes  # noqa: F401  (registration side effect)
