"""Core data model of the static-analysis framework.

Everything a pass produces or a reporter consumes lives here: the
:class:`Severity` ladder, the :class:`Finding` record (one diagnostic at
one source location, with a machine-applicable *fix hint*), the
:class:`Waiver` record (one deliberate, reviewed exception), and the
:class:`Report` aggregate a full analysis run returns.

The model is deliberately independent of both the AST layer and the
reporters so that new output formats (or new front ends) never touch the
passes.
"""

from __future__ import annotations

import enum
import fnmatch
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@enum.unique
class Severity(enum.Enum):
    """How bad a finding is, from definite defect down to style.

    The three levels map one-to-one onto SARIF's ``error``/``warning``/
    ``note`` result levels, so the CI annotations keep the same triage
    order as the terminal report.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def sarif_level(self) -> str:
        """The SARIF ``level`` string for this severity."""
        return self.value

    @property
    def rank(self) -> int:
        """Sort key: errors first, notes last."""
        return {"error": 0, "warning": 1, "note": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violated at a source location.

    The first five fields match the legacy ``repro.verify.lint.Finding``
    exactly (rule id, repo-relative posix path, 1-based line, message,
    stripped source line), so waiver files and downstream tooling keep
    working; ``severity`` and ``fix_hint`` are additive.
    """

    rule: str
    path: str
    line: int
    message: str
    source: str
    severity: Severity = Severity.WARNING
    fix_hint: str = ""
    col: int = 0

    def render(self) -> str:
        """One ``path:line: [rule] message`` report line."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def render_long(self) -> str:
        """Multi-line rendering with severity, source and fix hint."""
        lines = [f"{self.path}:{self.line}: {self.severity.value} "
                 f"[{self.rule}] {self.message}"]
        if self.source:
            lines.append(f"    | {self.source}")
        if self.fix_hint:
            lines.append(f"    fix: {self.fix_hint}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Waiver:
    """One deliberate exception from a waiver file.

    Grammar (one per line): ``rule path-glob [substring]`` — the rule id,
    an fnmatch glob (or suffix) over the finding's posix path, and an
    optional substring that must appear in the offending source line.
    """

    rule: str
    path_glob: str
    substring: Optional[str] = None

    def matches(self, finding: Finding) -> bool:
        """Whether this waiver covers ``finding``."""
        if self.rule != finding.rule:
            return False
        path = finding.path.replace(os.sep, "/")
        if not (fnmatch.fnmatch(path, self.path_glob)
                or path.endswith(self.path_glob)):
            return False
        if self.substring is not None and self.substring not in finding.source:
            return False
        return True

    def render(self) -> str:
        """The waiver-file line this record corresponds to."""
        tail = f" {self.substring}" if self.substring else ""
        return f"{self.rule} {self.path_glob}{tail}"


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock cost of one pass across one analysis run.

    ``modules`` counts modules the pass actually executed on (cache
    hits excluded); ``findings`` counts every finding attributed to the
    pass this run, cached or fresh.
    """

    pass_name: str
    wall_ms: float
    modules: int = 0
    findings: int = 0


@dataclass
class CacheUsage:
    """Hit/miss counters of the incremental findings cache for one run."""

    hits: int = 0
    misses: int = 0
    stored: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for the JSON reporter and the stats artifact."""
        return {"hits": self.hits, "misses": self.misses,
                "stored": self.stored}


@dataclass
class Report:
    """Outcome of one analysis run, split by suppression status.

    ``findings`` are live (unsuppressed) diagnostics; ``waived`` and
    ``baselined`` were matched by a waiver or a baseline entry;
    ``unused_waivers`` / ``unused_baseline`` are suppressions that
    matched nothing and should be deleted before they rot.
    """

    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    unused_waivers: List[Waiver] = field(default_factory=list)
    #: Stale baseline entries as ``{"rule", "path", "source"}`` dicts.
    unused_baseline: List[Dict[str, str]] = field(default_factory=list)
    #: How many files the run analysed (for the summary line).
    files_analyzed: int = 0
    #: Per-pass wall-clock timings, sorted by pass name.
    timings: List[PassTiming] = field(default_factory=list)
    #: Findings-cache counters (None when caching was disabled).
    cache: Optional[CacheUsage] = None
    #: The baseline file this run applied, for the stale-entry hint.
    baseline_path: Optional[str] = None
    #: The analysed root paths as given, for the stale-entry hint.
    roots: Tuple[str, ...] = ()
    #: True when ``--changed`` restricted analysis to touched modules.
    changed_only: bool = False

    @property
    def ok(self) -> bool:
        """True when no live findings and no stale baseline entries remain."""
        return not self.findings and not self.unused_baseline

    def counts_by_rule(self) -> "dict[str, int]":
        """Live finding count per rule id, sorted by rule."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))
