"""Core idle states (C-states) and their wake latencies.

Figure 1 of the paper shows a power gate around each entire core: idle
cores are first clock-gated (C1) and then power-gated (C6), cutting
their contribution to the shared rail's current to (almost) nothing.
Client processors idle more than 80 % of the day (Section 6.3), so the
idle machinery matters for the power numbers — and it interacts with
the covert channels only through a *constant* wake latency that the
receiver's calibration absorbs, which the tests demonstrate.

C-state modelling is opt-in (``ProcessorConfig.cstates_enabled``); the
paper's experiments run with busy loops where it never engages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError
from repro.units import us_to_ns


@enum.unique
class CState(enum.IntEnum):
    """Idle depth of one core (subset of the ACPI ladder)."""

    C0 = 0   # active
    C1 = 1   # clock-gated
    C6 = 6   # power-gated (core PG of Figure 1)


@dataclass(frozen=True)
class CStateSpec:
    """Entry thresholds, exit latencies, and residual Cdyn per state.

    Exit latencies follow the usual client-part magnitudes: C1 wakes in
    about a microsecond, C6 pays tens of microseconds for the staggered
    core power-gate and state restore.
    """

    c1_entry_us: float = 5.0
    c6_entry_us: float = 60.0
    c1_exit_ns: float = 1_000.0
    c6_exit_ns: float = 30_000.0
    c1_idle_cdyn_nf: float = 0.2
    c6_idle_cdyn_nf: float = 0.02

    def __post_init__(self) -> None:
        if not 0 < self.c1_entry_us < self.c6_entry_us:
            raise ConfigError("entry thresholds must satisfy 0 < C1 < C6")
        if self.c1_exit_ns < 0 or self.c6_exit_ns < self.c1_exit_ns:
            raise ConfigError("exit latencies must satisfy 0 <= C1 <= C6")
        if self.c1_idle_cdyn_nf < 0 or self.c6_idle_cdyn_nf < 0:
            raise ConfigError("idle Cdyn values must be >= 0")


@dataclass
class CStateTracker:
    """Lazy per-core idle-state bookkeeping.

    The owner reports busy/idle transitions; queries derive the current
    state from how long the core has been idle.  No events are needed —
    the state only matters at the moments someone asks.
    """

    spec: CStateSpec
    n_cores: int
    _idle_since: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigError(f"n_cores must be >= 1, got {self.n_cores}")
        if not self._idle_since:
            self._idle_since = [0.0] * self.n_cores

    def _check(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise ConfigError(f"no such core: {core}")

    def note_busy(self, core: int) -> None:
        """The core is executing right now."""
        self._check(core)
        self._idle_since[core] = float("inf")

    def note_idle(self, core: int, now_ns: float) -> None:
        """The core just ran out of work at ``now_ns``."""
        self._check(core)
        self._idle_since[core] = now_ns

    def state_at(self, core: int, now_ns: float) -> CState:
        """Idle depth of ``core`` at ``now_ns``."""
        self._check(core)
        idle_since = self._idle_since[core]
        if idle_since == float("inf"):
            return CState.C0
        idle_ns = now_ns - idle_since
        if idle_ns >= us_to_ns(self.spec.c6_entry_us):
            return CState.C6
        if idle_ns >= us_to_ns(self.spec.c1_entry_us):
            return CState.C1
        return CState.C0

    def wake_latency_ns(self, core: int, now_ns: float) -> float:
        """Exit latency the next execution on ``core`` pays."""
        state = self.state_at(core, now_ns)
        if state == CState.C6:
            return self.spec.c6_exit_ns
        if state == CState.C1:
            return self.spec.c1_exit_ns
        return 0.0

    def idle_cdyn_nf(self, core: int, now_ns: float) -> float:
        """Residual switched capacitance of an idle core at ``now_ns``."""
        state = self.state_at(core, now_ns)
        if state == CState.C6:
            return self.spec.c6_idle_cdyn_nf
        if state == CState.C1:
            return self.spec.c1_idle_cdyn_nf
        return 0.0
