"""Software frequency governors (Section 5.7).

Linux cpufreq governors pick the *requested* package frequency; the
hardware then clamps it by turbo licenses and the Icc_max/Vcc_max limit
protection.  The paper verifies that the throttling mechanism IChannels
exploits persists under ``userspace``, ``powersave`` and ``performance``
alike, because the throttle is implemented inside the core for
nanosecond-scale response and no software knob disables it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@enum.unique
class GovernorKind(enum.Enum):
    """The three policies the paper tests."""

    PERFORMANCE = "performance"
    POWERSAVE = "powersave"
    USERSPACE = "userspace"


@dataclass
class Governor:
    """A software policy choosing the requested package frequency.

    Parameters
    ----------
    kind:
        Which policy to apply.
    min_ghz / max_ghz:
        The package's frequency range.
    userspace_ghz:
        The pinned frequency for the ``userspace`` policy.
    """

    kind: GovernorKind
    min_ghz: float
    max_ghz: float
    userspace_ghz: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_ghz <= 0 or self.max_ghz < self.min_ghz:
            raise ConfigError(f"bad frequency range [{self.min_ghz}, {self.max_ghz}]")
        if self.kind == GovernorKind.USERSPACE:
            if self.userspace_ghz is None:
                raise ConfigError("userspace governor needs userspace_ghz")
            if not self.min_ghz <= self.userspace_ghz <= self.max_ghz:
                raise ConfigError(
                    f"userspace frequency {self.userspace_ghz} outside "
                    f"[{self.min_ghz}, {self.max_ghz}]"
                )

    def requested_freq_ghz(self) -> float:
        """The frequency this policy asks the PMU for."""
        if self.kind == GovernorKind.PERFORMANCE:
            return self.max_ghz
        if self.kind == GovernorKind.POWERSAVE:
            return self.min_ghz
        assert self.userspace_ghz is not None
        return self.userspace_ghz
