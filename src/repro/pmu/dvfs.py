"""Voltage/frequency curves and P-states.

The PMU converts between operating frequency and the baseline supply
voltage using a voltage/frequency (V/F) curve fused into the part.  The
baseline covers scalar code at the given frequency; guardbands for wider
or heavier instructions are added on top by
:class:`~repro.pdn.guardband.GuardbandModel`.

All cores in the client parts the paper studies share one clock domain
(Section 2, 'Clocking'), so a P-state applies to the whole package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class VFCurve:
    """Piecewise-linear V/F curve through calibration ``points``.

    ``points`` is a sequence of (freq_ghz, vcc) pairs sorted by frequency.
    Voltage for frequencies outside the span is linearly extrapolated
    from the nearest segment, clamped below at ``vcc_floor``.
    """

    points: Tuple[Tuple[float, float], ...]
    vcc_floor: float = 0.55

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ConfigError("a V/F curve needs at least two points")
        freqs = [f for f, _ in self.points]
        if any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ConfigError(f"V/F curve frequencies must increase: {freqs}")
        if any(v <= 0 for _, v in self.points):
            raise ConfigError("V/F curve voltages must be positive")
        # Memo table for vcc_for: the simulator queries a handful of
        # distinct frequencies (the P-state bins) millions of times.  The
        # curve is immutable, so caching returns the exact same floats
        # the cold path computes.
        object.__setattr__(self, "_vcc_cache", {})

    def vcc_for(self, freq_ghz: float) -> float:
        """Baseline voltage for scalar code at ``freq_ghz``."""
        cached = self._vcc_cache.get(freq_ghz)
        if cached is not None:
            return cached
        if freq_ghz <= 0:
            raise ConfigError(f"frequency must be positive, got {freq_ghz}")
        pts = self.points
        if freq_ghz <= pts[0][0]:
            lo, hi = pts[0], pts[1]
        elif freq_ghz >= pts[-1][0]:
            lo, hi = pts[-2], pts[-1]
        else:
            lo, hi = pts[0], pts[1]
            for a, b in zip(pts, pts[1:]):
                if a[0] <= freq_ghz <= b[0]:
                    lo, hi = a, b
                    break
        slope = (hi[1] - lo[1]) / (hi[0] - lo[0])
        vcc = lo[1] + slope * (freq_ghz - lo[0])
        result = max(vcc, self.vcc_floor)
        self._vcc_cache[freq_ghz] = result
        return result


@dataclass(frozen=True)
class PState:
    """One package performance state."""

    freq_ghz: float
    vcc: float

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0 or self.vcc <= 0:
            raise ConfigError(f"invalid P-state: {self.freq_ghz} GHz @ {self.vcc} V")


def pstate_ladder(curve: VFCurve, min_ghz: float, max_ghz: float,
                  step_ghz: float = 0.1) -> List[PState]:
    """Enumerate P-states from ``min_ghz`` to ``max_ghz`` on the curve.

    Intel parts expose ~100 MHz bin granularity; the ladder is sorted by
    descending frequency so limit searches can walk from fastest down.
    """
    if min_ghz <= 0 or max_ghz < min_ghz:
        raise ConfigError(f"bad P-state range [{min_ghz}, {max_ghz}]")
    if step_ghz <= 0:
        raise ConfigError(f"P-state step must be positive, got {step_ghz}")
    states: List[PState] = []
    n_steps = int(round((max_ghz - min_ghz) / step_ghz))
    for i in range(n_steps, -1, -1):
        freq = round(min_ghz + i * step_ghz, 6)
        states.append(PState(freq, curve.vcc_for(freq)))
    return states


def highest_not_above(states: Sequence[PState], ceiling_ghz: float) -> PState:
    """The fastest P-state at or below ``ceiling_ghz``.

    Falls back to the slowest state when even it exceeds the ceiling (the
    package cannot clock below its minimum bin).
    """
    if not states:
        raise ConfigError("empty P-state ladder")
    for state in states:  # sorted fastest-first
        if state.freq_ghz <= ceiling_ghz + 1e-9:
            return state
    return states[-1]
