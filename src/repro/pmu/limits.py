"""Maximum Icc/Vcc limit protection (Sections 2, 5.3).

Before committing to a voltage transition, the PMU projects the rail
voltage (baseline + guardbands) and the worst-case supply current at the
requested frequency.  If either exceeds the electrical design limits —
``Vcc_max`` (maximum operational voltage) or ``Icc_max`` (maximum VR
current, exceeding which can damage the part) — the PMU *reduces the
package frequency* to the fastest P-state that fits, which is the
frequency drop Figure 7(b) shows within tens of microseconds of an
AVX2/AVX512 phase starting.  Key Conclusion 2: this, not thermal
management, causes the post-PHI frequency reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.isa.instructions import IClass
from repro.pdn.guardband import GuardbandModel
from repro.pmu.dvfs import PState, VFCurve
from repro.units import dynamic_current


@dataclass(frozen=True)
class LimitVerdict:
    """Outcome of a limit-protection evaluation at one operating point."""

    freq_ghz: float
    vcc_target: float
    icc_projected: float
    vcc_violation: bool
    icc_violation: bool

    @property
    def ok(self) -> bool:
        """True when both electrical limits are respected."""
        return not (self.vcc_violation or self.icc_violation)


@dataclass(frozen=True)
class LimitPolicy:
    """Evaluates electrical limits for candidate operating points."""

    curve: VFCurve
    guardband: GuardbandModel
    vcc_max: float
    icc_max: float

    def __post_init__(self) -> None:
        if self.vcc_max <= 0 or self.icc_max <= 0:
            raise ConfigError("vcc_max and icc_max must be positive")
        # Limit projections are pure in (frequency, class coverage) and
        # re-evaluated on every guardband request and ladder walk; the
        # verdict dataclass is frozen, so handing the same instance back
        # is safe and bit-identical.
        object.__setattr__(self, "_verdict_cache", {})

    def evaluate(self, freq_ghz: float,
                 per_core_classes: Sequence[IClass]) -> LimitVerdict:
        """Project rail voltage and worst-case current at ``freq_ghz``.

        ``per_core_classes`` lists, for each *active* core, the most
        intense class the rail must currently cover.
        """
        key = (freq_ghz, tuple(per_core_classes))
        cached = self._verdict_cache.get(key)
        if cached is not None:
            return cached
        baseline = self.curve.vcc_for(freq_ghz)
        vcc_target = self.guardband.target_vcc(baseline, key[1], freq_ghz)
        icc = sum(
            dynamic_current(iclass.cdyn_nf, vcc_target, freq_ghz)
            for iclass in key[1]
        )
        verdict = LimitVerdict(
            freq_ghz=freq_ghz,
            vcc_target=vcc_target,
            icc_projected=icc,
            vcc_violation=vcc_target > self.vcc_max + 1e-9,
            icc_violation=icc > self.icc_max + 1e-9,
        )
        self._verdict_cache[key] = verdict
        return verdict

    def max_allowed(self, requested_ghz: float,
                    per_core_classes: Sequence[IClass],
                    ladder: Sequence[PState]) -> PState:
        """Fastest P-state <= ``requested_ghz`` that respects the limits.

        Walks the descending ladder and returns the first state that both
        fits under the requested frequency and passes :meth:`evaluate`.
        Falls back to the slowest state if nothing passes: the hardware
        cannot clock below its minimum bin, and at the minimum bin real
        parts always fit their limits by construction.
        """
        if not ladder:
            raise ConfigError("empty P-state ladder")
        for state in ladder:
            if state.freq_ghz > requested_ghz + 1e-9:
                continue
            if not per_core_classes:
                return state
            if self.evaluate(state.freq_ghz, per_core_classes).ok:
                return state
        return ladder[-1]
