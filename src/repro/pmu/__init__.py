"""Power management unit: DVFS, limits, turbo licenses, thermal, hysteresis.

The central PMU (one per package) owns the voltage regulators and the
clock PLL; it serialises voltage transitions — the root cause of the
paper's Multi-Throttling-Cores side effect — enforces the Icc_max/Vcc_max
design limits by reducing frequency, and relaxes guardbands only after the
650 us hysteresis (reset-time) expires.  Local (per-core) PMUs track the
computational intensity each core recently executed and raise voltage
requests on its behalf.
"""

from repro.pmu.dvfs import PState, VFCurve
from repro.pmu.turbo import TurboLicense, license_for_class, TurboLicenseTable
from repro.pmu.limits import LimitPolicy, LimitVerdict
from repro.pmu.thermal import ThermalModel, ThermalSpec
from repro.pmu.governors import Governor, GovernorKind
from repro.pmu.central import CentralPMU, PMUConfig
from repro.pmu.cstates import CState, CStateSpec, CStateTracker
from repro.pmu.local import LocalPMU

__all__ = [
    "PState",
    "VFCurve",
    "TurboLicense",
    "license_for_class",
    "TurboLicenseTable",
    "LimitPolicy",
    "LimitVerdict",
    "ThermalModel",
    "ThermalSpec",
    "Governor",
    "GovernorKind",
    "CentralPMU",
    "PMUConfig",
    "CState",
    "CStateSpec",
    "CStateTracker",
    "LocalPMU",
]
