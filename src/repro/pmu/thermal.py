"""First-order RC thermal model of the package.

Junction temperature follows ``dT/dt = (P * R_th - (T - T_ambient)) / tau``
with ``tau = R_th * C_th`` in the range of seconds — three to six orders
of magnitude slower than the current-management throttling the paper
studies.  The model exists to *demonstrate the negative*: during the
microsecond-scale experiments the junction temperature barely moves and
never approaches ``Tj_max``, confirming Key Conclusion 2 (the frequency
drops after PHIs are current-limit protection, not thermal management).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import ns_to_s


@dataclass(frozen=True)
class ThermalSpec:
    """Thermal parameters of a package.

    Parameters
    ----------
    r_th_c_per_w:
        Junction-to-ambient thermal resistance (degC per watt).
    tau_s:
        Thermal time constant in seconds (R_th * C_th).
    t_ambient_c:
        Ambient / heatsink reference temperature.
    tj_max_c:
        Maximum junction temperature before thermal throttling.
    """

    r_th_c_per_w: float = 0.9
    tau_s: float = 4.0
    t_ambient_c: float = 45.0
    tj_max_c: float = 100.0

    def __post_init__(self) -> None:
        if self.r_th_c_per_w <= 0 or self.tau_s <= 0:
            raise ConfigError("thermal resistance and time constant must be positive")
        if self.tj_max_c <= self.t_ambient_c:
            raise ConfigError("Tj_max must exceed ambient")


@dataclass
class ThermalModel:
    """Lazily-integrated junction temperature.

    Call :meth:`advance` with the current (piecewise-constant) package
    power at every power step; the model integrates the exact exponential
    response over the elapsed span.
    """

    spec: ThermalSpec
    temperature_c: float = field(default=0.0)
    #: Drift of the ambient/heatsink reference away from the spec value
    #: (degC); raised by the ``thermal-drift`` fault model to simulate a
    #: warming enclosure.  Steady-state temperature shifts with it.
    ambient_offset_c: float = field(default=0.0)
    _last_update_ns: float = field(default=0.0)
    _power_w: float = field(default=0.0)

    def __post_init__(self) -> None:
        # Unset sentinel: an exact-zero start temperature means "begin at
        # ambient".  Epsilon-compared — bare float equality on physical
        # quantities is banned by repro.verify.lint (rule float-eq).
        if abs(self.temperature_c) < 1e-12:
            self.temperature_c = self.spec.t_ambient_c

    def advance(self, now_ns: float, power_w: float) -> float:
        """Integrate up to ``now_ns``; then apply ``power_w`` onward.

        Returns the junction temperature at ``now_ns``.
        """
        if now_ns < self._last_update_ns:
            raise ConfigError(
                f"thermal model cannot run backwards: {now_ns} < {self._last_update_ns}"
            )
        if power_w < 0:
            raise ConfigError(f"power must be >= 0, got {power_w}")
        dt_s = ns_to_s(now_ns - self._last_update_ns)
        steady = (self.spec.t_ambient_c + self.ambient_offset_c
                  + self._power_w * self.spec.r_th_c_per_w)
        decay = math.exp(-dt_s / self.spec.tau_s)
        self.temperature_c = steady + (self.temperature_c - steady) * decay
        self._last_update_ns = now_ns
        self._power_w = power_w
        return self.temperature_c

    def read(self, now_ns: float) -> float:
        """Junction temperature at ``now_ns`` without changing the power."""
        return self.advance(now_ns, self._power_w)

    def set_ambient_offset(self, now_ns: float, offset_c: float) -> None:
        """Shift the ambient reference by ``offset_c`` from ``now_ns`` on.

        Integrates up to ``now_ns`` under the old ambient first, so the
        junction relaxes toward the new steady state with the normal
        ``tau`` rather than jumping.
        """
        self.advance(now_ns, self._power_w)
        self.ambient_offset_c = float(offset_c)

    def is_throttling(self, now_ns: float) -> bool:
        """True when the junction is at or above ``Tj_max``."""
        return self.read(now_ns) >= self.spec.tj_max_c

    def headroom_c(self, now_ns: float) -> float:
        """Degrees of margin below ``Tj_max``."""
        return self.spec.tj_max_c - self.read(now_ns)
