"""Turbo frequency licenses (LVL0/1/2_TURBO_LICENSE).

Intel caps the attainable turbo frequency by a *license* derived from the
instruction mix and the number of active cores (Section 5.3).  Scalar and
128-bit code runs under LVL0 (full turbo); heavy 256-bit code needs LVL1;
heavy 512-bit code needs LVL2, each with progressively lower frequency
ceilings.  The paper is careful to distinguish these licenses from the
five *throttling levels* of Figure 10 — licenses only matter at turbo
frequencies, while the voltage-transition throttling that IChannels
exploits happens at any frequency.

TurboCC (the cross-core baseline of Section 6.2) communicates through the
slow license-induced frequency changes this module models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigError
from repro.isa.instructions import IClass


@enum.unique
class TurboLicense(enum.IntEnum):
    """Frequency license levels, higher = lower frequency ceiling."""

    LVL0 = 0
    LVL1 = 1
    LVL2 = 2


def license_for_class(iclass: IClass) -> TurboLicense:
    """License a core needs to execute ``iclass`` at turbo.

    Per Intel's optimisation manual: scalar/128-bit and light 256-bit code
    stays at LVL0; heavy 256-bit and light 512-bit code needs LVL1; heavy
    512-bit code needs LVL2.
    """
    return _LICENSE_OF[iclass]


#: Precomputed class-to-license map; :func:`license_for_class` is on the
#: frequency-reconciliation hot path.
_LICENSE_OF: Dict[IClass, TurboLicense] = {
    iclass: (
        TurboLicense.LVL2 if iclass == IClass.HEAVY_512
        else TurboLicense.LVL1 if iclass in (IClass.HEAVY_256, IClass.LIGHT_512)
        else TurboLicense.LVL0
    )
    for iclass in IClass
}


@dataclass(frozen=True)
class TurboLicenseTable:
    """Max turbo frequency per (license, active core count).

    ``ceilings[license]`` is a tuple indexed by ``active_cores - 1``; a
    request with more active cores than the tuple covers uses the last
    entry (the all-core turbo).
    """

    ceilings: Dict[TurboLicense, Tuple[float, ...]]

    def __post_init__(self) -> None:
        for license_level in TurboLicense:
            if license_level not in self.ceilings:
                raise ConfigError(f"missing turbo ceiling row for {license_level}")
            row = self.ceilings[license_level]
            if not row or any(f <= 0 for f in row):
                raise ConfigError(f"bad turbo ceiling row for {license_level}: {row}")
        # package_ceiling is pure in the class coverage and queried per
        # frequency reconciliation; the table never changes after
        # construction, so the memo hands back the exact ceiling floats.
        object.__setattr__(self, "_ceiling_cache", {})

    def max_freq(self, license_level: TurboLicense, active_cores: int) -> float:
        """Frequency ceiling for the given license and core count."""
        if active_cores < 1:
            raise ConfigError(f"active_cores must be >= 1, got {active_cores}")
        row = self.ceilings[license_level]
        return row[min(active_cores, len(row)) - 1]

    def package_ceiling(self, per_core_classes: Sequence[IClass]) -> float:
        """Ceiling when each active core runs the given class.

        The package license is the most restrictive (highest) per-core
        license, evaluated at the total active-core count.
        """
        key = tuple(per_core_classes)
        cached = self._ceiling_cache.get(key)
        if cached is not None:
            return cached
        if not key:
            raise ConfigError("at least one active core is required")
        worst = max(_LICENSE_OF[c] for c in key)
        ceiling = self.max_freq(worst, len(key))
        self._ceiling_cache[key] = ceiling
        return ceiling
