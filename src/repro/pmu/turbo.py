"""Turbo frequency licenses (LVL0/1/2_TURBO_LICENSE).

Intel caps the attainable turbo frequency by a *license* derived from the
instruction mix and the number of active cores (Section 5.3).  Scalar and
128-bit code runs under LVL0 (full turbo); heavy 256-bit code needs LVL1;
heavy 512-bit code needs LVL2, each with progressively lower frequency
ceilings.  The paper is careful to distinguish these licenses from the
five *throttling levels* of Figure 10 — licenses only matter at turbo
frequencies, while the voltage-transition throttling that IChannels
exploits happens at any frequency.

TurboCC (the cross-core baseline of Section 6.2) communicates through the
slow license-induced frequency changes this module models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigError
from repro.isa.instructions import IClass


@enum.unique
class TurboLicense(enum.IntEnum):
    """Frequency license levels, higher = lower frequency ceiling."""

    LVL0 = 0
    LVL1 = 1
    LVL2 = 2


def license_for_class(iclass: IClass) -> TurboLicense:
    """License a core needs to execute ``iclass`` at turbo.

    Per Intel's optimisation manual: scalar/128-bit and light 256-bit code
    stays at LVL0; heavy 256-bit and light 512-bit code needs LVL1; heavy
    512-bit code needs LVL2.
    """
    if iclass == IClass.HEAVY_512:
        return TurboLicense.LVL2
    if iclass in (IClass.HEAVY_256, IClass.LIGHT_512):
        return TurboLicense.LVL1
    return TurboLicense.LVL0


@dataclass(frozen=True)
class TurboLicenseTable:
    """Max turbo frequency per (license, active core count).

    ``ceilings[license]`` is a tuple indexed by ``active_cores - 1``; a
    request with more active cores than the tuple covers uses the last
    entry (the all-core turbo).
    """

    ceilings: Dict[TurboLicense, Tuple[float, ...]]

    def __post_init__(self) -> None:
        for license_level in TurboLicense:
            if license_level not in self.ceilings:
                raise ConfigError(f"missing turbo ceiling row for {license_level}")
            row = self.ceilings[license_level]
            if not row or any(f <= 0 for f in row):
                raise ConfigError(f"bad turbo ceiling row for {license_level}: {row}")

    def max_freq(self, license_level: TurboLicense, active_cores: int) -> float:
        """Frequency ceiling for the given license and core count."""
        if active_cores < 1:
            raise ConfigError(f"active_cores must be >= 1, got {active_cores}")
        row = self.ceilings[license_level]
        return row[min(active_cores, len(row)) - 1]

    def package_ceiling(self, per_core_classes: Sequence[IClass]) -> float:
        """Ceiling when each active core runs the given class.

        The package license is the most restrictive (highest) per-core
        license, evaluated at the total active-core count.
        """
        if not per_core_classes:
            raise ConfigError("at least one active core is required")
        worst = max(license_for_class(c) for c in per_core_classes)
        return self.max_freq(worst, len(per_core_classes))
