"""Central (package) power management unit.

The central PMU owns the voltage rails and the clock PLL.  Its behaviour
encodes the paper's three root causes:

* **Serialised voltage transitions** — the PMU issues one SVID transition
  at a time per rail and, per the paper's characterisation (Section 5.5),
  keeps every core that is waiting for a guardband *throttled until the
  rail has settled at the level required by all cores*.  With the shared
  rail of client parts this is the Multi-Throttling-Cores side effect.
* **Icc_max/Vcc_max limit protection** — before raising a guardband the
  PMU projects voltage and current; if either limit would be exceeded at
  the current frequency it first drops the package to the fastest
  fitting P-state (Section 5.3), throttling during the PLL relock.
* **Hysteresis** — guardbands are only dropped when the per-core local
  PMU reports that the reset-time window expired (Section 4.1.2); the
  drop is a queued down-transition that throttles nobody.

The *secure mode* mitigation (Section 7) is implemented here: the PMU
pins every grant at the worst-case power virus level, so no request ever
queues and no throttling ever occurs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set

from repro.errors import ConfigError, SimulationError
from repro.isa.instructions import IClass
from repro.obs.tracer import current as _obs
from repro.pdn.guardband import GuardbandModel
from repro.pdn.regulator import VoltageRegulator
from repro.pmu.dvfs import PState, VFCurve
from repro.pmu.limits import LimitPolicy
from repro.pmu.turbo import TurboLicenseTable
from repro.soc.engine import Engine


#: Grant policies :class:`PMUConfig` accepts.
GRANT_POLICIES = ("serialized", "coalesced")


@dataclass(frozen=True)
class PMUConfig:
    """Behavioural parameters of the central PMU.

    Parameters
    ----------
    pll_relock_ns:
        Latency of a package frequency change (PLL relock); cores are
        throttled for its duration.
    secure_mode:
        The paper's secure-mode mitigation: guardbands pinned at the
        worst case, no voltage transitions, no throttling.
    queue_depth:
        Bound on queued transition entries per rail; 0 (the default)
        models the unbounded mailbox the paper characterises.  When a
        rail's queue is full, a new request coalesces into the newest
        queued entry of the same direction (the cores batch into one
        transition) instead of appending — a shallow PMU mailbox, one
        of the scenario library's topology knobs.
    grant_policy:
        ``"serialized"`` (the default, matching the paper's
        measurements) starts one queued entry per settle; a
        ``"coalesced"`` PMU drains every queued up-entry into a single
        transition to the collective worst-case level, shortening the
        shared throttle window at the cost of over-granting — the
        hypothetical firmware fix the interference scenarios probe.
    turbo_license_limit:
        Defender recipe of the mitigation matrix: clamp the package
        frequency to the worst-case turbo-license ceiling (every core
        assumed at the power-virus class) at all times.  Guardband
        changes then never move the legal frequency, so the PLL-relock
        throttling component of the covert signal disappears — but the
        rail transitions (and their settle-time throttling) survive,
        making this a deliberately *weak* defence with a permanent
        frequency cost.
    """

    pll_relock_ns: float = 1_500.0
    secure_mode: bool = False
    queue_depth: int = 0
    grant_policy: str = "serialized"
    turbo_license_limit: bool = False

    def __post_init__(self) -> None:
        if self.pll_relock_ns < 0:
            raise ConfigError(f"PLL relock must be >= 0, got {self.pll_relock_ns}")
        if self.queue_depth < 0:
            raise ConfigError(
                f"queue_depth must be >= 0 (0 = unbounded), got {self.queue_depth}")
        if self.grant_policy not in GRANT_POLICIES:
            raise ConfigError(
                f"grant_policy must be one of {GRANT_POLICIES}, "
                f"got {self.grant_policy!r}")


@dataclass
class _Request:
    """One queued voltage transition: per-core target levels.

    With the default serialized policy and an unbounded queue every
    entry carries exactly one core (the paper's behaviour); shallow
    queues and the coalesced grant policy batch several cores' levels
    into a single entry, granted together when the rail settles.
    """

    targets: Dict[int, IClass]
    up: bool

    def merge(self, core: int, target: IClass) -> None:
        """Fold ``core``'s request into this entry (highest level wins)."""
        current = self.targets.get(core)
        if current is None or target > current:
            self.targets[core] = target


class CentralPMU:
    """Package-level voltage/frequency manager.

    Parameters
    ----------
    engine:
        The simulation event queue.
    rails:
        The voltage regulators; client parts have one shared rail, the
        per-core-VR mitigation passes one rail per core.
    rail_of_core:
        Maps core index to rail index.
    guardband / curve / limits / ladder / licenses:
        Electrical models (see the respective modules).
    requested_freq_ghz:
        The governor's requested package frequency.
    config:
        Behavioural knobs.
    """

    def __init__(self, engine: Engine, rails: Sequence[VoltageRegulator],
                 rail_of_core: Sequence[int], guardband: GuardbandModel,
                 curve: VFCurve, limits: LimitPolicy,
                 ladder: Sequence[PState], licenses: TurboLicenseTable,
                 requested_freq_ghz: float,
                 config: PMUConfig = PMUConfig()) -> None:
        if not rails:
            raise ConfigError("at least one rail is required")
        if any(not 0 <= r < len(rails) for r in rail_of_core):
            raise ConfigError(f"rail_of_core references missing rails: {rail_of_core}")
        self.engine = engine
        self.rails = list(rails)
        self.rail_of_core = list(rail_of_core)
        self.guardband = guardband
        self.curve = curve
        self.limits = limits
        self.ladder = list(ladder)
        self.licenses = licenses
        self.config = config
        self.n_cores = len(rail_of_core)

        self.requested_freq_ghz = requested_freq_ghz
        self.freq_ghz = requested_freq_ghz
        self.granted: List[IClass] = [IClass.SCALAR_64] * self.n_cores
        self.active_cores: Set[int] = set()

        self._queues: List[Deque[_Request]] = [deque() for _ in rails]
        self._inflight: List[Optional[_Request]] = [None] * len(rails)
        self._rail_active: List[bool] = [False] * len(rails)
        self._throttled: List[Set[int]] = [set() for _ in rails]
        self._freq_busy = False
        # Observability bookkeeping: when each rail's current throttle
        # window and the in-flight PLL relock began (None when inactive).
        self._throttle_since: List[Optional[float]] = [None] * len(rails)
        self._pll_since: Optional[float] = None

        #: Fired after any throttle/frequency state change; the system
        #: hooks this to recompute execution rates and record traces.
        self.on_state_change: Optional[Callable[[], None]] = None
        # _allowed_freq memo: the electrical models and ladder are fixed
        # for the PMU's lifetime, so the answer depends only on the
        # requested frequency, the candidate coverage, the active-core
        # set and the current grants — all captured in the key.
        self._allowed_cache: Dict[tuple, float] = {}
        #: Count of voltage transitions issued, per rail (for reports).
        self.transitions_issued: List[int] = [0] * len(rails)

        if config.secure_mode:
            # Secure mode fixes the operating point at boot: the fastest
            # frequency whose worst-case (all cores at the power-virus
            # level) fits the electrical limits, with the rail pinned at
            # the matching guardband.  Nothing ever transitions at run
            # time, so nothing ever throttles (Section 7).
            self.freq_ghz = self._secure_allowed_freq()
            self._pin_secure_mode()

    # -- public queries ------------------------------------------------------

    def is_core_throttled(self, core: int) -> bool:
        """Whether current management is throttling ``core`` right now."""
        if self._freq_busy:
            return True
        return core in self._throttled[self.rail_of_core[core]]

    def throttled_cores(self) -> Set[int]:
        """All cores currently throttled."""
        if self._freq_busy:
            return set(range(self.n_cores))
        cores: Set[int] = set()
        for group in self._throttled:
            cores |= group
        return cores

    def rail_of(self, core: int) -> VoltageRegulator:
        """The rail powering ``core``."""
        return self.rails[self.rail_of_core[core]]

    def core_voltage(self, core: int, t_ns: Optional[float] = None) -> float:
        """Rail voltage seen by ``core`` at ``t_ns`` (default: now)."""
        when = self.engine.now if t_ns is None else t_ns
        return self.rail_of(core).voltage_at(when)

    # -- requests from local PMUs ---------------------------------------------

    def request_up(self, core: int, iclass: IClass) -> bool:
        """Ask for a guardband covering ``iclass`` on ``core``.

        Returns True when the request had to queue (the core is now
        throttled until the rail settles), False when the current grant
        already covers the class (secure mode always returns False).
        """
        self._check_core(core)
        if self.config.secure_mode or iclass <= self.granted[core]:
            return False
        rail = self.rail_of_core[core]
        pending_target = self._pending_target(rail, core)
        if pending_target is not None and pending_target >= iclass:
            # Already queued at this or a higher level; stay throttled.
            return True
        self._enqueue(rail, core, iclass, up=True)
        self._throttled[rail].add(core)
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("pmu.requests_queued").inc()
            if self._throttle_since[rail] is None:
                self._throttle_since[rail] = self.engine.now
            tracer.instant(
                "pmu.queue_up", "pmu", self.engine.now, track=f"rail{rail}",
                args={"core": core, "iclass": iclass.name,
                      "queue_depth": len(self._queues[rail])},
            )
        self._notify()
        self._kick(rail)
        return True

    def request_down(self, core: int, new_requirement: IClass) -> None:
        """Report that ``core``'s reset-time window relaxed its needs."""
        self._check_core(core)
        if self.config.secure_mode or new_requirement >= self.granted[core]:
            return
        rail = self.rail_of_core[core]
        self._enqueue(rail, core, new_requirement, up=False)
        tracer = _obs()
        if tracer.enabled:
            tracer.metrics.counter("pmu.downgrades_queued").inc()
            tracer.instant(
                "pmu.queue_down", "pmu", self.engine.now, track=f"rail{rail}",
                args={"core": core, "iclass": new_requirement.name},
            )
        self._kick(rail)

    def set_requested_freq(self, freq_ghz: float) -> None:
        """Governor request for a new package frequency."""
        if freq_ghz <= 0:
            raise ConfigError(f"frequency must be positive, got {freq_ghz}")
        self.requested_freq_ghz = freq_ghz
        self._reconcile_frequency()

    def set_core_active(self, core: int, active: bool) -> None:
        """Track which cores are executing (affects licenses and limits).

        Idle cores are clock-gated: they draw no dynamic current and do
        not count toward the turbo-license active-core count, so the
        package may clock up when cores go idle and must re-check limits
        when they wake.
        """
        self._check_core(core)
        changed = (core in self.active_cores) != active
        if not changed:
            return
        if active:
            self.active_cores.add(core)
        else:
            self.active_cores.discard(core)
        self._reconcile_frequency()

    # -- internals --------------------------------------------------------------

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise ConfigError(f"no such core: {core}")

    def _notify(self) -> None:
        if self.on_state_change is not None:
            self.on_state_change()

    def _enqueue(self, rail: int, core: int, target: IClass, up: bool) -> None:
        """Append a transition request, honouring the queue-depth bound.

        With ``queue_depth == 0`` (the default) every request becomes
        its own single-core entry — the serialized mailbox the paper
        measures.  At a full bounded queue the request coalesces into
        the newest queued entry of the same direction, so the cores'
        levels are granted together by one transition; only when no
        same-direction entry is queued does the entry count grow.
        """
        queue = self._queues[rail]
        depth = self.config.queue_depth
        if depth > 0 and len(queue) >= depth:
            for req in reversed(queue):
                if req.up == up:
                    req.merge(core, target)
                    return
        queue.append(_Request({core: target}, up=up))

    def _pending_target(self, rail: int, core: int) -> Optional[IClass]:
        """Highest level ``core`` has queued or in flight on ``rail``."""
        best: Optional[IClass] = None
        inflight = self._inflight[rail]
        candidates = list(self._queues[rail])
        if inflight is not None:
            candidates.append(inflight)
        for req in candidates:
            if req.up and core in req.targets:
                target = req.targets[core]
                if best is None or target > best:
                    best = target
        return best

    def _classes_with(self, targets: Dict[int, IClass]) -> List[IClass]:
        """Per-core covered classes if ``targets`` were all granted."""
        classes = list(self.granted)
        for core, target in targets.items():
            classes[core] = target
        return classes

    def _allowed_freq(self, classes: Sequence[IClass]) -> float:
        """Fastest legal frequency for the given per-core coverage.

        Only *active* cores consume dynamic current and count toward the
        turbo license; idle cores are clock-gated.  A core that is in
        ``classes`` above its grant is being woken, so it always counts.
        """
        key = (self.requested_freq_ghz, tuple(classes),
               tuple(sorted(self.active_cores)), tuple(self.granted))
        cached = self._allowed_cache.get(key)
        if cached is not None:
            return cached
        active = [
            iclass
            for core, iclass in enumerate(classes)
            if core in self.active_cores or iclass > self.granted[core]
        ]
        if not active:
            active = [IClass.SCALAR_64]
        if self.config.turbo_license_limit:
            # License every core at the power-virus class regardless of
            # what actually runs: the ceiling becomes grant-independent,
            # so guardband traffic never triggers a frequency change.
            license_classes: Sequence[IClass] = (
                [IClass.HEAVY_512] * self.n_cores)
        else:
            license_classes = active
        ceiling = min(
            self.requested_freq_ghz,
            self.licenses.package_ceiling(license_classes),
        )
        allowed = self.limits.max_allowed(ceiling, active, self.ladder).freq_ghz
        self._allowed_cache[key] = allowed
        return allowed

    def _live_targets(self, req: _Request) -> Dict[int, IClass]:
        """The entry's targets that still change their core's grant."""
        if req.up:
            return {core: target for core, target in req.targets.items()
                    if target > self.granted[core]}
        return {core: target for core, target in req.targets.items()
                if target < self.granted[core]}

    def _kick(self, rail: int) -> None:
        """Start the next queued transition on ``rail`` if it is idle."""
        if self._rail_active[rail] or self._freq_busy:
            return
        queue = self._queues[rail]
        while queue:
            req = queue.popleft()
            live = self._live_targets(req)
            if not live:
                continue  # stale: previous transitions already covered it
            req.targets = live
            if req.up and self.config.grant_policy == "coalesced":
                self._absorb_up_entries(rail, req)
            self._begin_transition(rail, req)
            return
        self._release_if_settled(rail)

    def _absorb_up_entries(self, rail: int, req: _Request) -> None:
        """Coalesced policy: drain every queued up-entry into ``req``.

        The batched transition ramps straight to the collective
        worst-case level, so every waiting core is granted by a single
        settle; queued down-entries keep their order behind it.
        """
        queue = self._queues[rail]
        kept = [other for other in queue if not other.up]
        for other in queue:
            if other.up:
                for core, target in self._live_targets(other).items():
                    req.merge(core, target)
        queue.clear()
        queue.extend(kept)

    def _begin_transition(self, rail: int, req: _Request) -> None:
        self._rail_active[rail] = True
        self._inflight[rail] = req
        classes = self._classes_with(req.targets)
        allowed = self._allowed_freq(classes)
        if abs(allowed - self.freq_ghz) > 1e-9 and req.up:
            self._begin_freq_change(allowed, lambda: self._command_rail(rail, req))
        else:
            self._command_rail(rail, req)

    def _rail_classes(self, rail: int, classes: Sequence[IClass]) -> List[IClass]:
        """The per-core classes of the cores powered by ``rail``."""
        return [
            classes[core]
            for core, core_rail in enumerate(self.rail_of_core)
            if core_rail == rail
        ]

    def _command_rail(self, rail: int, req: _Request) -> None:
        classes = self._rail_classes(
            rail, self._classes_with(req.targets),
        )
        baseline = self.curve.vcc_for(self.freq_ghz)
        target = self.guardband.target_vcc(baseline, classes, self.freq_ghz)
        regulator = self.rails[rail]
        settle_ns = regulator.command(self.engine.now, target)
        self.transitions_issued[rail] += 1
        delay = max(0.0, settle_ns - self.engine.now)
        self.engine.schedule(delay, self._on_settle, rail, req)

    def _on_settle(self, rail: int, req: _Request) -> None:
        for core, target in req.targets.items():
            self.granted[core] = target
        self._inflight[rail] = None
        self._rail_active[rail] = False
        if not req.up:
            # Guardbands relaxed: the package may clock up again.
            self._reconcile_frequency()
        if self._queues[rail]:
            self._kick(rail)
        else:
            self._release_if_settled(rail)

    def _release_if_settled(self, rail: int) -> None:
        """Unthrottle a rail's waiters once it is idle with an empty queue.

        Per the paper's measurement, the PMU 'stops throttling the cores
        once the shared VR is settled at the required level by both
        cores' — release is collective, not per-request.
        """
        if self._rail_active[rail] or self._queues[rail]:
            return
        if self._throttled[rail]:
            released = len(self._throttled[rail])
            self._throttled[rail].clear()
            tracer = _obs()
            if tracer.enabled:
                since = self._throttle_since[rail]
                self._throttle_since[rail] = None
                if since is not None:
                    residency = self.engine.now - since
                    tracer.metrics.histogram(
                        "pmu.throttle_residency_ns").observe(residency)
                    tracer.complete(
                        "pmu.throttle", "pmu", since, residency,
                        track=f"rail{rail}", args={"cores_released": released},
                    )
            self._notify()

    # -- frequency management -----------------------------------------------------

    def _secure_allowed_freq(self) -> float:
        """Fastest frequency whose all-core worst case fits the limits."""
        classes = [IClass.HEAVY_512] * self.n_cores
        ceiling = min(self.requested_freq_ghz,
                      self.licenses.package_ceiling(classes))
        return self.limits.max_allowed(ceiling, classes, self.ladder).freq_ghz

    def _reconcile_frequency(self) -> None:
        """Move toward the fastest legal frequency for current grants."""
        if self.config.secure_mode:
            # The secure operating point is static; governor changes
            # re-clamp it instantly (a boot-time setting, not a runtime
            # transition — nothing throttles).
            new_freq = self._secure_allowed_freq()
            if abs(new_freq - self.freq_ghz) > 1e-9:
                self.freq_ghz = new_freq
                self._notify()
            return
        if self._freq_busy:
            return
        allowed = self._allowed_freq(self.granted)
        if abs(allowed - self.freq_ghz) > 1e-9:
            self._begin_freq_change(allowed, self._retarget_rails)

    def _begin_freq_change(self, new_freq: float,
                           continuation: Optional[Callable[[], None]]) -> None:
        if self._freq_busy:
            raise SimulationError("frequency change while PLL busy")
        self._freq_busy = True
        self._pll_since = self.engine.now
        self._notify()
        self.engine.schedule(
            self.config.pll_relock_ns, self._finish_freq_change, new_freq,
            continuation,
        )

    def _finish_freq_change(self, new_freq: float,
                            continuation: Optional[Callable[[], None]]) -> None:
        tracer = _obs()
        if tracer.enabled and self._pll_since is not None:
            relock = self.engine.now - self._pll_since
            tracer.metrics.counter("pmu.freq_changes").inc()
            tracer.metrics.histogram("pmu.pll_relock_ns").observe(relock)
            tracer.complete(
                "pmu.pll_relock", "pmu", self._pll_since, relock, track="pll",
                args={"to_ghz": new_freq},
            )
        self._pll_since = None
        self.freq_ghz = new_freq
        self._freq_busy = False
        self._notify()
        if continuation is not None:
            continuation()
        else:
            self._retarget_rails()

    def _retarget_rails(self) -> None:
        """After a grant-free frequency change, re-seat idle rails.

        A frequency change moves the V/F baseline, so idle rails drift
        from their correct position; command them to the new target.
        Rails with queued work will pick the new baseline up in their
        next transition anyway.
        """
        baseline = self.curve.vcc_for(self.freq_ghz)
        for rail_idx, regulator in enumerate(self.rails):
            if self._rail_active[rail_idx] or self._queues[rail_idx]:
                self._kick(rail_idx)
                continue
            classes = [
                self.granted[core]
                for core, rail in enumerate(self.rail_of_core)
                if rail == rail_idx
            ]
            target = self.guardband.target_vcc(baseline, classes, self.freq_ghz)
            if abs(regulator.settled_voltage() - regulator.spec.quantize_vid(target)) > 1e-9:
                self._rail_active[rail_idx] = True
                settle_ns = regulator.command(self.engine.now, target)
                self.transitions_issued[rail_idx] += 1
                self.engine.schedule(
                    max(0.0, settle_ns - self.engine.now),
                    self._on_retarget_settle, rail_idx,
                )

    def _on_retarget_settle(self, rail: int) -> None:
        self._rail_active[rail] = False
        if self._queues[rail]:
            self._kick(rail)
        else:
            self._release_if_settled(rail)

    # -- secure mode -----------------------------------------------------------------

    def _pin_secure_mode(self) -> None:
        """Pin grants and rails at the worst-case power-virus level."""
        self.granted = [IClass.HEAVY_512] * self.n_cores
        baseline = self.curve.vcc_for(self.freq_ghz)
        for rail_idx, regulator in enumerate(self.rails):
            classes = [
                IClass.HEAVY_512
                for core, rail in enumerate(self.rail_of_core)
                if rail == rail_idx
            ]
            target = self.guardband.target_vcc(baseline, classes, self.freq_ghz)
            regulator.force_level(min(target, regulator.spec.vcc_max))

    def secure_mode_power_overhead(self, typical_class: IClass) -> float:
        """Fractional power increase of secure mode versus typical code.

        Power scales with V^2 (Section 2); pinning the rail at the virus
        guardband instead of the guardband of ``typical_class`` costs
        ``(V_secure^2 - V_typical^2) / V_typical^2``.
        """
        baseline = self.curve.vcc_for(self.freq_ghz)
        classes_typical = [typical_class] * self.n_cores
        classes_secure = [IClass.HEAVY_512] * self.n_cores
        v_typical = self.guardband.target_vcc(baseline, classes_typical, self.freq_ghz)
        v_secure = self.guardband.target_vcc(baseline, classes_secure, self.freq_ghz)
        return (v_secure ** 2 - v_typical ** 2) / (v_typical ** 2)
