"""Per-core local PMU: intensity tracking, hysteresis, power gates.

Each core's local PMU remembers the most computationally intense class
the core executed within the last *reset-time* window (~650 us, Section
4.1.2).  While a class is within the window the rail keeps its guardband;
once the window expires with no further PHIs, the local PMU asks the
central PMU to drop the guardband back down.  This hysteresis is why the
covert channels must wait ~650 us between transactions.

The local PMU also owns the core's AVX power gates (Section 5.4): the
first access to a gated-off AVX unit pays the staggered ~8-15 ns wake
latency — a negligible (~0.1 %) share of the throttling period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.isa.instructions import IClass
from repro.pdn.powergate import PowerGate


@dataclass
class LocalPMU:
    """Intensity bookkeeping for one core."""

    core_id: int
    reset_time_ns: float
    avx256_gate: PowerGate
    avx512_gate: PowerGate
    _last_exec_ns: Dict[IClass, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.reset_time_ns <= 0:
            raise ConfigError(f"reset time must be positive, got {self.reset_time_ns}")

    # -- power gates ---------------------------------------------------------

    def gate_wake_latency(self, iclass: IClass, now_ns: float) -> float:
        """Wake latency paid to start executing ``iclass`` at ``now_ns``."""
        latency = 0.0
        if iclass.uses_avx256_unit:
            latency += self.avx256_gate.access(now_ns)
        if iclass.uses_avx512_unit:
            latency += self.avx512_gate.access(now_ns + latency)
        return latency

    def touch_gates(self, iclass: IClass, now_ns: float) -> None:
        """Keep the relevant gates' idle timers fresh during execution."""
        if iclass.uses_avx256_unit:
            self.avx256_gate.touch(now_ns)
        if iclass.uses_avx512_unit:
            self.avx512_gate.touch(now_ns)

    # -- hysteresis ------------------------------------------------------------

    def note_execute(self, iclass: IClass, now_ns: float) -> None:
        """Record that the core is executing ``iclass`` at ``now_ns``."""
        previous = self._last_exec_ns.get(iclass, float("-inf"))
        self._last_exec_ns[iclass] = max(previous, now_ns)

    def requirement(self, now_ns: float) -> IClass:
        """Most intense class still inside the reset-time window."""
        cutoff = now_ns - self.reset_time_ns
        best = IClass.SCALAR_64
        for iclass, last in self._last_exec_ns.items():
            if last > cutoff and iclass > best:
                best = iclass
        return best

    def next_expiry_ns(self, now_ns: float) -> Optional[float]:
        """When the current requirement could next decrease, if ever.

        Returns the earliest future time at which some class above the
        would-be-new requirement leaves the window, or None when the
        requirement is already the scalar floor.
        """
        current = self.requirement(now_ns)
        if current == IClass.SCALAR_64:
            return None
        expiries = [
            last + self.reset_time_ns
            for iclass, last in self._last_exec_ns.items()
            if iclass > IClass.SCALAR_64 and last > now_ns - self.reset_time_ns
        ]
        return min(expiries) if expiries else None
