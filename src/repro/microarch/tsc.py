"""Invariant timestamp counter (``rdtsc``) model.

Modern Intel parts expose an *invariant* TSC that ticks at a fixed rate
(the base frequency) regardless of the core's current P-state.  Both the
covert-channel receiver's throttling-period measurements and the wall
clock synchronisation of Section 4.3.3 use it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class TimestampCounter:
    """TSC ticking at ``tsc_ghz`` independent of core frequency."""

    tsc_ghz: float

    def __post_init__(self) -> None:
        if self.tsc_ghz <= 0:
            raise ConfigError(f"TSC rate must be positive, got {self.tsc_ghz} GHz")

    def read(self, now_ns: float) -> int:
        """``rdtsc`` at simulation time ``now_ns``."""
        if now_ns < 0:
            raise ConfigError(f"time must be >= 0, got {now_ns}")
        return int(now_ns * self.tsc_ghz)

    def read_array(self, times_ns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read` over an array of sample times.

        One float64 multiply plus a truncating cast — ``astype(int64)``
        truncates toward zero exactly like scalar ``int()``, so each
        lane equals the scalar read bit for bit.
        """
        times = np.asarray(times_ns, dtype=float)
        if times.size and float(times.min()) < 0:
            raise ConfigError(f"time must be >= 0, got {float(times.min())}")
        return (times * self.tsc_ghz).astype(np.int64)

    def cycles(self, elapsed_ns: float) -> float:
        """TSC ticks spanned by an interval of ``elapsed_ns``."""
        return elapsed_ns * self.tsc_ghz

    def ns(self, cycles: float) -> float:
        """Wall nanoseconds spanned by ``cycles`` TSC ticks."""
        return cycles / self.tsc_ghz


@dataclass(frozen=True)
class DriftingTimestampCounter(TimestampCounter):
    """A TSC whose effective rate drifts away from nominal.

    Real invariant TSCs are crystal-derived and not perfectly stable:
    temperature and aging shift the oscillator by parts per million, and
    virtualised TSCs can be scaled outright.  ``read`` applies a fixed
    fractional offset (``skew``) plus a linearly growing one
    (``drift_per_s``), so intervals measured in ticks stretch over time
    while the *nominal* conversions (:meth:`TimestampCounter.cycles`,
    :meth:`TimestampCounter.ns`) — what software believes — stay put.
    That gap is exactly what makes calibrated decode thresholds go stale
    (the ``clock-skew`` fault model of :mod:`repro.faults`).
    """

    skew: float = 0.0
    drift_per_s: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.skew <= -1.0:
            raise ConfigError(f"skew must be > -1, got {self.skew}")

    def rate_at(self, now_ns: float) -> float:
        """Effective tick rate (fraction of nominal) at ``now_ns``."""
        return 1.0 + self.skew + self.drift_per_s * now_ns * 1e-9

    def read(self, now_ns: float) -> int:
        """``rdtsc`` including the accumulated skew and drift."""
        if now_ns < 0:
            raise ConfigError(f"time must be >= 0, got {now_ns}")
        # Integrate the linearly drifting rate: ticks(t) = f0 * t *
        # (1 + skew + drift * t / 2), exact for a linear ramp.
        drift_term = 0.5 * self.drift_per_s * now_ns * 1e-9
        ticks = now_ns * self.tsc_ghz * (1.0 + self.skew + drift_term)
        if ticks < 0:
            raise ConfigError("drift made the TSC run backwards")
        return int(ticks)

    def read_array(self, times_ns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read` with the same integrated-drift formula."""
        times = np.asarray(times_ns, dtype=float)
        if times.size and float(times.min()) < 0:
            raise ConfigError(f"time must be >= 0, got {float(times.min())}")
        drift_term = 0.5 * self.drift_per_s * times * 1e-9
        ticks = times * self.tsc_ghz * (1.0 + self.skew + drift_term)
        if ticks.size and float(ticks.min()) < 0:
            raise ConfigError("drift made the TSC run backwards")
        return ticks.astype(np.int64)
