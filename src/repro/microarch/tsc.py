"""Invariant timestamp counter (``rdtsc``) model.

Modern Intel parts expose an *invariant* TSC that ticks at a fixed rate
(the base frequency) regardless of the core's current P-state.  Both the
covert-channel receiver's throttling-period measurements and the wall
clock synchronisation of Section 4.3.3 use it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TimestampCounter:
    """TSC ticking at ``tsc_ghz`` independent of core frequency."""

    tsc_ghz: float

    def __post_init__(self) -> None:
        if self.tsc_ghz <= 0:
            raise ConfigError(f"TSC rate must be positive, got {self.tsc_ghz} GHz")

    def read(self, now_ns: float) -> int:
        """``rdtsc`` at simulation time ``now_ns``."""
        if now_ns < 0:
            raise ConfigError(f"time must be >= 0, got {now_ns}")
        return int(now_ns * self.tsc_ghz)

    def cycles(self, elapsed_ns: float) -> float:
        """TSC ticks spanned by an interval of ``elapsed_ns``."""
        return elapsed_ns * self.tsc_ghz

    def ns(self, cycles: float) -> float:
        """Wall nanoseconds spanned by ``cycles`` TSC ticks."""
        return cycles / self.tsc_ghz
