"""Cycle-accurate model of the IDQ front-end to back-end interface.

The paper establishes (Section 5.6, Figure 11) that during a throttling
period the core blocks uop delivery from the Instruction Decode Queue to
the back-end during **three of every four cycles**, for the *entire core*
— both SMT threads — while the back-end is not stalled.  This module
reproduces that behaviour at cycle granularity so the PMC signatures
(normalised ``IDQ_UOPS_NOT_DELIVERED`` ~0.75 throttled, ~0 otherwise) are
measurable rather than asserted.

The model is delivery-bound: tight micro-benchmark loops (unrolled
300-instruction blocks) keep the IDQ full, and the back-end accepts
whatever the IDQ delivers.  The only delivery bubbles outside throttling
are the single-cycle steers at loop-block boundaries, which is why the
unthrottled normalised undelivered fraction is near — but not exactly —
zero, matching the measured distribution.

The *improved throttling* mitigation of Section 7 is modelled by gating
only the offending thread's uops instead of the whole interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.errors import ConfigError
from repro.isa.instructions import IClass
from repro.microarch.counters import CounterBank, PMC


@dataclass(frozen=True)
class PipelineConfig:
    """Static parameters of the front-end model.

    Parameters
    ----------
    delivery_width:
        Maximum uops the IDQ hands to the back-end per cycle (4 on the
        parts the paper measures).
    throttle_window:
        Length of the throttle gating window in cycles.
    throttle_open_cycles:
        Cycles per window during which delivery is allowed while
        throttled (1 of 4 -> the measured 75 % blocked fraction).
    smt_threads:
        Hardware threads sharing this front-end (1 or 2).
    block_instructions:
        Instructions per unrolled loop block; a one-cycle steer bubble is
        charged at each block boundary.
    """

    delivery_width: int = 4
    throttle_window: int = 4
    throttle_open_cycles: int = 1
    smt_threads: int = 2
    block_instructions: int = 300

    def __post_init__(self) -> None:
        if self.delivery_width < 1:
            raise ConfigError(f"delivery width must be >= 1, got {self.delivery_width}")
        if not 1 <= self.throttle_open_cycles <= self.throttle_window:
            raise ConfigError(
                "throttle_open_cycles must be within the window: "
                f"{self.throttle_open_cycles} of {self.throttle_window}"
            )
        if self.smt_threads not in (1, 2):
            raise ConfigError(f"smt_threads must be 1 or 2, got {self.smt_threads}")
        if self.block_instructions < 2:
            raise ConfigError(
                f"block_instructions must be >= 2, got {self.block_instructions}"
            )

    @property
    def blocked_fraction(self) -> float:
        """Fraction of throttled cycles with delivery blocked."""
        return 1.0 - self.throttle_open_cycles / self.throttle_window


@dataclass
class ThreadState:
    """Per-hardware-thread front-end state."""

    tid: int
    iclass: Optional[IClass] = None
    counters: CounterBank = field(default_factory=CounterBank)
    _block_progress: int = 0

    @property
    def active(self) -> bool:
        """Whether the thread has a loop to run."""
        return self.iclass is not None


class CorePipeline:
    """One core's IDQ-to-back-end interface, stepped cycle by cycle.

    Usage::

        pipe = CorePipeline(PipelineConfig())
        pipe.set_thread(0, IClass.HEAVY_256)
        pipe.set_throttle(True)
        pipe.run(10_000)
        frac = normalized_undelivered(pipe.thread(0).counters.snapshot())
    """

    def __init__(self, config: PipelineConfig = PipelineConfig()) -> None:
        self.config = config
        self._threads: Dict[int, ThreadState] = {
            tid: ThreadState(tid) for tid in range(config.smt_threads)
        }
        self.core_counters = CounterBank()
        self._cycle = 0
        self._throttled = False
        self._throttled_tids: Optional[Set[int]] = None
        self._rr_next = 0

    # -- configuration -----------------------------------------------------

    def thread(self, tid: int) -> ThreadState:
        """The state of hardware thread ``tid``."""
        if tid not in self._threads:
            raise ConfigError(f"no such hardware thread: {tid}")
        return self._threads[tid]

    def set_thread(self, tid: int, iclass: Optional[IClass]) -> None:
        """Point thread ``tid`` at a tight loop of ``iclass`` (or idle)."""
        self.thread(tid).iclass = iclass

    def set_throttle(self, active: bool,
                     only_threads: Optional[Set[int]] = None) -> None:
        """Engage or release the delivery throttle.

        ``only_threads`` selects the *improved throttling* mitigation:
        instead of blocking the shared interface for the whole core, only
        the listed threads' uops are gated and the other thread keeps its
        full delivery share.
        """
        if only_threads is not None:
            for tid in only_threads:
                self.thread(tid)  # validate
        self._throttled = active
        self._throttled_tids = set(only_threads) if only_threads is not None else None

    # -- simulation --------------------------------------------------------

    def run(self, cycles: int) -> None:
        """Advance the front-end by ``cycles`` core clock cycles."""
        if cycles < 0:
            raise ConfigError(f"cycles must be >= 0, got {cycles}")
        for _ in range(cycles):
            self._step()

    def _gate_blocks(self, tid: int) -> bool:
        """Whether the throttle gate blocks delivery to ``tid`` this cycle."""
        if not self._throttled:
            return False
        if self._throttled_tids is not None and tid not in self._throttled_tids:
            return False
        return (self._cycle % self.config.throttle_window) >= self.config.throttle_open_cycles

    def _step(self) -> None:
        active = [t for t in self._threads.values() if t.active]
        if active:
            self.core_counters.add(PMC.CPU_CLK_UNHALTED, 1)
            if self._throttled:
                self.core_counters.add(PMC.THROTTLE_CYCLES, 1)
        for thread in active:
            thread.counters.add(PMC.CPU_CLK_UNHALTED, 1)

        if not active:
            self._cycle += 1
            return

        owner = self._pick_owner(active)
        width = self.config.delivery_width

        if self._gate_blocks(owner.tid):
            # Delivery blocked by the throttle gate while the back-end is
            # not stalled: every slot counts as not delivered.
            self._charge_undelivered(owner, width)
        else:
            delivered = self._deliver(owner, width)
            if delivered < width:
                self._charge_undelivered(owner, width - delivered)
        self._cycle += 1

    def _pick_owner(self, active: list) -> ThreadState:
        """Round-robin the delivery cycle among active threads."""
        if len(active) == 1:
            return active[0]
        # With the whole-core gate, ownership still alternates; the gate
        # decision is identical for both threads so the choice is moot.
        # With per-thread gating it matters: a gated thread's cycle is a
        # wasted slot for it, not for its sibling, so skip gated owners
        # in favour of runnable ones when possible.
        order = sorted(active, key=lambda t: (t.tid < self._rr_next, t.tid))
        for candidate in order:
            if not self._gate_blocks(candidate.tid):
                self._rr_next = (candidate.tid + 1) % self.config.smt_threads
                return candidate
        chosen = order[0]
        self._rr_next = (chosen.tid + 1) % self.config.smt_threads
        return chosen

    def _deliver(self, thread: ThreadState, width: int) -> int:
        """Deliver up to ``width`` uops of the thread's loop; returns count."""
        block = self.config.block_instructions
        if thread._block_progress >= block:
            # Loop-edge steer bubble: one empty delivery cycle per block.
            thread._block_progress = 0
            return 0
        deliverable = min(width, block - thread._block_progress)
        thread._block_progress += deliverable
        thread.counters.add(PMC.UOPS_DELIVERED, deliverable)
        thread.counters.add(PMC.INSTRUCTIONS_RETIRED, deliverable)
        self.core_counters.add(PMC.UOPS_DELIVERED, deliverable)
        self.core_counters.add(PMC.INSTRUCTIONS_RETIRED, deliverable)
        return deliverable

    def _charge_undelivered(self, owner: ThreadState, slots: int) -> None:
        owner.counters.add(PMC.IDQ_UOPS_NOT_DELIVERED, slots)
        self.core_counters.add(PMC.IDQ_UOPS_NOT_DELIVERED, slots)

    # -- derived measurements ----------------------------------------------

    def measure_ipc(self, tid: int, iclass: IClass, cycles: int,
                    throttled: bool,
                    only_threads: Optional[Set[int]] = None) -> float:
        """Measured uops-per-cycle of a fresh run (convenience for tests)."""
        self.set_thread(tid, iclass)
        self.set_throttle(throttled, only_threads)
        before = self.thread(tid).counters.snapshot()
        start_cycles = self.thread(tid).counters.read(PMC.CPU_CLK_UNHALTED)
        self.run(cycles)
        delta = self.thread(tid).counters.delta(before)
        elapsed = self.thread(tid).counters.read(PMC.CPU_CLK_UNHALTED) - start_cycles
        if elapsed == 0:
            return 0.0
        return delta[PMC.UOPS_DELIVERED] / elapsed
