"""Performance monitoring counters (PMCs).

The paper's characterisation reads two counters around loop iterations
(Section 5.6):

* ``CPU_CLK_UNHALTED`` — unhalted core clock cycles.
* ``IDQ_UOPS_NOT_DELIVERED`` — uop slots the IDQ failed to fill while the
  back-end was *not* stalled.

The derived metric is normalised by the maximum deliverable slots::

    UOPS_NOT_DELIVERED = IDQ_UOPS_NOT_DELIVERED / (4 * CPU_CLK_UNHALTED)

which is ~0.75 during throttled iterations and ~0 otherwise (Figure 11).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.errors import MeasurementError


@enum.unique
class PMC(enum.Enum):
    """Counter identifiers, named after the Intel events they model."""

    CPU_CLK_UNHALTED = "CPU_CLK_UNHALTED"
    IDQ_UOPS_NOT_DELIVERED = "IDQ_UOPS_NOT_DELIVERED"
    UOPS_DELIVERED = "UOPS_DELIVERED"
    INSTRUCTIONS_RETIRED = "INSTRUCTIONS_RETIRED"
    THROTTLE_CYCLES = "THROTTLE_CYCLES"


@dataclass
class CounterBank:
    """A bank of monotonically increasing PMCs with snapshot reads.

    Mirrors the read-at-start / read-at-end usage pattern of the paper's
    micro-benchmarks: take a snapshot before the measured region, another
    after, and difference them.
    """

    _values: Dict[PMC, int] = field(default_factory=lambda: {pmc: 0 for pmc in PMC})

    def add(self, pmc: PMC, amount: int) -> None:
        """Increment ``pmc`` by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise MeasurementError(f"counter increments must be >= 0, got {amount}")
        self._values[pmc] += amount

    def read(self, pmc: PMC) -> int:
        """Current value of ``pmc``."""
        return self._values[pmc]

    def snapshot(self) -> Dict[PMC, int]:
        """Copy of every counter, for start-of-region reads."""
        return dict(self._values)

    def delta(self, since: Dict[PMC, int]) -> Dict[PMC, int]:
        """Per-counter difference against an earlier :meth:`snapshot`."""
        deltas = {}
        for pmc, value in self._values.items():
            before = since.get(pmc, 0)
            if value < before:
                raise MeasurementError(
                    f"{pmc.value} went backwards: {before} -> {value}"
                )
            deltas[pmc] = value - before
        return deltas

    def reset(self) -> None:
        """Zero every counter."""
        for pmc in self._values:
            self._values[pmc] = 0

    def as_array(self, order: Sequence[PMC] = tuple(PMC)) -> np.ndarray:
        """Counter values as an int64 vector in ``order``.

        The batch-analysis entry point: a sweep stacks one row per
        snapshot and differences whole columns at once instead of
        dict-by-dict.
        """
        return np.asarray([self._values[pmc] for pmc in order],
                          dtype=np.int64)


def delta_matrix(snapshots: Sequence[Dict[PMC, int]],
                 order: Sequence[PMC] = tuple(PMC)) -> np.ndarray:
    """Row-wise deltas between consecutive snapshots, vectorized.

    ``snapshots`` is a time-ordered sequence of :meth:`CounterBank.snapshot`
    dicts; returns an ``(n-1, len(order))`` int64 array where row ``i``
    is ``snapshots[i+1] - snapshots[i]`` in ``order``.  Raises if any
    counter runs backwards, matching :meth:`CounterBank.delta`.
    """
    if len(snapshots) < 2:
        return np.empty((0, len(order)), dtype=np.int64)
    stacked = np.asarray(
        [[snap.get(pmc, 0) for pmc in order] for snap in snapshots],
        dtype=np.int64)
    deltas = np.diff(stacked, axis=0)
    if deltas.size and int(deltas.min()) < 0:
        rows, cols = np.nonzero(deltas < 0)
        pmc = tuple(order)[int(cols[0])]
        raise MeasurementError(
            f"{pmc.value} went backwards between snapshots "
            f"{int(rows[0])} and {int(rows[0]) + 1}"
        )
    return deltas


def normalized_undelivered_array(deltas: np.ndarray,
                                 order: Sequence[PMC] = tuple(PMC),
                                 width: int = 4) -> np.ndarray:
    """Vectorized :func:`normalized_undelivered` over a delta matrix."""
    order = tuple(order)
    cycles = deltas[:, order.index(PMC.CPU_CLK_UNHALTED)]
    if deltas.size and int(cycles.min()) <= 0:
        raise MeasurementError("a region has no unhalted cycles")
    undelivered = deltas[:, order.index(PMC.IDQ_UOPS_NOT_DELIVERED)]
    return undelivered / (width * cycles)


def normalized_undelivered(delta: Dict[PMC, int], width: int = 4) -> float:
    """Fraction of deliverable uop slots the IDQ left unfilled.

    ``delta`` is a counter delta over the measured region.  Returns
    ``IDQ_UOPS_NOT_DELIVERED / (width * CPU_CLK_UNHALTED)``.
    """
    cycles = delta.get(PMC.CPU_CLK_UNHALTED, 0)
    if cycles <= 0:
        raise MeasurementError("region has no unhalted cycles")
    return delta.get(PMC.IDQ_UOPS_NOT_DELIVERED, 0) / (width * cycles)
