"""Performance monitoring counters (PMCs).

The paper's characterisation reads two counters around loop iterations
(Section 5.6):

* ``CPU_CLK_UNHALTED`` — unhalted core clock cycles.
* ``IDQ_UOPS_NOT_DELIVERED`` — uop slots the IDQ failed to fill while the
  back-end was *not* stalled.

The derived metric is normalised by the maximum deliverable slots::

    UOPS_NOT_DELIVERED = IDQ_UOPS_NOT_DELIVERED / (4 * CPU_CLK_UNHALTED)

which is ~0.75 during throttled iterations and ~0 otherwise (Figure 11).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import MeasurementError


@enum.unique
class PMC(enum.Enum):
    """Counter identifiers, named after the Intel events they model."""

    CPU_CLK_UNHALTED = "CPU_CLK_UNHALTED"
    IDQ_UOPS_NOT_DELIVERED = "IDQ_UOPS_NOT_DELIVERED"
    UOPS_DELIVERED = "UOPS_DELIVERED"
    INSTRUCTIONS_RETIRED = "INSTRUCTIONS_RETIRED"
    THROTTLE_CYCLES = "THROTTLE_CYCLES"


@dataclass
class CounterBank:
    """A bank of monotonically increasing PMCs with snapshot reads.

    Mirrors the read-at-start / read-at-end usage pattern of the paper's
    micro-benchmarks: take a snapshot before the measured region, another
    after, and difference them.
    """

    _values: Dict[PMC, int] = field(default_factory=lambda: {pmc: 0 for pmc in PMC})

    def add(self, pmc: PMC, amount: int) -> None:
        """Increment ``pmc`` by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise MeasurementError(f"counter increments must be >= 0, got {amount}")
        self._values[pmc] += amount

    def read(self, pmc: PMC) -> int:
        """Current value of ``pmc``."""
        return self._values[pmc]

    def snapshot(self) -> Dict[PMC, int]:
        """Copy of every counter, for start-of-region reads."""
        return dict(self._values)

    def delta(self, since: Dict[PMC, int]) -> Dict[PMC, int]:
        """Per-counter difference against an earlier :meth:`snapshot`."""
        deltas = {}
        for pmc, value in self._values.items():
            before = since.get(pmc, 0)
            if value < before:
                raise MeasurementError(
                    f"{pmc.value} went backwards: {before} -> {value}"
                )
            deltas[pmc] = value - before
        return deltas

    def reset(self) -> None:
        """Zero every counter."""
        for pmc in self._values:
            self._values[pmc] = 0


def normalized_undelivered(delta: Dict[PMC, int], width: int = 4) -> float:
    """Fraction of deliverable uop slots the IDQ left unfilled.

    ``delta`` is a counter delta over the measured region.  Returns
    ``IDQ_UOPS_NOT_DELIVERED / (width * CPU_CLK_UNHALTED)``.
    """
    cycles = delta.get(PMC.CPU_CLK_UNHALTED, 0)
    if cycles <= 0:
        raise MeasurementError("region has no unhalted cycles")
    return delta.get(PMC.IDQ_UOPS_NOT_DELIVERED, 0) / (width * cycles)
