"""Core microarchitecture: IDQ delivery pipeline, PMCs and the TSC.

Models the front-end behaviour the paper characterises in Section 5.6:
the Instruction Decode Queue (IDQ) delivers up to four uops per cycle to
the back-end; while a current-management throttle is active, delivery is
blocked during three of every four cycles *for the whole core*, which is
why both SMT threads stall together (Key Conclusion 5).
"""

from repro.microarch.counters import CounterBank, PMC, normalized_undelivered
from repro.microarch.pipeline import CorePipeline, PipelineConfig, ThreadState
from repro.microarch.tsc import TimestampCounter

__all__ = [
    "CounterBank",
    "PMC",
    "normalized_undelivered",
    "CorePipeline",
    "PipelineConfig",
    "ThreadState",
    "TimestampCounter",
]
