"""Execution-port model: where the per-class IPC values come from.

The loop bodies behind each :class:`~repro.isa.instructions.IClass` are
*mixes*, not single opcodes — an unrolled AVX2 multiply loop carries the
multiplies plus address arithmetic and a loop branch.  This module
models the Skylake-family execution ports and the per-class uop mixes,
and derives each class's sustained unthrottled IPC as the binding
bottleneck (ports or the 4-wide delivery).  A consistency test pins the
derived values to the ``IClass.ipc`` numbers the rest of the simulator
uses, so the timing model and the microarchitectural story cannot drift
apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ConfigError
from repro.isa.instructions import IClass

#: Front-end delivery width (uops per cycle from the IDQ).
DELIVERY_WIDTH = 4


@enum.unique
class PortGroup(enum.Enum):
    """Execution-port groups of a Skylake-class core (simplified)."""

    SCALAR_ALU = "scalar_alu"   # ports 0, 1, 5, 6
    VECTOR_ALU = "vector_alu"   # ports 0, 1, 5 (SIMD integer / logic)
    FP_MUL = "fp_mul"           # ports 0, 1 (FMA/MUL/FP-add units)
    FP_MUL_512 = "fp_mul_512"   # fused port 0+1 pair for 512-bit ops
    LOAD = "load"               # ports 2, 3
    BRANCH = "branch"           # port 6


#: Ports available per group.
PORT_COUNTS: Dict[PortGroup, int] = {
    PortGroup.SCALAR_ALU: 4,
    PortGroup.VECTOR_ALU: 3,
    PortGroup.FP_MUL: 2,
    PortGroup.FP_MUL_512: 1,   # the two 256-bit FMAs fuse into one 512-bit
    PortGroup.LOAD: 2,
    PortGroup.BRANCH: 1,
}


@dataclass(frozen=True)
class UopMix:
    """Average uops issued to each port group per loop *instruction*."""

    per_group: Mapping[PortGroup, float]

    def __post_init__(self) -> None:
        for group, uops in self.per_group.items():
            if uops < 0:
                raise ConfigError(f"negative uop count for {group}")
        if not any(v > 0 for v in self.per_group.values()):
            raise ConfigError("a uop mix must issue at least one uop")

    @property
    def total_uops(self) -> float:
        """Total uops per instruction (front-end load)."""
        return sum(self.per_group.values())


# Per-class mixes.  Each class's loop instruction is the paper's
# benchmark body amortised: the payload op plus its share of address
# arithmetic and loop-control uops.
CLASS_MIXES: Dict[IClass, UopMix] = {
    # Scalar loops: ~2 ALU uops per counted instruction (payload +
    # bookkeeping) across 4 ports -> 2 IPC sustained.
    IClass.SCALAR_64: UopMix({PortGroup.SCALAR_ALU: 2.0,
                              PortGroup.BRANCH: 0.0}),
    # 128-bit light vector: SIMD logic on 3 vector ALU ports, ~1.5
    # vector uops per instruction -> 2 IPC.
    IClass.LIGHT_128: UopMix({PortGroup.VECTOR_ALU: 1.5}),
    # Heavy 128-bit: FP/multiply bound on the 2 FMA ports, ~2 uops per
    # instruction (payload + dependent move) -> 1 IPC.
    IClass.HEAVY_128: UopMix({PortGroup.FP_MUL: 2.0}),
    # Light 256-bit: wider SIMD logic saturates the vector ALUs at ~3
    # uops per instruction -> 1 IPC.
    IClass.LIGHT_256: UopMix({PortGroup.VECTOR_ALU: 3.0}),
    # Heavy 256-bit: two FMA-port uops per instruction -> 1 IPC.
    IClass.HEAVY_256: UopMix({PortGroup.FP_MUL: 2.0}),
    # Light 512-bit: 512-bit SIMD logic occupies a fused port pair.
    IClass.LIGHT_512: UopMix({PortGroup.VECTOR_ALU: 3.0}),
    # Heavy 512-bit: the fused 512-bit FMA issues one uop per
    # instruction on the single fused unit -> 1 IPC.
    IClass.HEAVY_512: UopMix({PortGroup.FP_MUL_512: 1.0}),
}


def sustained_ipc(iclass: IClass) -> float:
    """Sustained unthrottled IPC of a tight loop of ``iclass``.

    The minimum of the per-group port limits and the front-end delivery
    width, in instructions (not uops) per cycle.
    """
    mix = CLASS_MIXES.get(iclass)
    if mix is None:
        raise ConfigError(f"no uop mix defined for {iclass.label}")
    limits = [
        PORT_COUNTS[group] / uops
        for group, uops in mix.per_group.items()
        if uops > 0
    ]
    limits.append(DELIVERY_WIDTH / max(mix.total_uops, 1e-9))
    return min(limits)


def bottleneck(iclass: IClass) -> PortGroup:
    """The port group that binds ``iclass``'s throughput."""
    mix = CLASS_MIXES[iclass]
    groups = [
        (PORT_COUNTS[group] / uops, group)
        for group, uops in mix.per_group.items()
        if uops > 0
    ]
    return min(groups)[1]
