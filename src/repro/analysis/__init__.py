"""Experiment runners and rendering for the paper's tables and figures.

:mod:`repro.analysis.experiments` has one entry point per paper artifact
(``fig6`` ... ``fig14``, ``table1``, ``table2``); the benchmark harnesses
under ``benchmarks/`` call these and print the regenerated rows/series.
"""

from repro.analysis.figures import ascii_bars, ascii_series, format_table

__all__ = ["ascii_bars", "ascii_series", "format_table"]
