"""Full reproduction report generator.

Runs every experiment (Figures 6-14, Tables 1-2) and renders a single
markdown report with the measured values next to the paper's.  Usable as
a library (:func:`generate_report`) or from the command line::

    python -m repro.analysis.report [-o REPORT.md] [--quick]

``--quick`` trims trial counts for a faster smoke run.
"""

from __future__ import annotations

import argparse
import io
from typing import Optional

import numpy as np

from repro.analysis import experiments as ex
from repro.analysis.figures import format_table
from repro.isa import IClass
from repro.mitigations import Mitigation


def _fig6(out: io.StringIO) -> None:
    result = ex.fig6_voltage_steps()
    out.write("## Figure 6 — di/dt guardband steps\n\n")
    out.write(format_table(
        ["observation", "paper", "measured"],
        [
            ["baseline Vcc @ 2 GHz", "788 mV", f"{result.vcc_start_mv:.0f} mV"],
            ["core 1 starts AVX2", "+8 mV", f"+{result.step_core1_mv:.1f} mV"],
            ["core 0 joins", "+9 mV", f"+{result.step_core0_mv:.1f} mV"],
            ["after both stop", "back to start", f"{result.return_mv:+.1f} mV"],
            ["frequency", "flat at 2 GHz",
             f"{result.freq_ghz_start:.1f} -> {result.freq_ghz_end:.1f} GHz"],
        ]))
    out.write("\n\n")


def _fig7(out: io.StringIO) -> None:
    result = ex.fig7_limit_protection()
    out.write("## Figure 7 — Icc/Vcc limit protection\n\n")
    rows = []
    for p in result.points:
        verdicts = []
        if p.vcc_violation:
            verdicts.append("Vcc_max exceeded")
        if p.icc_violation:
            verdicts.append("Icc_max exceeded")
        rows.append([
            p.system, f"{p.freq_req_ghz:.1f} GHz", p.workload,
            f"{p.vcc_projected:.3f} V / {p.icc_projected:.1f} A",
            ", ".join(verdicts) or "within limits",
            f"{p.freq_realized_ghz:.2f} GHz",
        ])
    out.write(format_table(
        ["system", "requested", "workload", "projected V/I", "verdict",
         "realized"], rows))
    out.write(f"\n\nJunction temperature peaked at {result.temp_max_c:.0f} C "
              f"(Tj_max {result.tj_max_c:.0f} C) — not thermal.\n\n")


def _fig8(out: io.StringIO, trials: int) -> None:
    result = ex.fig8_throttling(trials=trials)
    out.write("## Figure 8 — throttling periods and power-gate wake\n\n")
    rows = []
    expectations = {"Haswell": "~9 us", "Coffee Lake": "12-15 us",
                    "Cannon Lake": "12-15 us"}
    for part, samples in result.tp_us_by_part.items():
        rows.append([part, expectations[part],
                     f"{float(np.median(samples)):.1f} us "
                     f"[{min(samples):.1f}, {max(samples):.1f}]"])
    out.write(format_table(["part", "paper TP", "measured TP (median [range])"],
                           rows))
    out.write("\n\nPer-iteration deltas vs steady state (paper: first CFL "
              "iteration +8-15 ns, Haswell flat):\n\n")
    for part, deltas in result.iteration_deltas_ns.items():
        formatted = ", ".join(f"{d:+.1f}" for d in deltas)
        out.write(f"* {part}: [{formatted}] ns\n")
    out.write("\n")


def _fig9(out: io.StringIO) -> None:
    result = ex.fig9_timeline()
    share = result.didt_wake_ns / (result.didt_tp_us * 1000.0)
    out.write("## Figure 9 — wake latency vs throttling period\n\n")
    out.write(f"* power-gate wake: {result.didt_wake_ns:.0f} ns "
              f"(paper: 8-15 ns)\n")
    out.write(f"* throttling period: {result.didt_tp_us:.1f} us\n")
    out.write(f"* wake share of TP: {share * 100:.2f}% (paper: ~0.1%)\n")
    out.write(f"* limit case frequency floor: "
              f"{min(f for _, f in result.limit_freq):.2f} GHz "
              f"(from 3.1 GHz)\n\n")


def _fig10(out: io.StringIO) -> None:
    result = ex.fig10_multilevel()
    out.write("## Figure 10 — multi-level throttling (Cannon Lake)\n\n")
    rows = []
    for iclass in sorted(IClass):
        rows.append([
            iclass.label,
            f"{result.sweep[(iclass.label, 1.0, 1)]:.1f}",
            f"{result.sweep[(iclass.label, 1.0, 2)]:.1f}",
            f"{result.sweep[(iclass.label, 1.4, 1)]:.1f}",
            f"{result.preceded[iclass.label]:.1f}",
            result.levels[iclass.label],
        ])
    out.write(format_table(
        ["class", "TP 1GHz/1c (us)", "TP 1GHz/2c", "TP 1.4GHz/1c",
         "512H-after (us)", "level"], rows))
    out.write("\n\nPaper anchors: 256b_Heavy ~5 us (1 core) / ~9 us "
              "(2 cores) at 1 GHz; at least five levels L1-L5.\n\n")


def _fig11(out: io.StringIO) -> None:
    result = ex.fig11_idq_signature()
    out.write("## Figure 11 — IDQ undelivered-uop signature\n\n")
    out.write(f"* throttled iterations: {np.mean(result.throttled):.3f} "
              f"(paper ~0.75)\n")
    out.write(f"* unthrottled iterations: {np.mean(result.unthrottled):.3f} "
              f"(paper ~0)\n\n")


def _fig12(out: io.StringIO) -> "ex.Fig12Result":
    result = ex.fig12_throughput()
    out.write("## Figure 12 — throughput comparison\n\n")
    paper = {
        "IccThreadCovert": 2899, "IccSMTcovert": 2899, "IccCoresCovert": 2899,
        "NetSpectre": 1500, "TurboCC": 61, "DFScovert": 20, "POWERT": 122,
    }
    rows = [
        [name, f"{paper[name]} b/s", f"{bps:.0f} b/s",
         f"{result.ber[name]:.2f}"]
        for name, bps in sorted(result.throughput_bps.items(),
                                key=lambda kv: -kv[1])
    ]
    out.write(format_table(["channel", "paper", "measured", "BER"], rows))
    out.write("\n\nRatios: "
              f"IccThread/NetSpectre = "
              f"{result.ratio('IccThreadCovert', 'NetSpectre'):.1f}x "
              f"(paper 2x); vs TurboCC "
              f"{result.ratio('IccSMTcovert', 'TurboCC'):.0f}x (47x); "
              f"vs DFScovert "
              f"{result.ratio('IccSMTcovert', 'DFScovert'):.0f}x (145x); "
              f"vs POWERT "
              f"{result.ratio('IccSMTcovert', 'POWERT'):.0f}x (24x).\n\n")
    return result


def _fig13(out: io.StringIO) -> None:
    result = ex.fig13_level_distribution()
    out.write("## Figure 13 — level clusters under low noise\n\n")
    rows = []
    for symbol in sorted(result.samples_by_symbol):
        samples = result.samples_by_symbol[symbol]
        rows.append([
            f"L{symbol + 1}", len(samples),
            f"{float(np.median(samples)):.0f}",
            f"[{min(samples):.0f}, {max(samples):.0f}]",
        ])
    out.write(format_table(
        ["level", "transactions", "median (cycles)", "range"], rows))
    out.write(f"\n\nMinimum adjacent-cluster gap: "
              f"{result.min_gap_cycles:.0f} cycles (paper: > 2000).\n\n")


def _fig14(out: io.StringIO, trials: int) -> None:
    result = ex.fig14_noise_sensitivity(trials=trials)
    out.write("## Figure 14 — noise sensitivity\n\n")
    rows = [[f"{int(rate)} events/s", f"{ber:.3f}"]
            for rate, ber in sorted(result.ber_vs_event_rate.items())]
    out.write("BER vs interrupt/context-switch rate (paper: low even when "
              "highly noisy):\n\n")
    out.write(format_table(["system event rate", "BER"], rows))
    rows = [[f"{int(rate)} PHIs/s", f"{ber:.3f}"]
            for rate, ber in sorted(result.ber_vs_phi_rate.items())]
    out.write("\n\nBER vs concurrent App-PHI rate (paper: grows with "
              "rate):\n\n")
    out.write(format_table(["App-PHI rate", "BER"], rows))
    out.write(f"\n\n7-zip neighbour BER: {result.sevenzip_ber:.3f} "
              f"(paper: < 0.07).\n\n")


def _table1(out: io.StringIO) -> None:
    report = ex.table1_mitigations()
    out.write("## Table 1 — mitigations\n\n")
    channels = ["IccThreadCovert", "IccSMTcovert", "IccCoresCovert"]
    rows = []
    for mitigation in (Mitigation.PER_CORE_VR, Mitigation.IMPROVED_THROTTLING,
                       Mitigation.SECURE_MODE):
        rows.append([mitigation.value]
                    + [report.verdict(c, mitigation) for c in channels]
                    + [report.overhead_notes[mitigation]])
    out.write(format_table(["mitigation"] + channels + ["overhead"], rows))
    out.write(f"\n\nSecure-mode power overhead (measured): "
              f"{report.secure_mode_power_overhead * 100:.1f}% "
              f"(paper: 4-11%).\n\n")


def _table2(out: io.StringIO, fig12: "ex.Fig12Result") -> None:
    rows = ex.table2_comparison(fig12)
    out.write("## Table 2 — comparison matrix\n\n")
    def mark(flag: bool) -> str:
        return "yes" if flag else "-"

    table = [
        [r.proposal, mark(r.same_core), mark(r.cross_smt), mark(r.cross_core),
         f"{r.bw_bps:.0f} b/s", "U" if r.user_level else "K",
         mark(r.turbo_independent), mark(r.root_cause_identified),
         mark(r.effective_mitigations)]
        for r in rows
    ]
    out.write(format_table(
        ["proposal", "same core", "cross-SMT", "cross-core", "BW", "U/K",
         "turbo-indep", "root cause", "mitigations"], table))
    out.write("\n")


def generate_report(quick: bool = False) -> str:
    """Run every experiment and return the markdown report."""
    trials = 8 if quick else 20
    noise_trials = 2 if quick else 3
    out = io.StringIO()
    out.write("# IChannels reproduction report\n\n")
    out.write("Generated by `python -m repro.analysis.report`; every value "
              "below is measured from the simulator described in "
              "DESIGN.md.\n\n")
    _fig6(out)
    _fig7(out)
    _fig8(out, trials)
    _fig9(out)
    _fig10(out)
    _fig11(out)
    fig12 = _fig12(out)
    _fig13(out)
    _fig14(out, noise_trials)
    _table1(out)
    _table2(out, fig12)
    return out.getvalue()


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate every IChannels table/figure into one "
                    "markdown report.")
    parser.add_argument("-o", "--output", default=None,
                        help="write the report to this file (default: stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced trial counts for a fast smoke run")
    args = parser.parse_args(argv)
    report = generate_report(quick=args.quick)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
