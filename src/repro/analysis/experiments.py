"""One runner per paper artifact (Figures 6-14, Tables 1-2).

Each function builds fresh simulated systems, drives the same workloads
the paper describes, and returns a small result dataclass with the
series/rows the corresponding figure or table plots.  The benchmark
harnesses under ``benchmarks/`` print these; EXPERIMENTS.md records the
paper-vs-measured comparison.

Two execution conventions keep regeneration fast at scale:

* rail traces are captured through the vectorized signal exports
  (:meth:`System.vcc_signal`), so the simulated DAQ evaluates each
  sample grid in one call instead of one rail lookup per sample;
* the multi-trial sweeps (fig8, fig10, fig13, fig14, table2/fig12)
  accept an optional :class:`repro.runner.SweepRunner`.  Every trial is
  a module-level function of picklable arguments, so a runner with
  ``jobs > 1`` fans trials out over a process pool and a runner with a
  cache makes warm reruns free — with results identical to a serial,
  uncached run in either case.  ``runner=None`` runs serial and
  uncached, exactly the legacy behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import (
    AdaptiveConfig,
    CovertSession,
    IccCoresCovert,
    IccSMTcovert,
    IccThreadCovert,
    SessionConfig,
)
from repro.core.baselines import DFSCovert, NetSpectreGadget, PowerT, TurboCC
from repro.core.channel import ChannelConfig, CovertChannel
from repro.errors import CalibrationError, ConfigError, ProtocolError
from repro.faults import parse_fault_spec
from repro.isa.instructions import IClass
from repro.isa.workload import Loop, calculix_like_trace, uniform_loop
from repro.measure.daq import DAQCard
from repro.measure.trace import SampleSeries
from repro.microarch.counters import PMC, normalized_undelivered
from repro.microarch.pipeline import CorePipeline, PipelineConfig
from repro.mitigations.report import MitigationReport, evaluate_all
from repro.runner import SweepRunner
from repro.soc.config import (
    ProcessorConfig,
    cannon_lake_i3_8121u,
    coffee_lake_i7_9700k,
    haswell_i7_4770k,
)
from repro.soc.noise import NoiseConfig, attach_concurrent_app, attach_system_noise
from repro.soc.system import System
from repro.units import ms_to_ns, ns_to_us, us_to_ns, v_to_mv


def _run_loop_program(system: System, thread_id: int, loop: Loop,
                      start_ns: float, sink: List) -> None:
    """Spawn a program that runs one loop at ``start_ns`` and records it."""

    def program() -> Generator:
        yield system.until(start_ns)
        result = yield system.execute(thread_id, loop)
        sink.append(result)
        return None

    system.spawn(program(), name=f"loop_{loop.iclass.label}_t{thread_id}")


# ---------------------------------------------------------------------------
# Figure 6 — di/dt guardband steps and per-phase voltage tracking
# ---------------------------------------------------------------------------


@dataclass
class Fig6Result:
    """Series and extracted steps for Figure 6."""

    vcc_samples: SampleSeries
    freq_ghz_start: float
    freq_ghz_end: float
    vcc_start_mv: float
    step_core1_mv: float
    step_core0_mv: float
    return_mv: float
    calculix_vcc: SampleSeries
    calculix_phases: int


def fig6_voltage_steps(phase_scale_us: float = 300.0) -> Fig6Result:
    """Two Coffee Lake cores start/stop AVX2 in a staggered pattern.

    The paper uses 0.4 s phases; the simulation compresses each to
    ``phase_scale_us`` (the rail settles in tens of microseconds, so
    nothing is lost).  Expected: ~8-9 mV per core joining AVX2, voltage
    returning to start afterwards, frequency flat at 2 GHz.
    """
    config = coffee_lake_i7_9700k()
    system = System(config, governor_freq_ghz=2.0)
    unit = us_to_ns(phase_scale_us)
    sink: List = []
    # core 1: AVX2 from 1.0 to 4.0 units; core 0: AVX2 from 2.0 to 4.25.
    avx1 = Loop(IClass.HEAVY_256, int(3.0 * unit * 2.0 / 300 / 4) + 1)
    avx0 = Loop(IClass.HEAVY_256, int(2.25 * unit * 2.0 / 300 / 4) + 1)
    _run_loop_program(system, system.thread_on(1), avx1, 1.0 * unit, sink)
    _run_loop_program(system, system.thread_on(0), avx0, 2.0 * unit, sink)
    horizon = 7.0 * unit + us_to_ns(800.0)  # include the hysteresis release
    freq_start = system.pmu.freq_ghz
    system.run_until(horizon)
    freq_end = system.pmu.freq_ghz

    daq = DAQCard()
    vcc = daq.sample(system.vcc_signal(), 0.0, horizon,
                     sample_rate_hz=2e6, name="vcc")

    def settled(unit_time: float) -> float:
        return system.vcc_at(unit_time * unit)

    v_base = settled(0.9)
    v_one = settled(1.9)      # core 1 running AVX2
    v_two = settled(3.9)      # both cores running AVX2
    v_back = system.vcc_at(horizon - 1.0)

    calc_system = System(config, governor_freq_ghz=2.0)
    trace = calculix_like_trace(total_ms=2.0, seed=454)
    calc_system.spawn(calc_system.trace_program(calc_system.thread_on(0), trace),
                      name="calculix0")
    calc_horizon = ms_to_ns(2.4)
    calc_system.run_until(calc_horizon)
    calc_vcc = daq.sample(calc_system.vcc_signal(), 0.0, calc_horizon,
                          sample_rate_hz=2e6, name="vcc_calculix")

    return Fig6Result(
        vcc_samples=vcc,
        freq_ghz_start=freq_start,
        freq_ghz_end=freq_end,
        vcc_start_mv=v_to_mv(v_base),
        step_core1_mv=v_to_mv(v_one - v_base),
        step_core0_mv=v_to_mv(v_two - v_one),
        return_mv=v_to_mv(v_back - v_base),
        calculix_vcc=calc_vcc,
        calculix_phases=len(trace),
    )


# ---------------------------------------------------------------------------
# Figure 7 — Icc_max / Vcc_max limit protection
# ---------------------------------------------------------------------------


@dataclass
class Fig7OperatingPoint:
    """One bar group of Figure 7(a)."""

    system: str
    freq_req_ghz: float
    workload: str
    vcc_projected: float
    icc_projected: float
    vcc_max: float
    icc_max: float
    vcc_violation: bool
    icc_violation: bool
    freq_realized_ghz: float


@dataclass
class Fig7Result:
    """Operating points (a) and the phase timeline (b)."""

    points: List[Fig7OperatingPoint]
    timeline_phases: List[str]
    timeline_freq: List[Tuple[float, float]]
    timeline_vcc: SampleSeries
    timeline_temp: List[Tuple[float, float]]
    tj_max_c: float
    temp_max_c: float


def _operating_point(config: ProcessorConfig, freq: float, n_cores: int,
                     iclass: IClass, label: str) -> Fig7OperatingPoint:
    system = System(config, governor_freq_ghz=freq)
    classes = [iclass] * n_cores
    verdict = system.limits.evaluate(freq, classes)
    sink: List = []
    loop = uniform_loop(iclass, duration_us=300.0, freq_ghz=freq)
    for core in range(n_cores):
        _run_loop_program(system, system.thread_on(core), loop,
                          us_to_ns(5.0), sink)
    system.run_until(us_to_ns(400.0))
    # The steady frequency while the workload runs is the lowest level
    # the limit protection settled at (measured mid-run).
    changes = system.freq_trace.changes_in(us_to_ns(5.0), us_to_ns(300.0))
    realized = min((float(v) for _, v in changes), default=system.pmu.freq_ghz)
    return Fig7OperatingPoint(
        system=config.codename,
        freq_req_ghz=freq,
        workload=label,
        vcc_projected=verdict.vcc_target,
        icc_projected=verdict.icc_projected,
        vcc_max=config.vcc_max,
        icc_max=config.icc_max,
        vcc_violation=verdict.vcc_violation,
        icc_violation=verdict.icc_violation,
        freq_realized_ghz=realized,
    )


def fig7_limit_protection(phase_us: float = 400.0) -> Fig7Result:
    """Limit-protection study: desktop vs mobile, plus a phase timeline."""
    points: List[Fig7OperatingPoint] = []
    desktop = coffee_lake_i7_9700k()
    mobile = cannon_lake_i3_8121u()
    for freq in (4.9, 4.8):
        points.append(_operating_point(desktop, freq, 1, IClass.SCALAR_64, "Non-AVX"))
        points.append(_operating_point(desktop, freq, 1, IClass.HEAVY_256, "AVX2"))
    for freq in (3.1, 2.2):
        points.append(_operating_point(mobile, freq, 2, IClass.SCALAR_64, "Non-AVX"))
        points.append(_operating_point(mobile, freq, 2, IClass.HEAVY_256, "AVX2"))

    # (b): Non-AVX -> AVX2 -> AVX512 phases on both mobile cores at turbo.
    system = System(mobile, governor_freq_ghz=3.1)
    unit = us_to_ns(phase_us)
    sink: List = []
    for core in range(2):
        tid = system.thread_on(core)
        _run_loop_program(
            system, tid,
            uniform_loop(IClass.SCALAR_64, 0.9 * phase_us, 3.1), 0.0, sink,
        )
        _run_loop_program(
            system, tid,
            uniform_loop(IClass.HEAVY_256, 0.9 * phase_us / 4, 3.1),
            1.0 * unit, sink,
        )
        _run_loop_program(
            system, tid,
            uniform_loop(IClass.HEAVY_512, 0.9 * phase_us / 4, 3.1),
            2.0 * unit, sink,
        )
    horizon = 3.2 * unit
    system.run_until(horizon)
    daq = DAQCard()
    vcc = daq.sample(system.vcc_signal(), 0.0, horizon,
                     sample_rate_hz=2e6, name="vcc_phases")
    temps = [(t, float(v)) for t, v in system.temp_trace.breakpoints()]
    temp_max = max(v for _, v in temps) if temps else 0.0
    return Fig7Result(
        points=points,
        timeline_phases=["Non-AVX", "AVX2", "AVX512"],
        timeline_freq=[(t, float(v)) for t, v in system.freq_trace.breakpoints()],
        timeline_vcc=vcc,
        timeline_temp=temps,
        tj_max_c=mobile.thermal.tj_max_c,
        temp_max_c=temp_max,
    )


# ---------------------------------------------------------------------------
# Figure 8 — TP distributions; power-gate wake deltas
# ---------------------------------------------------------------------------


@dataclass
class Fig8Result:
    """TP distributions per part and per-iteration wake-latency deltas."""

    tp_us_by_part: Dict[str, List[float]]
    iteration_deltas_ns: Dict[str, List[float]]


def _tp_sample(config: ProcessorConfig, freq: float, seed: int) -> float:
    """One receiver-style TP estimate for an AVX2 loop at ~``freq``."""
    system = System(config, governor_freq_ghz=freq, seed=seed)
    attach_system_noise(system, [system.thread_on(0)],
                        NoiseConfig(interrupt_rate_per_s=300.0,
                                    ctx_switch_rate_per_s=50.0),
                        horizon_ns=us_to_ns(400.0), seed=seed)
    sink: List = []
    loop = Loop(IClass.HEAVY_256, 60)
    _run_loop_program(system, system.thread_on(0), loop, us_to_ns(20.0), sink)
    system.run_until(us_to_ns(400.0))
    result = sink[0]
    return max(0.0, ns_to_us(result.throttled_ns))


def _iteration_deltas(config: ProcessorConfig, freq: float) -> List[float]:
    """Per-iteration execution-time deltas vs the steady state (Fig 8b/c).

    Runs three consecutive single-iteration AVX2 loops; the third
    iteration's latency is the steady throttled latency, so the deltas
    expose the one-off power-gate wake cost of the first iteration.
    """
    system = System(config, governor_freq_ghz=freq)
    results: List = []

    def program() -> Generator:
        yield system.until(us_to_ns(5.0))
        for _ in range(3):
            result = yield system.execute(system.thread_on(0),
                                          Loop(IClass.HEAVY_256, 1))
            results.append(result)
        return None

    system.spawn(program(), name="pg_iterations")
    system.run_until(us_to_ns(300.0))
    steady = results[-1].elapsed_ns
    return [r.elapsed_ns - steady for r in results]


def fig8_throttling(trials: int = 25,
                    runner: Optional[SweepRunner] = None) -> Fig8Result:
    """TP distributions on the three parts and PG wake deltas.

    Every trial is an independent simulation; ``runner`` (see
    :class:`repro.runner.SweepRunner`) may execute them in parallel
    and/or cache them without changing the result.
    """
    runner = runner if runner is not None else SweepRunner()
    rng = np.random.default_rng(8)
    parts = {
        "Haswell": haswell_i7_4770k(),
        "Coffee Lake": coffee_lake_i7_9700k(),
        "Cannon Lake": cannon_lake_i3_8121u(),
    }
    # Draw every trial frequency up front, in the legacy loop order, so
    # the rng stream is identical to a serial per-part run.
    labels: List[str] = []
    tasks: List[Dict] = []
    for name, config in parts.items():
        for trial in range(trials):
            freq = float(rng.uniform(2.9, 3.1))
            freq = min(max(freq, config.min_freq_ghz), config.max_turbo_ghz)
            labels.append(name)
            tasks.append(dict(config=config, freq=freq, seed=trial + 1))
    tp: Dict[str, List[float]] = {name: [] for name in parts}
    for name, sample in zip(labels, runner.map(_tp_sample, tasks)):
        tp[name].append(sample)
    delta_results = runner.map(_iteration_deltas, [
        dict(config=coffee_lake_i7_9700k(), freq=3.0),
        dict(config=haswell_i7_4770k(), freq=3.0),
    ])
    deltas = {
        "Coffee Lake": delta_results[0],
        "Haswell": delta_results[1],
    }
    return Fig8Result(tp_us_by_part=tp, iteration_deltas_ns=deltas)


# ---------------------------------------------------------------------------
# Figure 9 — power gate / Vcc / frequency / throttle timeline
# ---------------------------------------------------------------------------


@dataclass
class Fig9Result:
    """Timelines for the two current-management reactions."""

    didt_vcc: SampleSeries
    didt_throttle: List[Tuple[float, int]]
    didt_wake_ns: float
    didt_tp_us: float
    limit_freq: List[Tuple[float, float]]
    limit_vcc: SampleSeries
    limit_wake_ns: float


def fig9_timeline() -> Fig9Result:
    """AVX2 on Cannon Lake: (a) di/dt ramp at base, (c) P-state at turbo."""
    config = cannon_lake_i3_8121u()
    daq = DAQCard()

    # Case (a): at base frequency the reaction is a guardband ramp.
    system_a = System(config, governor_freq_ghz=2.2)
    sink_a: List = []
    _run_loop_program(system_a, system_a.thread_on(0),
                      Loop(IClass.HEAVY_256, 60), us_to_ns(10.0), sink_a)
    system_a.run_until(us_to_ns(250.0))
    vcc_a = daq.sample(system_a.vcc_signal(), 0.0, us_to_ns(80.0),
                       sample_rate_hz=3.5e6, name="vcc_didt")
    throttle_a = [(t, int(v)) for t, v in system_a.throttle_traces[0].breakpoints()]

    # Case (c): at turbo the limit protection also drops the frequency.
    system_c = System(config, governor_freq_ghz=3.1)
    sink_c: List = []
    for core in range(2):
        _run_loop_program(system_c, system_c.thread_on(core),
                          Loop(IClass.HEAVY_256, 60), us_to_ns(10.0), sink_c)
    system_c.run_until(us_to_ns(300.0))
    vcc_c = daq.sample(system_c.vcc_signal(), 0.0, us_to_ns(120.0),
                       sample_rate_hz=3.5e6, name="vcc_limit")

    return Fig9Result(
        didt_vcc=vcc_a,
        didt_throttle=throttle_a,
        didt_wake_ns=sink_a[0].gate_wake_ns,
        didt_tp_us=ns_to_us(sink_a[0].throttled_ns),
        limit_freq=[(t, float(v)) for t, v in system_c.freq_trace.breakpoints()],
        limit_vcc=vcc_c,
        limit_wake_ns=sink_c[0].gate_wake_ns,
    )


# ---------------------------------------------------------------------------
# Figure 10 — multi-level throttling sweeps
# ---------------------------------------------------------------------------


@dataclass
class Fig10Result:
    """TP sweeps over classes, frequencies and core counts."""

    sweep: Dict[Tuple[str, float, int], float]
    preceded: Dict[str, float]
    levels: Dict[str, str]


def _fig10_cell(config: ProcessorConfig, freq: float, n_cores: int,
                iclass: IClass, iterations: int) -> float:
    """TP of ``n_cores`` cores running an ``iclass`` loop at ``freq``."""
    system = System(config, governor_freq_ghz=freq)
    sink: List = []
    loop = Loop(iclass, iterations)
    for core in range(n_cores):
        _run_loop_program(system, system.thread_on(core), loop,
                          us_to_ns(5.0), sink)
    system.run_until(us_to_ns(500.0))
    return max(ns_to_us(r.throttled_ns) for r in sink)


def _fig10_preceded(config: ProcessorConfig, freq: float, iclass: IClass,
                    iterations: int) -> float:
    """AVX-512 TP when preceded by an ``iclass`` loop on the same thread."""
    system = System(config, governor_freq_ghz=freq)
    sink: List = []

    def program() -> Generator:
        yield system.until(us_to_ns(5.0))
        yield system.execute(system.thread_on(0), Loop(iclass, iterations))
        result = yield system.execute(system.thread_on(0),
                                      Loop(IClass.HEAVY_512, iterations))
        sink.append(result)
        return None

    system.spawn(program(), name=f"preceded_{iclass.label}")
    system.run_until(us_to_ns(800.0))
    return ns_to_us(sink[0].throttled_ns)


def fig10_multilevel(freqs: Sequence[float] = (1.0, 1.2, 1.4),
                     classes: Sequence[IClass] = tuple(IClass),
                     iterations: int = 60,
                     runner: Optional[SweepRunner] = None) -> Fig10Result:
    """Cannon Lake TP vs instruction class x frequency x active cores."""
    config = cannon_lake_i3_8121u()
    runner = runner if runner is not None else SweepRunner()
    cell_keys: List[Tuple[str, float, int]] = []
    cell_tasks: List[Dict] = []
    for freq in freqs:
        for n_cores in (1, 2):
            for iclass in classes:
                cell_keys.append((iclass.label, freq, n_cores))
                cell_tasks.append(dict(config=config, freq=freq,
                                       n_cores=n_cores, iclass=iclass,
                                       iterations=iterations))
    sweep: Dict[Tuple[str, float, int], float] = dict(
        zip(cell_keys, runner.map(_fig10_cell, cell_tasks)))

    preceded_tasks = [
        dict(config=config, freq=freqs[-1], iclass=iclass,
             iterations=iterations)
        for iclass in classes
    ]
    preceded: Dict[str, float] = dict(
        zip((iclass.label for iclass in classes),
            runner.map(_fig10_preceded, preceded_tasks)))

    # Assign L1..L5 by ranking the distinct preceded-TP plateaus.
    ordered = sorted(preceded.items(), key=lambda kv: kv[1])
    levels: Dict[str, str] = {}
    level = 0
    last_tp: Optional[float] = None
    for label, tp in ordered:
        if last_tp is None or tp - last_tp > 0.8:
            level += 1
        levels[label] = f"L{level}"
        last_tp = tp
    return Fig10Result(sweep=sweep, preceded=preceded, levels=levels)


# ---------------------------------------------------------------------------
# Figure 11 — IDQ undelivered-uop signature
# ---------------------------------------------------------------------------


@dataclass
class Fig11Result:
    """Normalised undelivered-slot fractions per iteration."""

    throttled: List[float]
    unthrottled: List[float]


def fig11_idq_signature(iterations: int = 200) -> Fig11Result:
    """Per-iteration IDQ_UOPS_NOT_DELIVERED on the cycle-level model."""
    def run(throttled: bool) -> List[float]:
        pipe = CorePipeline(PipelineConfig())
        pipe.set_thread(0, IClass.HEAVY_256)
        pipe.set_throttle(throttled)
        fractions = []
        cycles_per_iteration = 302  # 300 uops at 4-wide, gated, plus slack
        for _ in range(iterations):
            before = pipe.thread(0).counters.snapshot()
            pipe.run(cycles_per_iteration)
            delta = pipe.thread(0).counters.delta(before)
            fractions.append(normalized_undelivered(delta))
        return fractions

    return Fig11Result(throttled=run(True), unthrottled=run(False))


# ---------------------------------------------------------------------------
# Figure 12 — throughput comparison
# ---------------------------------------------------------------------------


@dataclass
class Fig12Result:
    """Measured throughputs and the paper-style ratios."""

    throughput_bps: Dict[str, float]
    ber: Dict[str, float]

    def ratio(self, ours: str, baseline: str) -> float:
        """Throughput ratio ours/baseline."""
        return self.throughput_bps[ours] / self.throughput_bps[baseline]


def _fig12_channel_run(name: str, payload: bytes) -> Tuple[float, float]:
    """(throughput_bps, ber) of one IChannels channel on a fresh system."""
    channel_types = {
        "IccThreadCovert": IccThreadCovert,
        "IccSMTcovert": IccSMTcovert,
        "IccCoresCovert": IccCoresCovert,
    }
    if name not in channel_types:
        raise ConfigError(f"unknown channel {name!r}")
    system = System(cannon_lake_i3_8121u())
    channel = channel_types[name](system)
    channel.calibrate()
    report = channel.transfer(payload)
    return report.throughput_bps, report.ber


def _fig12_baseline_run(name: str, bits: List[int]) -> Tuple[float, float]:
    """(throughput_bps, ber) of one baseline channel on a fresh system."""
    config = cannon_lake_i3_8121u()
    if name == "NetSpectre":
        report = NetSpectreGadget(System(config)).transfer_bits(bits)
    elif name == "TurboCC":
        report = TurboCC(
            System(config, governor_freq_ghz=3.1)).transfer_bits(bits)
    elif name == "DFScovert":
        report = DFSCovert(
            System(config, governor_freq_ghz=3.2)).transfer_bits(bits)
    elif name == "POWERT":
        report = PowerT(
            System(config, governor_freq_ghz=2.2)).transfer_bits(bits)
    else:
        raise ConfigError(f"unknown baseline {name!r}")
    return report.throughput_bps, report.ber


def fig12_throughput(payload: bytes = b"\xa5\x3c\x96\x0f\x5a\xc3",
                     baseline_bits: int = 12,
                     runner: Optional[SweepRunner] = None) -> Fig12Result:
    """Run every channel and baseline on Cannon Lake systems."""
    runner = runner if runner is not None else SweepRunner()
    channel_names = ["IccThreadCovert", "IccSMTcovert", "IccCoresCovert"]
    channel_results = runner.map(
        _fig12_channel_run,
        [dict(name=name, payload=payload) for name in channel_names])

    rng = np.random.default_rng(12)
    bits = [int(b) for b in rng.integers(0, 2, baseline_bits)]
    baseline_names = ["NetSpectre", "TurboCC", "DFScovert", "POWERT"]
    baseline_results = runner.map(
        _fig12_baseline_run,
        [dict(name=name, bits=bits) for name in baseline_names])

    out_bps: Dict[str, float] = {}
    out_ber: Dict[str, float] = {}
    for name, (bps, ber) in zip(channel_names + baseline_names,
                                channel_results + baseline_results):
        out_bps[name] = bps
        out_ber[name] = ber
    return Fig12Result(throughput_bps=out_bps, ber=out_ber)


# ---------------------------------------------------------------------------
# Figure 13 — receiver TP level distributions in a low-noise system
# ---------------------------------------------------------------------------


@dataclass
class Fig13Result:
    """Per-level receiver measurement clusters and thresholds."""

    samples_by_symbol: Dict[int, List[float]]
    thresholds: List[float]
    separations: List[Tuple[int, int, float]]
    min_gap_cycles: float


def _fig13_impl(symbols_per_level: int, seed: int) -> Fig13Result:
    """The Figure 13 measurement proper, as one cacheable task."""
    config = cannon_lake_i3_8121u()
    system = System(config, seed=seed)
    attach_system_noise(
        system, [system.thread_on(0)],
        NoiseConfig(interrupt_rate_per_s=400.0, interrupt_mean_us=2.0,
                    ctx_switch_rate_per_s=80.0, ctx_switch_mean_us=15.0),
        horizon_ns=ms_to_ns(80.0), seed=seed,
    )
    channel = IccThreadCovert(system)
    rng = np.random.default_rng(seed)
    symbols = [s for s in range(4) for _ in range(symbols_per_level)]
    rng.shuffle(symbols)
    readings = channel.run_symbols(symbols)
    samples: Dict[int, List[float]] = {0: [], 1: [], 2: [], 3: []}
    for symbol, reading in zip(symbols, readings):
        samples[symbol].append(reading)
    from repro.core.calibration import Calibrator

    calibrator = Calibrator(list(zip(symbols, readings)))
    separations = calibrator.separations()
    min_gap = min(gap for _, _, gap in separations)
    return Fig13Result(
        samples_by_symbol=samples,
        thresholds=calibrator.thresholds,
        separations=separations,
        min_gap_cycles=min_gap,
    )


def fig13_level_distribution(symbols_per_level: int = 10,
                             seed: int = 13,
                             runner: Optional[SweepRunner] = None
                             ) -> Fig13Result:
    """IccThreadCovert level clusters under low system noise."""
    runner = runner if runner is not None else SweepRunner()
    return runner.call(_fig13_impl,
                       symbols_per_level=symbols_per_level, seed=seed)


# ---------------------------------------------------------------------------
# Figure 14 — BER under system noise and concurrent PHIs
# ---------------------------------------------------------------------------


@dataclass
class Fig14Result:
    """BER sweeps for the two noise scenarios plus the 7-zip check."""

    ber_vs_event_rate: Dict[float, float]
    ber_vs_phi_rate: Dict[float, float]
    sevenzip_ber: float


def _channel_ber_under_noise(event_rate_per_s: float, payload: bytes,
                             seed: int) -> float:
    config = cannon_lake_i3_8121u()
    system = System(config, seed=seed)
    noise = NoiseConfig(
        interrupt_rate_per_s=0.8 * event_rate_per_s,
        ctx_switch_rate_per_s=0.2 * event_rate_per_s,
    )
    horizon = ms_to_ns(40.0 + 0.9 * len(payload) * 4)
    attach_system_noise(system, [system.thread_on(0)], noise,
                        horizon_ns=horizon, seed=seed)
    channel = IccThreadCovert(system)
    report = channel.transfer(payload)
    return report.ber


def _channel_ber_under_phi_app(phi_rate_per_s: float, payload: bytes,
                               seed: int) -> float:
    config = cannon_lake_i3_8121u()
    system = System(config, seed=seed)
    duration_ms = 40.0 + 0.9 * len(payload) * 4
    attach_concurrent_app(system, system.thread_on(1), phi_rate_per_s,
                          duration_ms=duration_ms, seed=seed)
    channel = IccThreadCovert(system)
    report = channel.transfer(payload)
    return report.ber


def _sevenzip_ber(payload: bytes, seed: int) -> float:
    """BER beside a 7-zip-like sparse AVX2 neighbour (Section 6.3)."""
    from repro.isa.workload import sevenzip_like_trace
    from repro.soc.noise import attach_trace

    config = cannon_lake_i3_8121u()
    system = System(config, seed=seed)
    duration_ms = 40.0 + 0.9 * len(payload) * 4
    attach_trace(system, system.thread_on(1),
                 sevenzip_like_trace(total_ms=duration_ms, seed=seed))
    channel = IccThreadCovert(system)
    return channel.transfer(payload).ber


def fig14_noise_sensitivity(
        payload: bytes = b"\x5a\x0f\xc3\x3c\xa5\x69\x96\x0a",
        event_rates: Sequence[float] = (100.0, 500.0, 1000.0, 2000.0,
                                        5000.0, 10000.0),
        phi_rates: Sequence[float] = (10.0, 100.0, 1000.0, 10000.0),
        trials: int = 3,
        seed: int = 14,
        runner: Optional[SweepRunner] = None) -> Fig14Result:
    """BER vs interrupt/context-switch rate and vs App-PHI rate.

    Each point averages ``trials`` independent transfers; single
    transfers are dominated by whether a burst happens to land inside a
    decode window at all.  Every transfer has a seed derived only from
    its (rate, trial) coordinates, so sweep order — and therefore
    parallel execution via ``runner`` — cannot change the result.
    """
    runner = runner if runner is not None else SweepRunner()
    event_tasks = [
        dict(event_rate_per_s=rate, payload=payload,
             seed=seed + int(rate) + 1000 * t)
        for rate in event_rates for t in range(trials)
    ]
    event_bers = runner.map(_channel_ber_under_noise, event_tasks)
    ber_events = {
        rate: float(np.mean(event_bers[i * trials:(i + 1) * trials]))
        for i, rate in enumerate(event_rates)
    }
    phi_tasks = [
        dict(phi_rate_per_s=rate, payload=payload,
             seed=seed + int(rate) + 1000 * t)
        for rate in phi_rates for t in range(trials)
    ]
    phi_bers = runner.map(_channel_ber_under_phi_app, phi_tasks)
    ber_phis = {
        rate: float(np.mean(phi_bers[i * trials:(i + 1) * trials]))
        for i, rate in enumerate(phi_rates)
    }
    sevenzip = runner.call(_sevenzip_ber, payload=payload, seed=seed)
    return Fig14Result(
        ber_vs_event_rate=ber_events,
        ber_vs_phi_rate=ber_phis,
        sevenzip_ber=sevenzip,
    )


# ---------------------------------------------------------------------------
# Tables 1 and 2
# ---------------------------------------------------------------------------


def table1_mitigations() -> MitigationReport:
    """Mitigation effectiveness matrix on Cannon Lake (Table 1)."""
    return evaluate_all(cannon_lake_i3_8121u())


@dataclass
class Table2Row:
    """One comparison row of Table 2."""

    proposal: str
    same_core: bool
    cross_smt: bool
    cross_core: bool
    bw_bps: float
    user_level: bool
    mechanism: str
    turbo_independent: bool
    root_cause_identified: bool
    effective_mitigations: bool


def table2_comparison(fig12: Optional[Fig12Result] = None,
                      runner: Optional[SweepRunner] = None) -> List[Table2Row]:
    """Comparison matrix with measured bandwidths (Table 2)."""
    if fig12 is None:
        fig12 = fig12_throughput(runner=runner)
    ichannels_bw = max(
        fig12.throughput_bps["IccThreadCovert"],
        fig12.throughput_bps["IccSMTcovert"],
        fig12.throughput_bps["IccCoresCovert"],
    )
    return [
        Table2Row("NetSpectre", True, False, False,
                  fig12.throughput_bps["NetSpectre"], True,
                  "Single-level thread throttling", True, False, False),
        Table2Row("TurboCC", False, False, True,
                  fig12.throughput_bps["TurboCC"], False,
                  "Turbo frequency change", False, False, False),
        Table2Row("IChannels", True, True, True, ichannels_bw, True,
                  "Multi-level thread, SMT and core (VR) throttling",
                  True, True, True),
    ]


# ---------------------------------------------------------------------------
# Section 6.5 — side-channel class inference
# ---------------------------------------------------------------------------


@dataclass
class SideChannelResult:
    """Spy accuracy per location, with full confusion matrices."""

    accuracy: Dict[str, float]
    confusion: Dict[str, Dict[Tuple[str, str], int]]
    key_bits_recovered: Dict[str, int]
    key_bits_total: int


def side_channel_inference(rounds: int = 3, seed: int = 65
                           ) -> SideChannelResult:
    """Measure the §6.5 spy: class inference and key recovery.

    For each location (across SMT, across cores) the spy observes every
    class the part supports ``rounds`` times in a shuffled order, and
    then recovers a random 16-bit key from a victim with key-dependent
    AVX paths.
    """
    from repro.core.levels import ChannelLocation
    from repro.core.side_channel import InstructionClassSpy, KeyDependentVictim

    rng = np.random.default_rng(seed)
    config = cannon_lake_i3_8121u()
    accuracy: Dict[str, float] = {}
    confusion: Dict[str, Dict[Tuple[str, str], int]] = {}
    key_recovered: Dict[str, int] = {}
    key = [int(b) for b in rng.integers(0, 2, 16)]

    for location in (ChannelLocation.ACROSS_SMT, ChannelLocation.ACROSS_CORES):
        system = System(config)
        spy = InstructionClassSpy(system, location)
        classes = [c for c in IClass
                   if c.width_bits <= config.max_vector_bits]
        victim_sequence = [c for _ in range(rounds) for c in classes]
        rng.shuffle(victim_sequence)
        report = spy.spy(victim_sequence)
        accuracy[location.value] = report.accuracy
        matrix: Dict[Tuple[str, str], int] = {}
        for actual, inferred in zip(report.victim_classes,
                                    report.inferred_classes):
            pair = (actual.label, inferred.label)
            matrix[pair] = matrix.get(pair, 0) + 1
        confusion[location.value] = matrix

        system2 = System(config)
        spy2 = InstructionClassSpy(system2, location)
        stolen = spy2.steal_key(KeyDependentVictim(), key)
        key_recovered[location.value] = sum(
            1 for a, b in zip(key, stolen) if a == b)

    return SideChannelResult(
        accuracy=accuracy,
        confusion=confusion,
        key_bits_recovered=key_recovered,
        key_bits_total=len(key),
    )


# ---------------------------------------------------------------------------
# Neighbour-noise matrix: channel BER vs realistic co-running apps
# ---------------------------------------------------------------------------


@dataclass
class NeighbourMatrixResult:
    """BER of each channel under each neighbour application."""

    ber: Dict[Tuple[str, str], float]
    channels: List[str]
    neighbours: List[str]


def neighbour_noise_matrix(payload: bytes = b"\x5a\x3c\xc3\x0f\x69\x96",
                           seed: int = 88) -> NeighbourMatrixResult:
    """Run every channel beside every synthetic neighbour application.

    Extends Section 6.3's single 7-zip data point into a matrix: the
    browser-like neighbour barely touches the rail, the video codec's
    frame-clocked AVX2 perturbs it periodically, and the ML server's
    dense AVX-512 bursts are the worst case.
    """
    from repro.isa.workload import (
        browser_like_trace,
        ml_inference_like_trace,
        sevenzip_like_trace,
        video_codec_like_trace,
    )
    from repro.soc.noise import attach_trace

    config = cannon_lake_i3_8121u()
    duration_ms = 60.0 + 0.9 * len(payload) * 4
    neighbours = {
        "idle": None,
        "browser": lambda: browser_like_trace(duration_ms, seed=seed),
        "7-zip": lambda: sevenzip_like_trace(duration_ms, seed=seed),
        "video-codec": lambda: video_codec_like_trace(duration_ms, seed=seed),
        "ml-inference": lambda: ml_inference_like_trace(duration_ms, seed=seed),
    }
    channels = {
        "IccThreadCovert": lambda s: IccThreadCovert(s),
        "IccSMTcovert": lambda s: IccSMTcovert(s),
    }
    ber: Dict[Tuple[str, str], float] = {}
    for channel_name, channel_factory in channels.items():
        for neighbour_name, trace_factory in neighbours.items():
            system = System(config, seed=seed)
            if trace_factory is not None:
                # The neighbour shares the package from the other core.
                attach_trace(system, system.thread_on(1, 0), trace_factory())
            channel = channel_factory(system)
            report = channel.transfer(payload)
            ber[(channel_name, neighbour_name)] = report.ber
    return NeighbourMatrixResult(
        ber=ber,
        channels=list(channels),
        neighbours=list(neighbours),
    )


# ---------------------------------------------------------------------------
# Multi-tenant interference: two covert pairs sharing one machine
# ---------------------------------------------------------------------------


@dataclass
class MultiPairResult:
    """BER of two concurrently running cross-core pairs."""

    ber_aligned: Tuple[float, float]
    ber_offset: Tuple[float, float]
    ber_solo: float


def multi_pair_interference(payload: bytes = b"\x5a\x3c\xc3\x0f",
                            seed: int = 99) -> MultiPairResult:
    """Two IccCoresCovert pairs on one 8-core part, sharing the rail.

    Both pairs' voltage transitions serialise on the same regulator, so
    each pair is the other's worst-case 'App-PHI' noise.  With slot
    clocks *aligned*, every transaction collides and readings carry the
    other sender's level; offsetting one pair's schedule by half a slot
    moves its transitions into the other pair's quiet window and mostly
    restores the channel.  A beyond-paper result with an operational
    flavour: covert channel capacity on a shared machine is a contended
    resource.
    """
    from repro.core.sync import SlotSchedule

    config = coffee_lake_i7_9700k()
    symbols = None

    def run_pairs(offset_fraction: float) -> Tuple[float, float]:
        nonlocal symbols
        system = System(config, seed=seed)
        pair_a = IccCoresCovert(system, sender_core=0, receiver_core=1)
        pair_b = IccCoresCovert(system, sender_core=4, receiver_core=5)
        # Calibrate sequentially (each alone on the machine).
        pair_a.calibrate()
        pair_b.calibrate()
        symbols = bytes_to_symbols_cached(payload)
        slot = max(pair_a.slot_ns, pair_b.slot_ns)
        epoch = system.now + slot
        schedule_a = SlotSchedule(epoch, slot)
        schedule_b = SlotSchedule(epoch + offset_fraction * slot, slot)
        meas_a: List[Optional[float]] = [None] * len(symbols)
        meas_b: List[Optional[float]] = [None] * len(symbols)
        pair_a._spawn_transaction_programs(schedule_a, symbols, meas_a)
        pair_b._spawn_transaction_programs(schedule_b, symbols, meas_b)
        system.run_until(schedule_b.slot_start(len(symbols)) + slot)
        def ber(channel, readings):
            decoded = channel.calibrator.decode_all(
                [float(m) for m in readings])
            wrong = sum(bin((a ^ b) & 0b11).count("1")
                        for a, b in zip(symbols, decoded))
            return wrong / (2 * len(symbols))
        return ber(pair_a, meas_a), ber(pair_b, meas_b)

    def bytes_to_symbols_cached(data: bytes) -> List[int]:
        from repro.core.encoding import bytes_to_symbols

        return bytes_to_symbols(data)

    solo_system = System(config, seed=seed)
    solo = IccCoresCovert(solo_system, sender_core=0, receiver_core=1)
    solo_report = solo.transfer(payload)

    return MultiPairResult(
        ber_aligned=run_pairs(0.0),
        ber_offset=run_pairs(0.5),
        ber_solo=solo_report.ber,
    )


# ---------------------------------------------------------------------------
# Resilience under fault injection (docs/FAULTS.md)
# ---------------------------------------------------------------------------

#: Channel constructors the resilience sweep knows how to build.
RESILIENCE_CHANNELS: Dict[str, type] = {
    "thread": IccThreadCovert,
    "smt": IccSMTcovert,
    "cores": IccCoresCovert,
}

#: Mitigation stacks compared by the resilience sweep, weakest first.
RESILIENCE_MITIGATIONS: Tuple[str, ...] = ("none", "arq", "adaptive")


@dataclass
class ResiliencePoint:
    """One (channel, intensity, mitigation) cell of the resilience sweep."""

    channel: str
    intensity: float
    mitigation: str
    residual_ber: float
    raw_ber: float
    goodput_bps: float
    delivered_fraction: float
    attempts: float
    recalibrations: float
    degraded_fraction: float


@dataclass
class ResilienceResult:
    """BER/goodput vs fault intensity, per channel, per mitigation."""

    payload_bytes: int
    trials: int
    intensities: Tuple[float, ...]
    channels: Tuple[str, ...]
    mitigations: Tuple[str, ...]
    points: List[ResiliencePoint]

    def cell(self, channel: str, intensity: float,
             mitigation: str) -> ResiliencePoint:
        """The unique point at the given sweep coordinates."""
        for point in self.points:
            if (point.channel == channel and point.mitigation == mitigation
                    and abs(point.intensity - intensity) < 1e-12):
                return point
        raise ConfigError(
            f"no resilience point at ({channel!r}, {intensity}, "
            f"{mitigation!r})")


def _resilience_trial(channel_name: str, mitigation: str, intensity: float,
                      payload: bytes, seed: int) -> Dict[str, float]:
    """One transfer of ``payload`` under the default fault suite.

    Returns plain floats so the result is picklable and cacheable.  The
    fault suite is rebuilt from its spec string inside the trial — spec
    strings, not injector objects, are the currency shipped to worker
    processes.
    """
    system = System(cannon_lake_i3_8121u(), seed=2021)
    if intensity > 0.0:
        injector = parse_fault_spec(
            f"default:intensity={intensity},seed={seed}")
        injector.attach(system)
    channel = RESILIENCE_CHANNELS[channel_name](system)

    if mitigation == "none":
        # Bare channel: one calibrated transfer, no framing, no FEC.
        try:
            report = channel.transfer(payload)
        except (CalibrationError, ProtocolError):
            return dict(residual_ber=1.0, raw_ber=1.0, goodput_bps=0.0,
                        delivered=0.0, attempts=1.0, recalibrations=0.0,
                        degraded=0.0)
        delivered = float(report.received == payload)
        return dict(residual_ber=report.ber, raw_ber=report.ber,
                    goodput_bps=report.goodput_bps if delivered else 0.0,
                    delivered=delivered, attempts=1.0, recalibrations=0.0,
                    degraded=0.0)

    adaptive = AdaptiveConfig() if mitigation == "adaptive" else None
    config = SessionConfig(max_retries=8, adaptive=adaptive)
    session = CovertSession(channel, config)
    try:
        report = session.send(payload)
    except (CalibrationError, ProtocolError):
        return dict(residual_ber=1.0, raw_ber=1.0, goodput_bps=0.0,
                    delivered=0.0, attempts=1.0, recalibrations=0.0,
                    degraded=0.0)
    raw_bers = [b for f in report.frames for b in f.raw_ber_per_attempt]
    return dict(
        residual_ber=report.residual_ber,
        raw_ber=float(np.mean(raw_bers)) if raw_bers else 0.0,
        goodput_bps=report.goodput_bps,
        delivered=float(report.ok),
        attempts=float(report.total_attempts),
        recalibrations=float(report.recalibrations),
        degraded=float(report.degraded),
    )


def resilience_sweep(
        payload: bytes = b"\x5a\x0f\xc3\x3c\xa5\x69\x96\x0a",
        intensities: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
        channels: Sequence[str] = ("cores",),
        mitigations: Sequence[str] = RESILIENCE_MITIGATIONS,
        trials: int = 2,
        seed: int = 1701,
        runner: Optional[SweepRunner] = None) -> ResilienceResult:
    """Channel resilience vs fault intensity, per mitigation stack.

    Sweeps the default fault suite's intensity across the requested
    channels and compares three stacks: the bare channel (``none``), the
    framed ARQ session (``arq``), and the adaptive session with drift
    re-calibration, backoff, and two-level degradation (``adaptive``).
    Every trial's seed is derived only from its sweep coordinates, so a
    parallel cached run returns exactly what a serial run would.
    """
    for name in channels:
        if name not in RESILIENCE_CHANNELS:
            raise ConfigError(
                f"unknown channel {name!r}; choose from "
                f"{sorted(RESILIENCE_CHANNELS)}")
    for name in mitigations:
        if name not in RESILIENCE_MITIGATIONS:
            raise ConfigError(
                f"unknown mitigation {name!r}; choose from "
                f"{list(RESILIENCE_MITIGATIONS)}")
    if trials < 1:
        raise ConfigError(f"trials must be >= 1, got {trials}")
    runner = runner if runner is not None else SweepRunner()
    coords = [(c, m, x) for c in channels for m in mitigations
              for x in intensities]
    tasks = [
        dict(channel_name=c, mitigation=m, intensity=x, payload=payload,
             seed=seed + 7919 * t + int(round(1000 * x)))
        for (c, m, x) in coords for t in range(trials)
    ]
    rows = runner.map(_resilience_trial, tasks)
    points: List[ResiliencePoint] = []
    for i, (c, m, x) in enumerate(coords):
        cell = rows[i * trials:(i + 1) * trials]
        points.append(ResiliencePoint(
            channel=c, intensity=float(x), mitigation=m,
            residual_ber=float(np.mean([r["residual_ber"] for r in cell])),
            raw_ber=float(np.mean([r["raw_ber"] for r in cell])),
            goodput_bps=float(np.mean([r["goodput_bps"] for r in cell])),
            delivered_fraction=float(np.mean([r["delivered"] for r in cell])),
            attempts=float(np.mean([r["attempts"] for r in cell])),
            recalibrations=float(
                np.mean([r["recalibrations"] for r in cell])),
            degraded_fraction=float(np.mean([r["degraded"] for r in cell])),
        ))
    return ResilienceResult(
        payload_bytes=len(payload),
        trials=trials,
        intensities=tuple(float(x) for x in intensities),
        channels=tuple(channels),
        mitigations=tuple(mitigations),
        points=points,
    )
