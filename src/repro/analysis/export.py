"""CSV export of regenerated experiment data.

The benchmark harnesses print human-readable rows; anyone replotting the
figures (matplotlib, gnuplot, a paper rebuttal) wants machine-readable
series instead.  ``export_all`` writes one CSV per artifact::

    python -m repro.analysis.export --out-dir results/

Each writer takes the corresponding result object from
:mod:`repro.analysis.experiments`, so custom runs can be exported too.
"""

from __future__ import annotations

import argparse
import csv
import os
from typing import Optional

from repro.analysis import experiments as ex
from repro.isa import IClass


def _write(path: str, header: "list[str]", rows: "list[list]") -> str:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_fig6(result: "ex.Fig6Result", out_dir: str) -> "list[str]":
    """Vcc time series (main + calculix) as CSVs."""
    paths = []
    for name, series in (("fig6_vcc", result.vcc_samples),
                         ("fig6_calculix_vcc", result.calculix_vcc)):
        rows = [[float(t), float(v)]
                for t, v in zip(series.times_ns, series.values)]
        paths.append(_write(os.path.join(out_dir, f"{name}.csv"),
                            ["time_ns", "vcc_v"], rows))
    return paths


def export_fig7(result: "ex.Fig7Result", out_dir: str) -> "list[str]":
    """Operating points and the frequency timeline."""
    point_rows = [
        [p.system, p.freq_req_ghz, p.workload, p.vcc_projected,
         p.icc_projected, p.vcc_violation, p.icc_violation,
         p.freq_realized_ghz]
        for p in result.points
    ]
    paths = [_write(
        os.path.join(out_dir, "fig7_points.csv"),
        ["system", "freq_req_ghz", "workload", "vcc_v", "icc_a",
         "vcc_violation", "icc_violation", "freq_realized_ghz"],
        point_rows)]
    freq_rows = [[t, f] for t, f in result.timeline_freq]
    paths.append(_write(os.path.join(out_dir, "fig7_freq_timeline.csv"),
                        ["time_ns", "freq_ghz"], freq_rows))
    return paths


def export_fig8(result: "ex.Fig8Result", out_dir: str) -> "list[str]":
    """TP samples per part and the per-iteration deltas."""
    tp_rows = [
        [part, sample]
        for part, samples in result.tp_us_by_part.items()
        for sample in samples
    ]
    paths = [_write(os.path.join(out_dir, "fig8_tp_samples.csv"),
                    ["part", "tp_us"], tp_rows)]
    delta_rows = [
        [part, i + 1, delta]
        for part, deltas in result.iteration_deltas_ns.items()
        for i, delta in enumerate(deltas)
    ]
    paths.append(_write(os.path.join(out_dir, "fig8_iteration_deltas.csv"),
                        ["part", "iteration", "delta_ns"], delta_rows))
    return paths


def export_fig10(result: "ex.Fig10Result", out_dir: str) -> "list[str]":
    """The TP sweep and the preceded-by ladder."""
    sweep_rows = [
        [label, freq, cores, tp]
        for (label, freq, cores), tp in sorted(result.sweep.items())
    ]
    paths = [_write(os.path.join(out_dir, "fig10_sweep.csv"),
                    ["class", "freq_ghz", "cores", "tp_us"], sweep_rows)]
    preceded_rows = [
        [iclass.label, result.preceded[iclass.label],
         result.levels[iclass.label]]
        for iclass in sorted(IClass)
        if iclass.label in result.preceded
    ]
    paths.append(_write(os.path.join(out_dir, "fig10_preceded.csv"),
                        ["preceding_class", "tp_us", "level"], preceded_rows))
    return paths


def export_fig12(result: "ex.Fig12Result", out_dir: str) -> "list[str]":
    """Throughput/BER per channel."""
    rows = [
        [name, bps, result.ber[name]]
        for name, bps in sorted(result.throughput_bps.items(),
                                key=lambda kv: -kv[1])
    ]
    return [_write(os.path.join(out_dir, "fig12_throughput.csv"),
                   ["channel", "throughput_bps", "ber"], rows)]


def export_fig13(result: "ex.Fig13Result", out_dir: str) -> "list[str]":
    """Per-level receiver readings."""
    rows = [
        [symbol, reading]
        for symbol, readings in sorted(result.samples_by_symbol.items())
        for reading in readings
    ]
    return [_write(os.path.join(out_dir, "fig13_levels.csv"),
                   ["symbol", "reading_tsc"], rows)]


def export_fig14(result: "ex.Fig14Result", out_dir: str) -> "list[str]":
    """Both BER sweeps."""
    rows = ([["system_events", rate, ber]
             for rate, ber in sorted(result.ber_vs_event_rate.items())]
            + [["app_phi", rate, ber]
               for rate, ber in sorted(result.ber_vs_phi_rate.items())]
            + [["sevenzip", 0.0, result.sevenzip_ber]])
    return [_write(os.path.join(out_dir, "fig14_ber.csv"),
                   ["noise_kind", "rate_per_s", "ber"], rows)]


def export_resilience(result: "ex.ResilienceResult",
                      out_dir: str) -> "list[str]":
    """The fault-resilience sweep, one row per sweep cell."""
    rows = [
        [p.channel, p.intensity, p.mitigation, p.residual_ber, p.raw_ber,
         p.goodput_bps, p.delivered_fraction, p.attempts, p.recalibrations,
         p.degraded_fraction]
        for p in result.points
    ]
    return [_write(
        os.path.join(out_dir, "resilience_ber.csv"),
        ["channel", "intensity", "mitigation", "residual_ber", "raw_ber",
         "goodput_bps", "delivered_fraction", "attempts", "recalibrations",
         "degraded_fraction"],
        rows)]


def export_all(out_dir: str, quick: bool = True) -> "list[str]":
    """Run every exportable experiment and write its CSVs."""
    os.makedirs(out_dir, exist_ok=True)
    paths: "list[str]" = []
    paths += export_fig6(ex.fig6_voltage_steps(), out_dir)
    paths += export_fig7(ex.fig7_limit_protection(), out_dir)
    paths += export_fig8(ex.fig8_throttling(trials=8 if quick else 20), out_dir)
    paths += export_fig10(ex.fig10_multilevel(), out_dir)
    fig12 = ex.fig12_throughput()
    paths += export_fig12(fig12, out_dir)
    paths += export_fig13(ex.fig13_level_distribution(), out_dir)
    paths += export_fig14(
        ex.fig14_noise_sensitivity(trials=2 if quick else 3), out_dir)
    paths += export_resilience(
        ex.resilience_sweep(trials=1 if quick else 3), out_dir)
    return paths


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Export regenerated experiment series as CSV files.")
    parser.add_argument("--out-dir", default="results",
                        help="directory for the CSV files (default: results/)")
    parser.add_argument("--full", action="store_true",
                        help="full trial counts (slower)")
    args = parser.parse_args(argv)
    paths = export_all(args.out_dir, quick=not args.full)
    for path in paths:
        print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
