"""Sensitivity studies beyond the paper's figures.

The paper establishes the mechanism at fixed hardware parameters; these
sweeps chart how the channel degrades as the parameters move — the
design space between "vulnerable MBVR client part" and "mitigated
per-core-LDO part":

* :func:`sweep_vr_slew` — level separation vs regulator slew rate (the
  continuum behind the per-core-VR/LDO mitigation);
* :func:`sweep_reset_time` — throughput vs the hysteresis window (the
  protocol pays one reset-time per transaction);
* :func:`sweep_load_line` — level separation vs load-line impedance
  (Equation 1 scales every guardband with R_LL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.calibration import Calibrator
from repro.core.channel import ChannelConfig
from repro.core.thread_channel import IccThreadCovert
from repro.errors import CalibrationError
from repro.soc.config import ProcessorConfig, cannon_lake_i3_8121u
from repro.soc.system import System
from repro.units import NS_PER_S


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sensitivity sweep."""

    parameter: float
    min_separation_tsc: float
    usable: bool
    throughput_bps: float


def _channel_on(config: ProcessorConfig) -> IccThreadCovert:
    system = System(config)
    # A tiny configured slot lets the adaptive sizing pick the true
    # minimum (reset-time + send window) for every parameter value.
    return IccThreadCovert(system, ChannelConfig(slot_us=50.0,
                                                 min_level_gap_tsc=0.0))


def _probe_point(config: ProcessorConfig, parameter: float,
                 usable_gap_tsc: float = 2000.0) -> SweepPoint:
    channel = _channel_on(config)
    try:
        calibrator: Calibrator = channel.calibrate()
    except CalibrationError:
        return SweepPoint(parameter, 0.0, False, 0.0)
    min_sep = min((gap for _, _, gap in calibrator.separations()), default=0.0)
    report = channel.transfer(b"\x1e\x87")
    throughput = report.throughput_bps if report.ber < 0.05 else 0.0
    return SweepPoint(
        parameter=parameter,
        min_separation_tsc=min_sep,
        usable=min_sep >= usable_gap_tsc and report.ber < 0.05,
        throughput_bps=throughput,
    )


def sweep_vr_slew(slews_mv_per_us: Sequence[float] = (0.625, 1.25, 2.5, 5.0,
                                                      10.0, 25.0, 100.0),
                  ) -> List[SweepPoint]:
    """Level separation vs VR slew rate.

    Slower regulators stretch every throttling period, widening the
    level gaps; at LDO speeds (>= 100 mV/us) the ladder collapses below
    the reliable-decoding threshold — the mitigation continuum.
    """
    points = []
    for slew in slews_mv_per_us:
        config = cannon_lake_i3_8121u().with_overrides(
            vr_slew_mv_per_us=slew)
        points.append(_probe_point(config, slew))
    return points


def sweep_reset_time(reset_times_us: Sequence[float] = (100.0, 300.0, 650.0,
                                                        1300.0, 2600.0),
                     ) -> List[SweepPoint]:
    """Throughput vs the guardband hysteresis window.

    The transaction cycle is dominated by waiting out the reset-time, so
    throughput scales almost inversely with it; the separation stays
    constant because the level physics does not change.
    """
    points = []
    for reset_us in reset_times_us:
        config = cannon_lake_i3_8121u().with_overrides(reset_time_us=reset_us)
        points.append(_probe_point(config, reset_us))
    return points


def sweep_load_line(r_ll_mohms: Sequence[float] = (0.45, 0.9, 1.8, 3.6),
                    ) -> List[SweepPoint]:
    """Level separation vs load-line impedance (Equation 1's R_LL).

    Halving R_LL halves every guardband and with it every level gap; a
    sufficiently stiff power delivery network is itself a (costly)
    mitigation.
    """
    points = []
    for r_ll in r_ll_mohms:
        config = cannon_lake_i3_8121u().with_overrides(r_ll_mohm=r_ll)
        points.append(_probe_point(config, r_ll))
    return points


def theoretical_reset_limited_bps(reset_time_us: float,
                                  send_window_us: float = 60.0,
                                  bits: int = 2) -> float:
    """Upper bound on throughput for a reset-time-limited protocol."""
    cycle_ns = (reset_time_us + send_window_us) * 1_000.0
    return bits * NS_PER_S / cycle_ns


def summarize(points: Sequence[SweepPoint]) -> Dict[str, List[float]]:
    """Columns view of a sweep for rendering."""
    return {
        "parameter": [p.parameter for p in points],
        "min_separation_tsc": [p.min_separation_tsc for p in points],
        "usable": [float(p.usable) for p in points],
        "throughput_bps": [p.throughput_bps for p in points],
    }
