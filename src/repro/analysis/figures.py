"""Plain-text rendering of regenerated figures.

The benchmark harnesses print the same rows/series the paper plots; these
helpers keep that output readable in a terminal without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import MeasurementError


def ascii_bars(rows: Sequence[Tuple[str, float]], width: int = 40,
               unit: str = "") -> str:
    """Horizontal bar chart: one (label, value) bar per row."""
    if not rows:
        raise MeasurementError("no rows to render")
    top = max(value for _, value in rows)
    if top <= 0:
        top = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(0, int(round(width * value / top)))
        lines.append(f"{label:<{label_width}} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def ascii_series(times: Sequence[float], values: Sequence[float],
                 height: int = 10, width: int = 72,
                 label: str = "") -> str:
    """Down-sampled line plot of a time series."""
    if len(times) != len(values) or len(times) == 0:
        raise MeasurementError("series must be non-empty and aligned")
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    # Downsample to the display width.
    step = max(1, len(values) // width)
    sampled = list(values)[::step][:width]
    grid = [[" "] * len(sampled) for _ in range(height)]
    for x, value in enumerate(sampled):
        y = int((value - lo) / (hi - lo) * (height - 1))
        grid[height - 1 - y][x] = "*"
    lines = [f"{label}  [{lo:.4g} .. {hi:.4g}]"] if label else []
    lines.extend("".join(row) for row in grid)
    return "\n".join(lines)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table."""
    if not headers:
        raise MeasurementError("table needs headers")
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise MeasurementError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(f"{cell:<{w}}" for cell, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def histogram_text(samples: Sequence[float], bins: int = 12,
                   width: int = 40, unit: str = "") -> str:
    """Text histogram of a sample distribution."""
    if not samples:
        raise MeasurementError("no samples to render")
    lo, hi = min(samples), max(samples)
    if hi == lo:
        hi = lo + 1.0
    counts = [0] * bins
    for sample in samples:
        idx = min(bins - 1, int((sample - lo) / (hi - lo) * bins))
        counts[idx] += 1
    top = max(counts)
    lines = []
    for i, count in enumerate(counts):
        b_lo = lo + (hi - lo) * i / bins
        bar = "#" * int(round(width * count / top)) if top else ""
        lines.append(f"{b_lo:10.3g}{unit} | {bar} {count}")
    return "\n".join(lines)


def level_markers(stats: Dict[int, "object"]) -> List[str]:
    """One summary line per calibrated level (Figure 13 style)."""
    lines = []
    for symbol in sorted(stats):
        s = stats[symbol]
        lines.append(
            f"L{symbol + 1} (bits {symbol >> 1}{symbol & 1}): "
            f"mean={s.mean:.0f} cycles  range=[{s.minimum:.0f}, {s.maximum:.0f}]"
        )
    return lines
