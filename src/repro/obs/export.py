"""Exporters: Chrome trace-event JSON and flat metrics JSON.

The trace exporter emits the `Trace Event Format`_ consumed by
``chrome://tracing`` and Perfetto: one *complete* (``"X"``) event per
span, one *instant* (``"i"``) event per point event, plus metadata
events naming the processes and threads.  Simulation-side events land
under the ``simulation`` process with the engine clock (ns) mapped to
trace microseconds; host-side events (runner tasks) land under the
``host`` process on the wall clock, so the two timelines never get
conflated.

The metrics exporter writes one flat JSON object with every counter and
histogram summary — easy to diff between two runs, which is the whole
point: a perf regression or protocol failure becomes a trace/metrics
diff instead of a print-statement hunt.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.errors import ConfigError
from repro.obs.tracer import DOMAIN_HOST, NullTracer

#: Trace process ids per clock domain.
_PID_SIM = 1
_PID_HOST = 2

#: Every trace event must carry these keys to load in chrome://tracing.
_REQUIRED_EVENT_KEYS = frozenset({"name", "cat", "ph", "ts", "pid", "tid"})


def chrome_trace_events(tracer: NullTracer) -> List[Dict]:
    """The tracer's events in Chrome trace-event form (sorted by time).

    Timestamps are converted to microseconds (the format's unit); track
    names become per-process thread ids with ``thread_name`` metadata so
    the viewer labels each row.
    """
    tids: Dict[tuple, int] = {}
    out: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": _PID_SIM, "tid": 0,
         "cat": "__metadata", "ts": 0, "args": {"name": "simulation"}},
        {"name": "process_name", "ph": "M", "pid": _PID_HOST, "tid": 0,
         "cat": "__metadata", "ts": 0, "args": {"name": "host"}},
    ]
    for event in tracer.events:
        pid = _PID_HOST if event.domain == DOMAIN_HOST else _PID_SIM
        key = (pid, event.track)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            out.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "cat": "__metadata", "ts": 0, "args": {"name": event.track},
            })
        record: Dict = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts_ns / 1_000.0,
            "pid": pid,
            "tid": tid,
        }
        if event.ph == "X":
            record["dur"] = event.dur_ns / 1_000.0
        if event.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = event.args
        out.append(record)
    out.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0)))
    return out


def chrome_trace_dict(tracer: NullTracer) -> Dict:
    """The full JSON-object form of the trace."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def validate_chrome_trace(trace: Dict) -> None:
    """Raise :class:`ConfigError` unless ``trace`` is loadable trace JSON.

    Checks the schema the viewer relies on: a ``traceEvents`` list whose
    members carry the required keys, non-negative timestamps and
    durations, and at least the metadata events naming the processes.
    Used by the test suite and the CI observability smoke step.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ConfigError("trace JSON must be an object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ConfigError("'traceEvents' must be a list")
    phases = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ConfigError(f"traceEvents[{i}] is not an object")
        missing = _REQUIRED_EVENT_KEYS - event.keys()
        if missing:
            raise ConfigError(
                f"traceEvents[{i}] ({event.get('name')!r}) lacks {sorted(missing)}"
            )
        if event["ph"] not in ("X", "i", "M", "C"):
            raise ConfigError(
                f"traceEvents[{i}] has unsupported phase {event['ph']!r}"
            )
        if event["ph"] != "M" and event["ts"] < 0:
            raise ConfigError(f"traceEvents[{i}] has negative ts {event['ts']}")
        if event["ph"] == "X" and event.get("dur", 0) < 0:
            raise ConfigError(
                f"traceEvents[{i}] has negative dur {event['dur']}"
            )
        phases.add(event["ph"])
    if "M" not in phases:
        raise ConfigError("trace lacks the process/thread metadata events")
    json.dumps(trace)  # must round-trip to text


def write_chrome_trace(tracer: NullTracer, path: os.PathLike) -> Dict:
    """Write the trace as Chrome trace-event JSON; returns the object."""
    trace = chrome_trace_dict(tracer)
    validate_chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
    return trace


def metrics_dict(tracer: NullTracer) -> Dict:
    """The tracer's metrics registry as one flat JSON-ready object."""
    return tracer.metrics.snapshot()


#: Metric-name prefixes excluded from :func:`metrics_fingerprint`: the
#: runner's instruments depend on execution strategy (cache hits, pool
#: size), not on what the simulation computed.
VOLATILE_METRIC_PREFIXES = ("runner.", "cache.")

#: Histogram-name markers identifying wall-clock (host time) data, which
#: varies run to run even for identical simulations.
WALL_CLOCK_MARKERS = ("_wall_", "wall_ms", "wall_ns")


def metrics_fingerprint(tracer: NullTracer) -> Dict[str, Dict]:
    """The *deterministic* slice of the metrics registry, digest-ready.

    The golden-trace harness (:mod:`repro.verify`) digests metrics
    alongside rail traces and transfer reports, so this hook keeps only
    what a repeated identical simulation must reproduce exactly:

    * counter values, minus the volatile prefixes above (runner/cache
      instruments record *how* a sweep executed, not what it computed);
    * histogram observation **counts** and simulation-time totals, but
      never wall-clock histograms (host timings differ every run).

    Everything returned is plain ``{str: int | float}`` JSON.
    """
    counters = {
        name: counter.snapshot()
        for name, counter in sorted(tracer.metrics.counters.items())
        if not name.startswith(VOLATILE_METRIC_PREFIXES)
    }
    histograms: Dict[str, Dict] = {}
    for name, histogram in sorted(tracer.metrics.histograms.items()):
        if name.startswith(VOLATILE_METRIC_PREFIXES):
            continue
        if any(marker in name for marker in WALL_CLOCK_MARKERS):
            continue
        histograms[name] = {"count": histogram.count,
                            "total": histogram.total}
    return {"counters": counters, "histograms": histograms}


def write_metrics_json(tracer: NullTracer, path: os.PathLike) -> Dict:
    """Write the metrics snapshot as JSON; returns the object."""
    snapshot = metrics_dict(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
    return snapshot
