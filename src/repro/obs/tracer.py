"""Span/event tracer with a zero-overhead no-op default.

The simulator's interesting behaviours — throttling periods, serialised
VR transitions, 1-of-4 gating — are *emergent*, so when a transfer
misbehaves the question is always "what did the engine, regulator and
PMU actually do?".  This module answers it with event-level tracing:

* every instrumented layer (engine, regulator, central PMU, channel,
  session, sweep runner) reports spans and instant events to the
  *current tracer*;
* the default current tracer is a :class:`NullTracer` whose ``enabled``
  flag is False — instrumentation sites check that flag and do nothing
  else, so an untraced run pays one attribute read per site;
* installing a recording :class:`Tracer` (via :func:`install` or the
  :func:`tracing` context manager) captures everything for export to
  Chrome trace-event JSON and a flat metrics JSON
  (:mod:`repro.obs.export`).

Two clock domains coexist.  Simulation-side spans carry *simulation*
timestamps (ns on the engine clock); host-side spans (runner tasks,
cache operations) carry wall-clock timestamps relative to the tracer's
creation.  The exporter places them under separate trace processes so
both timelines load cleanly in ``chrome://tracing`` / Perfetto.

Tracers are per-process state: worker processes spawned by
:class:`~repro.runner.sweep.SweepRunner` start with the no-op default,
so tracing a parallel sweep records the runner's task spans but not the
workers' internal simulation events (run ``jobs=1`` to capture those).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Clock domain of simulation-side events (engine timestamps, ns).
DOMAIN_SIM = "sim"

#: Clock domain of host-side events (wall clock, ns since tracer start).
DOMAIN_HOST = "host"


@dataclass
class TraceEvent:
    """One recorded trace event (a complete span or an instant)."""

    name: str
    cat: str
    ph: str  # "X" (complete span) or "i" (instant)
    ts_ns: float
    dur_ns: float
    track: str
    domain: str
    args: Optional[Dict] = None


class NullTracer:
    """The disabled default: every operation is a no-op.

    ``enabled`` is False; instrumentation sites must check it before
    building event arguments, which keeps the disabled path to a single
    module-global read and attribute check per site.
    """

    enabled = False
    engine_events = False

    def __init__(self) -> None:
        # A registry is kept so an unguarded metrics call cannot crash;
        # guarded sites never touch it.
        self.metrics = MetricsRegistry()
        self.events: List[TraceEvent] = []

    def complete(self, name: str, cat: str, start_ns: float, dur_ns: float,
                 track: str = "sim", args: Optional[Dict] = None) -> None:
        """Discard a span."""

    def instant(self, name: str, cat: str, ts_ns: float,
                track: str = "sim", args: Optional[Dict] = None) -> None:
        """Discard an instant event."""

    @contextmanager
    def wall_span(self, name: str, cat: str, track: str = "runner",
                  args: Optional[Dict] = None) -> Iterator[Dict]:
        """No-op context manager (yields a throwaway args dict)."""
        yield {}


class Tracer(NullTracer):
    """A recording tracer: spans, instants and a metrics registry.

    Parameters
    ----------
    events:
        Capture trace events.  Disable for a metrics-only run (the
        ``--metrics``-without-``--trace`` mode): counters and histograms
        are still recorded but no event list grows.
    engine_events:
        Also record one instant per engine event dispatch.  Off by
        default — a multi-millisecond transfer dispatches thousands of
        events, which swamps the interesting spans; enable it when
        debugging the event loop itself.
    """

    enabled = True

    def __init__(self, events: bool = True, engine_events: bool = False) -> None:
        super().__init__()
        self.events_enabled = events
        self.engine_events = events and engine_events
        self._wall_epoch = time.perf_counter_ns()

    # -- recording -----------------------------------------------------------

    def complete(self, name: str, cat: str, start_ns: float, dur_ns: float,
                 track: str = "sim", args: Optional[Dict] = None) -> None:
        """Record a complete span at simulation time ``start_ns``."""
        if self.events_enabled:
            self.events.append(TraceEvent(name, cat, "X", start_ns,
                                          max(0.0, dur_ns), track,
                                          DOMAIN_SIM, args))

    def instant(self, name: str, cat: str, ts_ns: float,
                track: str = "sim", args: Optional[Dict] = None) -> None:
        """Record an instant event at simulation time ``ts_ns``."""
        if self.events_enabled:
            self.events.append(TraceEvent(name, cat, "i", ts_ns, 0.0, track,
                                          DOMAIN_SIM, args))

    def wall_ns(self) -> float:
        """Wall-clock ns since the tracer was created."""
        return float(time.perf_counter_ns() - self._wall_epoch)

    @contextmanager
    def wall_span(self, name: str, cat: str, track: str = "runner",
                  args: Optional[Dict] = None) -> Iterator[Dict]:
        """Record a host-side wall-clock span around a ``with`` body.

        Yields the span's args dict so the body can attach outcome
        fields (e.g. ``cache: "hit"``) before the span is stored.
        """
        span_args: Dict = dict(args) if args else {}
        start = self.wall_ns()
        try:
            yield span_args
        finally:
            if self.events_enabled:
                self.events.append(TraceEvent(
                    name, cat, "X", start, self.wall_ns() - start,
                    track, DOMAIN_HOST, span_args or None,
                ))


#: The process-wide current tracer; module-global so instrumentation
#: sites can reach it without threading a handle through every layer.
_CURRENT: NullTracer = NullTracer()


def current() -> NullTracer:
    """The tracer instrumentation sites report to right now."""
    return _CURRENT


def install(tracer: NullTracer) -> NullTracer:
    """Make ``tracer`` current; returns the previous tracer."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None, **kwargs) -> Iterator[Tracer]:
    """Install a recording tracer for a ``with`` block.

    ``kwargs`` are forwarded to :class:`Tracer` when no tracer instance
    is given.  The previous tracer is restored on exit::

        with tracing() as tr:
            IccThreadCovert(System(cannon_lake_i3_8121u())).transfer(b"hi")
        write_chrome_trace(tr, "transfer-trace.json")
    """
    active = tracer if tracer is not None else Tracer(**kwargs)
    previous = install(active)
    try:
        yield active
    finally:
        install(previous)
