"""Counters and histograms for the observability layer.

A :class:`MetricsRegistry` is a flat, name-addressed collection of
:class:`Counter` and :class:`Histogram` instruments.  Instruments are
created on first use (``registry.counter("engine.events_run")``), so
instrumentation sites never need registration boilerplate, and a
snapshot of the whole registry serialises to plain JSON for the
``--metrics`` exporter and the benchmark harnesses.

Recording is cheap (an attribute increment or a list append) but not
free; every instrumented site guards its recording behind the current
tracer's ``enabled`` flag, so the disabled-by-default path never touches
a registry at all.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.errors import ConfigError

#: Percentiles included in every histogram snapshot.
SNAPSHOT_PERCENTILES = (50.0, 90.0, 99.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the count."""
        if n < 0:
            raise ConfigError(f"counter increment must be >= 0, got {n}")
        self.value += n

    def snapshot(self) -> int:
        """The current count."""
        return self.value


class Histogram:
    """A distribution of observations (durations, sizes, readings).

    Observations are kept exactly — the simulator's workloads record
    thousands of values, not millions, so summarising at snapshot time
    is cheaper and more faithful than maintaining fixed buckets.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return math.fsum(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.total / self.count if self.values else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (nearest-rank; 0.0 when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          math.ceil(p / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def snapshot(self) -> Dict[str, float]:
        """A JSON-ready summary of the distribution."""
        summary: Dict[str, float] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": min(self.values) if self.values else 0.0,
            "max": max(self.values) if self.values else 0.0,
        }
        for p in SNAPSHOT_PERCENTILES:
            summary[f"p{p:g}"] = self.percentile(p)
        return summary


class MetricsRegistry:
    """Name-addressed counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created if missing)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created if missing)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    @property
    def counters(self) -> Dict[str, Counter]:
        """All counters by name (live view)."""
        return self._counters

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """All histograms by name (live view)."""
        return self._histograms

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-serialisable snapshot of every instrument."""
        return {
            "counters": {
                name: c.snapshot() for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }
