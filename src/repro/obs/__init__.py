"""Structured observability: tracing + metrics for every simulator layer.

The simulator's covert-channel behaviours are emergent, so debugging a
failed transfer or chasing a perf regression needs a record of what the
engine, regulator, PMU, channel, session and runner actually did.  This
package provides that record:

* a **tracer** (:mod:`repro.obs.tracer`) with a zero-overhead no-op
  default — spans and instant events on the simulation clock, wall-clock
  spans for runner/host work;
* a **metrics registry** (:mod:`repro.obs.metrics`) of counters and
  histograms (throttle residency, transition durations, retransmissions,
  cache hits, per-task wall time);
* **exporters** (:mod:`repro.obs.export`) to Chrome trace-event JSON
  (loadable in ``chrome://tracing`` / Perfetto) and flat metrics JSON.

Usage::

    from repro import System, cannon_lake_i3_8121u
    from repro.core import IccThreadCovert
    from repro.obs import tracing, write_chrome_trace, write_metrics_json

    with tracing() as tr:
        IccThreadCovert(System(cannon_lake_i3_8121u())).transfer(b"hi")
    write_chrome_trace(tr, "transfer-trace.json")
    write_metrics_json(tr, "transfer-metrics.json")

or from the command line: ``python -m repro --trace trace.json
--metrics metrics.json``.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    chrome_trace_dict,
    chrome_trace_events,
    metrics_dict,
    metrics_fingerprint,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.tracer import (
    NullTracer,
    TraceEvent,
    Tracer,
    current,
    install,
    tracing,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "chrome_trace_dict",
    "chrome_trace_events",
    "current",
    "install",
    "metrics_dict",
    "metrics_fingerprint",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
]
