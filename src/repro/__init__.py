"""IChannels (ISCA 2021) reproduction.

A behavioural simulation of current-management mechanisms in modern Intel
client processors and the covert channels — IccThreadCovert, IccSMTcovert
and IccCoresCovert — that exploit their multi-level throttling side
effects, together with the baselines (NetSpectre, TurboCC, DFScovert,
PowerT) and the paper's mitigations.

Quickstart::

    from repro import System, cannon_lake_i3_8121u
    from repro.core import IccThreadCovert

    system = System(cannon_lake_i3_8121u())
    channel = IccThreadCovert(system)
    report = channel.transfer(b"hi")
    assert report.received == b"hi"
"""

from repro.errors import (
    CalibrationError,
    ConfigError,
    MeasurementError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.isa import IClass, Loop
from repro.soc import (
    ExecResult,
    System,
    cannon_lake_i3_8121u,
    coffee_lake_i7_9700k,
    haswell_i7_4770k,
    preset,
)
from repro.soc.system import SystemOptions

__version__ = "1.0.0"

__all__ = [
    "CalibrationError",
    "ConfigError",
    "MeasurementError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "IClass",
    "Loop",
    "ExecResult",
    "System",
    "SystemOptions",
    "cannon_lake_i3_8121u",
    "coffee_lake_i7_9700k",
    "haswell_i7_4770k",
    "preset",
    "__version__",
]
