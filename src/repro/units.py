"""Unit conventions and conversion helpers.

The whole library uses one coherent unit system, chosen so that the common
power-delivery identities need no conversion factors:

===========  =========  =============================================
Quantity     Unit       Note
===========  =========  =============================================
time         ns         simulation timestamps are ``float`` ns
frequency    GHz        1 GHz == 1 cycle / ns, so ``cycles = ns * f``
voltage      V
current      A
capacitance  nF         ``I[A] = C[nF] * V[V] * f[GHz]`` exactly
resistance   Ohm        load-line values are a few milliohm
power        W
temperature  degC
===========  =========  =============================================

The identity for dynamic current is dimensionally exact::

    C[nF] * V[V] * f[GHz] = 1e-9 F * V * 1e9 Hz = A
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0


def us_to_ns(us: float) -> float:
    """Convert microseconds to nanoseconds."""
    return us * NS_PER_US


def ms_to_ns(ms: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return ms * NS_PER_MS


def s_to_ns(s: float) -> float:
    """Convert seconds to nanoseconds."""
    return s * NS_PER_S


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / NS_PER_US


def ns_to_ms(ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return ns / NS_PER_MS


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


# -- frequency / cycles ----------------------------------------------------


def cycles_at(ns: float, freq_ghz: float) -> float:
    """Number of clock cycles elapsed in ``ns`` at ``freq_ghz``.

    With frequency in GHz and time in ns this is a plain product.
    """
    return ns * freq_ghz


def ns_for_cycles(cycles: float, freq_ghz: float) -> float:
    """Wall time in ns needed to run ``cycles`` at ``freq_ghz``."""
    if freq_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {freq_ghz} GHz")
    return cycles / freq_ghz


# -- electrical ------------------------------------------------------------

MV_PER_V = 1_000.0


def mv_to_v(mv: float) -> float:
    """Convert millivolts to volts."""
    return mv / MV_PER_V


def v_to_mv(v: float) -> float:
    """Convert volts to millivolts."""
    return v * MV_PER_V


def mohm_to_ohm(mohm: float) -> float:
    """Convert milliohms to ohms."""
    return mohm / 1_000.0


def dynamic_current(cdyn_nf: float, vcc: float, freq_ghz: float) -> float:
    """Dynamic current draw ``I = Cdyn * V * f`` in amps.

    ``cdyn_nf`` is the effective switched capacitance in nF; with voltage in
    volts and frequency in GHz the result is exactly in amps.
    """
    return cdyn_nf * vcc * freq_ghz


def dynamic_power(cdyn_nf: float, vcc: float, freq_ghz: float) -> float:
    """Dynamic power ``P = Cdyn * V^2 * f`` in watts."""
    return cdyn_nf * vcc * vcc * freq_ghz


# -- bandwidth -------------------------------------------------------------


def bits_per_second(bits: float, elapsed_ns: float) -> float:
    """Throughput in bit/s for ``bits`` transferred over ``elapsed_ns``."""
    if elapsed_ns <= 0.0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_ns} ns")
    return bits * NS_PER_S / elapsed_ns
